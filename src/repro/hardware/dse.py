"""Design-space exploration over HAAN accelerator configurations.

Section V-B of the paper evaluates three hand-picked configurations
(HAAN-v1/v2/v3) and a six-point format/width sweep (Table III).  The
explorer here automates that search: it sweeps the datapath widths
``(p_d, p_n)``, the data format and the subsampling length, evaluates each
point with the same latency, power, resource, energy, bandwidth and timing
models used by the paper-reproduction benchmarks, discards points that do
not fit the device or close timing, and extracts the latency/power Pareto
frontier.

This is the ablation DESIGN.md calls out for the claim that "by setting
particular ``p_d, p_n`` the time of the different stages of the pipeline is
evenly distributed": the explorer shows which width ratios actually balance
the pipeline for a given model and subsample setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.hardware.accelerator import HaanAccelerator
from repro.hardware.bandwidth import MemorySystem, U280_HBM, roofline_analysis
from repro.hardware.configs import AcceleratorConfig
from repro.hardware.energy import EnergyModel
from repro.hardware.timing import TimingModel
from repro.hardware.workload import NormalizationWorkload
from repro.numerics.quantization import DataFormat


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated accelerator configuration."""

    config: AcceleratorConfig
    latency_seconds: float
    power_w: float
    energy_nj: float
    lut: int
    dsp: int
    fits_device: bool
    meets_timing: bool
    memory_bound: bool
    pipeline_balance: float

    @property
    def feasible(self) -> bool:
        """Whether the point can actually be built and clocked."""
        return self.fits_device and self.meets_timing

    @property
    def latency_us(self) -> float:
        """Latency in microseconds."""
        return self.latency_seconds * 1e6

    @property
    def energy_delay_product(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.energy_nj * 1e-9 * self.latency_seconds

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (latency, power): no worse on both, better on one."""
        no_worse = self.latency_seconds <= other.latency_seconds and self.power_w <= other.power_w
        better = self.latency_seconds < other.latency_seconds or self.power_w < other.power_w
        return no_worse and better


@dataclass
class ExplorationResult:
    """Outcome of one design-space sweep."""

    workload: NormalizationWorkload
    points: List[DesignPoint] = field(default_factory=list)

    @property
    def feasible_points(self) -> List[DesignPoint]:
        """Points that fit the device and close timing."""
        return [p for p in self.points if p.feasible]

    def pareto_frontier(self) -> List[DesignPoint]:
        """Non-dominated feasible points, sorted by latency."""
        feasible = self.feasible_points
        frontier = [
            p for p in feasible if not any(other.dominates(p) for other in feasible if other is not p)
        ]
        return sorted(frontier, key=lambda p: p.latency_seconds)

    def best_latency(self) -> DesignPoint:
        """Fastest feasible point."""
        return min(self.feasible_points, key=lambda p: p.latency_seconds)

    def best_under_power(self, power_budget_w: float) -> Optional[DesignPoint]:
        """Fastest feasible point within a power budget, or None."""
        candidates = [p for p in self.feasible_points if p.power_w <= power_budget_w]
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.latency_seconds)

    def best_energy_delay(self) -> DesignPoint:
        """Feasible point with the lowest energy-delay product."""
        return min(self.feasible_points, key=lambda p: p.energy_delay_product)


class DesignSpaceExplorer:
    """Sweeps HAAN configurations and evaluates every point.

    Parameters
    ----------
    memory:
        Memory system assumed for the roofline feasibility check.
    clock_mhz:
        Target clock of every candidate configuration.
    """

    def __init__(self, memory: MemorySystem = U280_HBM, clock_mhz: float = 100.0):
        self.memory = memory
        self.clock_mhz = clock_mhz
        self.energy_model = EnergyModel()
        self.timing_model = TimingModel()

    def candidate_configs(
        self,
        stats_widths: Sequence[int] = (32, 64, 128, 256),
        norm_widths: Sequence[int] = (64, 128, 256, 512),
        data_formats: Sequence[DataFormat] = (DataFormat.FP32, DataFormat.FP16, DataFormat.INT8),
    ) -> List[AcceleratorConfig]:
        """Enumerate the candidate configurations of a sweep."""
        configs = []
        for fmt in data_formats:
            for p_d in stats_widths:
                for p_n in norm_widths:
                    configs.append(
                        AcceleratorConfig(
                            name=f"{fmt.value}-{p_d}-{p_n}",
                            stats_width=p_d,
                            norm_width=p_n,
                            data_format=fmt,
                            clock_mhz=self.clock_mhz,
                        )
                    )
        return configs

    def evaluate(self, config: AcceleratorConfig, workload: NormalizationWorkload) -> DesignPoint:
        """Evaluate one configuration on one workload."""
        accelerator = HaanAccelerator(config)
        latency = accelerator.workload_latency(workload)
        power = accelerator.power(workload)
        resources = accelerator.resources()
        energy = self.energy_model.estimate(config, workload, latency.latency_seconds)
        timing = self.timing_model.estimate(config)
        roofline = roofline_analysis(config, workload, self.memory)
        schedule = accelerator.layer_schedule(workload)
        return DesignPoint(
            config=config,
            latency_seconds=latency.latency_seconds,
            power_w=power.total_w,
            energy_nj=energy.total_nj,
            lut=resources.lut,
            dsp=resources.dsp,
            fits_device=resources.fits_device(),
            meets_timing=timing.meets(config.clock_mhz),
            memory_bound=roofline.memory_bound,
            pipeline_balance=schedule.balance(),
        )

    def explore(
        self,
        workload: NormalizationWorkload,
        configs: Optional[Iterable[AcceleratorConfig]] = None,
    ) -> ExplorationResult:
        """Evaluate every candidate configuration on the workload."""
        candidates = list(configs) if configs is not None else self.candidate_configs()
        result = ExplorationResult(workload=workload)
        for config in candidates:
            result.points.append(self.evaluate(config, workload))
        return result
