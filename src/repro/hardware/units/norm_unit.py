"""Normalization Unit (paper Section IV-C, Figure 6).

Receives the raw input elements, the mean from the Input Statistics
Calculator and the ISD from the Square Root Inverter (or the ISD predictor
for skipped layers), and produces the normalized output with the affine
transform applied:

``out = alpha * (z - mean) * ISD + beta``

``p_n`` elements are produced per cycle.  When quantization is enabled the
FX2FP output conversion is bypassed and the result stays in fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.numerics.convert import FX2FPConverter
from repro.numerics.fixedpoint import FixedPointFormat, FixedPointValue
from repro.numerics.floating import FP16, FP32, FloatFormat
from repro.numerics.quantization import DataFormat


@dataclass
class NormalizationUnit:
    """Functional + cycle model of the normalization unit.

    Parameters
    ----------
    width:
        Lane count ``p_n`` (elements produced per cycle).
    data_format:
        Output format; INT8 keeps the result in fixed point (FX2FP bypass).
    fixed_format:
        Internal fixed-point format of the multiply/add datapath.
    """

    width: int
    data_format: DataFormat = DataFormat.FP16
    fixed_format: FixedPointFormat = field(default_factory=FixedPointFormat.statistics)
    elements_processed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be positive")
        float_format: FloatFormat = FP32 if self.data_format is DataFormat.FP32 else FP16
        self._fx2fp = FX2FPConverter(float_format=float_format)

    def normalize(
        self,
        rows: np.ndarray,
        mean: np.ndarray,
        isd: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
    ) -> np.ndarray:
        """Normalize a ``(num_rows, D)`` array with per-row mean and ISD.

        The arithmetic is carried out in the internal fixed-point format and
        converted (or not, for INT8) at the output, mirroring Figure 6.
        """
        arr = np.asarray(rows, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        mean_col = np.asarray(mean, dtype=np.float64)[:, None]
        isd_col = np.asarray(isd, dtype=np.float64)[:, None]
        centered = self.fixed_format.quantize(arr - mean_col)
        scaled = self.fixed_format.quantize(centered * isd_col)
        affine = self.fixed_format.quantize(scaled * gamma[None, :] + beta[None, :])
        self.elements_processed += int(arr.size)
        value = FixedPointValue.from_real(self.fixed_format, affine)
        if self.data_format is DataFormat.INT8:
            return self._fx2fp.bypass(value).reshape(arr.shape)
        return self._fx2fp.convert(value).reshape(arr.shape)

    def passes_per_row(self, row_length: int) -> int:
        """Beats needed to emit one normalized row (``ceil(D / p_n)``)."""
        if row_length <= 0:
            return 0
        return int(np.ceil(row_length / self.width))

    def cycles_for(self, num_rows: int, row_length: int) -> int:
        """Cycles to normalize ``num_rows`` rows of ``row_length`` elements."""
        return self.passes_per_row(row_length) * num_rows

    def reset_activity(self) -> None:
        """Zero the activity counter."""
        self.elements_processed = 0
