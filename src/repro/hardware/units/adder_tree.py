"""Adder tree model.

The Input Statistics Calculator (paper Figure 4) uses two adder trees to
reduce ``p_d`` products per cycle: one accumulating ``z_i^2 / N`` and one
accumulating ``z_i``.  This model captures the reduction result in fixed
point (exact integer accumulation followed by output saturation, like a
width-sufficient hardware tree) and the tree's structural properties
(depth, adder count) consumed by the resource model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.numerics.fixedpoint import FixedPointFormat, FixedPointValue


@dataclass
class AdderTree:
    """A binary adder tree reducing ``width`` inputs per invocation.

    Parameters
    ----------
    width:
        Number of leaf inputs (the lane count ``p_d``).
    accumulator_format:
        Fixed-point format of the accumulation result register.
    """

    width: int
    accumulator_format: FixedPointFormat = field(default_factory=FixedPointFormat.accumulator)

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("adder tree width must be positive")

    @property
    def depth(self) -> int:
        """Number of adder levels (pipeline stages) in the tree."""
        return max(1, math.ceil(math.log2(self.width))) if self.width > 1 else 1

    @property
    def num_adders(self) -> int:
        """Total two-input adders in the tree."""
        return self.width - 1 if self.width > 1 else 1

    def reduce(self, lanes: np.ndarray) -> FixedPointValue:
        """Reduce one cycle's worth of lane values to a single fixed-point sum.

        Fewer than ``width`` values are accepted (the tail of a vector);
        missing lanes contribute zero, exactly as gated lanes would.
        """
        arr = np.asarray(lanes, dtype=np.float64).reshape(-1)
        if arr.size > self.width:
            raise ValueError(f"got {arr.size} lane values for a width-{self.width} tree")
        value = FixedPointValue.from_real(self.accumulator_format, arr)
        return value.sum()

    def accumulate(self, stream: np.ndarray) -> FixedPointValue:
        """Reduce a full vector by feeding it through the tree in lane-wide beats."""
        arr = np.asarray(stream, dtype=np.float64).reshape(-1)
        total = FixedPointValue.zeros(self.accumulator_format, ())
        for start in range(0, arr.size, self.width):
            beat = self.reduce(arr[start : start + self.width])
            total = total.add(beat)
        return total

    def cycles_for(self, num_elements: int) -> int:
        """Beats needed to stream ``num_elements`` values through the tree."""
        if num_elements <= 0:
            return 0
        return math.ceil(num_elements / self.width)
