"""Functional + cycle models of the HAAN datapath units (paper Figures 3-6).

Each unit models both *what* the hardware computes (bit-accurate where the
paper's design is bit-level, e.g. the fast inverse square root) and *how
long* it takes (cycles as a function of the configured lane width), so the
accelerator model in :mod:`repro.hardware.accelerator` can assemble an
end-to-end functional result and latency estimate from the same objects.
"""

from repro.hardware.units.adder_tree import AdderTree
from repro.hardware.units.stats_calculator import InputStatisticsCalculator, StatisticsResult
from repro.hardware.units.sqrt_inverter import SquareRootInverter
from repro.hardware.units.norm_unit import NormalizationUnit
from repro.hardware.units.isd_predictor_unit import IsdPredictorUnit

__all__ = [
    "AdderTree",
    "InputStatisticsCalculator",
    "StatisticsResult",
    "SquareRootInverter",
    "NormalizationUnit",
    "IsdPredictorUnit",
]
