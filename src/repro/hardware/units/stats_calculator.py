"""Input Statistics Calculator (paper Section IV-A, Figure 4).

Computes the mean and variance of a D-dimensional vector using the
rearranged variance ``Var(z) = E(z^2) - (E(z))^2`` (equation (5)), which
lets the two expectations be accumulated in parallel:

* FP2FX units convert each incoming element to fixed point (bypassed when
  the input is already INT8),
* one multiplier lane squares each element and scales by the precomputed
  ``1/N``; a second path accumulates the raw elements,
* two adder trees reduce both streams, and
* a final multiply + subtract produces ``(E(z))^2`` and the variance.

Because LLM embedding dimensions exceed the lane count ``p_d``, the vector
is streamed over multiple passes with interim results held in the
``E(X^2)`` / ``E(X)^2`` buffers shown in Figure 4.  For RMSNorm the mean
path is skipped; when subsampling is enabled only the first ``N_sub``
elements are streamed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.hardware.units.adder_tree import AdderTree
from repro.numerics.convert import FP2FXConverter
from repro.numerics.fixedpoint import FixedPointFormat, FixedPointValue
from repro.numerics.floating import FP16, FP32, FloatFormat
from repro.numerics.quantization import DataFormat


@dataclass
class StatisticsResult:
    """Output of the Input Statistics Calculator for a batch of rows."""

    mean: np.ndarray
    variance: np.ndarray
    elements_used: int
    passes_per_row: int
    cycles: int


@dataclass
class InputStatisticsCalculator:
    """Functional + cycle model of the statistics calculator.

    Parameters
    ----------
    width:
        Lane count ``p_d`` (elements consumed per cycle).
    data_format:
        Input storage format; INT8 inputs bypass the FP2FX conversion.
    fixed_format:
        Internal fixed-point format of the datapath.
    eps:
        Small constant added to the variance so the downstream square root
        inverter never sees a non-positive input.
    """

    width: int
    data_format: DataFormat = DataFormat.FP16
    fixed_format: FixedPointFormat = field(default_factory=FixedPointFormat.statistics)
    eps: float = 1e-5
    compute_mean: bool = True

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be positive")
        float_format: FloatFormat = FP32 if self.data_format is DataFormat.FP32 else FP16
        self._fp2fx = FP2FXConverter(float_format=float_format, fixed_format=self.fixed_format)
        self._square_tree = AdderTree(self.width, accumulator_format=self.fixed_format)
        self._sum_tree = AdderTree(self.width, accumulator_format=self.fixed_format)

    # -- functional model ---------------------------------------------------

    def _to_fixed(self, row: np.ndarray) -> FixedPointValue:
        """Convert one row to the internal fixed-point format (or bypass)."""
        if self.data_format is DataFormat.INT8:
            return self._fp2fx.bypass(np.rint(row))
        return self._fp2fx.convert(row)

    def compute(
        self,
        rows: np.ndarray,
        subsample_length: Optional[int] = None,
    ) -> StatisticsResult:
        """Compute per-row mean and variance of a ``(num_rows, D)`` array.

        ``subsample_length`` restricts the statistics to the first ``N_sub``
        elements of each row (paper equation (4)); the full row is still
        normalized downstream.
        """
        arr = np.asarray(rows, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        num_rows, row_length = arr.shape
        effective = row_length if subsample_length is None else min(subsample_length, row_length)
        reciprocal = 1.0 / effective

        means = np.zeros(num_rows)
        variances = np.zeros(num_rows)
        for row_index in range(num_rows):
            window = arr[row_index, :effective]
            fixed = self._to_fixed(window)
            real = fixed.to_real()
            # E(z^2): square each element, scale by the precomputed 1/N and
            # reduce; the scaling is folded before the tree as in Figure 4.
            squared = FixedPointValue.from_real(self.fixed_format, real * real * reciprocal)
            sum_sq = self._square_tree.accumulate(squared.to_real()).to_real()
            if self.compute_mean:
                total = self._sum_tree.accumulate(real).to_real()
                mean = self.fixed_format.quantize(total * reciprocal)
                mean_sq = self.fixed_format.quantize(mean * mean)
            else:
                mean = 0.0
                mean_sq = 0.0
            variance = float(sum_sq - mean_sq)
            means[row_index] = float(mean)
            variances[row_index] = max(variance, 0.0) + self.eps
        passes = self.passes_per_row(row_length, subsample_length)
        cycles = self.cycles_for(num_rows, row_length, subsample_length)
        return StatisticsResult(
            mean=means,
            variance=variances,
            elements_used=effective,
            passes_per_row=passes,
            cycles=cycles,
        )

    # -- cycle model ----------------------------------------------------------

    def passes_per_row(self, row_length: int, subsample_length: Optional[int] = None) -> int:
        """Streaming beats needed per row (``ceil(N_eff / p_d)``)."""
        effective = row_length if subsample_length is None else min(subsample_length, row_length)
        return self._square_tree.cycles_for(effective)

    def cycles_for(
        self,
        num_rows: int,
        row_length: int,
        subsample_length: Optional[int] = None,
    ) -> int:
        """Total cycles to produce statistics for ``num_rows`` rows.

        Each row needs its streaming beats plus a small epilogue (mean
        square, subtract) of two cycles; rows are processed back to back.
        """
        per_row = self.passes_per_row(row_length, subsample_length) + 2
        return per_row * num_rows

    @property
    def pipeline_depth(self) -> int:
        """Register stages through the unit (conversion + tree + epilogue)."""
        return 1 + self._square_tree.depth + 2
