"""Scalar ISD predictor unit (paper Section IV-B, last paragraph).

"To support the layer skipping methods ... we design a custom unit to
calculate predicted ISD using previous statistics.  It employs the
coefficient e of the ISD predictor and ISD values from early layers,
leveraging the Xilinx Floating-point IP Core for linear prediction in the
logarithm domain.  The ISD predictor is a scalar processor with minimal
hardware cost."

The functional behaviour delegates to the algorithmic
:class:`~repro.core.predictor.IsdPredictor`; this wrapper adds the
per-prediction latency (a handful of floating-point MAC cycles) and the
activity counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.predictor import IsdPredictor
from repro.numerics.floating import FP32, FloatFormat


@dataclass
class IsdPredictorUnit:
    """Scalar unit producing predicted ISDs for skipped layers."""

    predictor: Optional[IsdPredictor] = None
    latency: int = 2
    float_format: FloatFormat = FP32
    predictions_made: int = field(default=0, init=False)

    def load(self, predictor: IsdPredictor) -> None:
        """Load (or replace) the predictor coefficients."""
        self.predictor = predictor

    @property
    def configured(self) -> bool:
        """True when predictor coefficients have been loaded."""
        return self.predictor is not None

    def predict(self, anchor_isd: np.ndarray, layer_index: int) -> np.ndarray:
        """Predict per-token ISDs of a skipped layer from the anchor ISD.

        The result is rounded through the unit's floating-point format,
        modelling the precision of the Xilinx floating-point IP core.
        """
        if self.predictor is None:
            raise RuntimeError("predictor coefficients have not been loaded")
        predicted = self.predictor.predict_from_anchor(np.asarray(anchor_isd, dtype=np.float64), layer_index)
        self.predictions_made += int(predicted.size)
        return self.float_format.round_trip(predicted)

    def cycles_for(self, num_values: int) -> int:
        """Cycles to produce ``num_values`` predictions (pipelined scalar MACs)."""
        if num_values <= 0:
            return 0
        return self.latency + (num_values - 1)

    def reset_activity(self) -> None:
        """Zero the activity counter."""
        self.predictions_made = 0
