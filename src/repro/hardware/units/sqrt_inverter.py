"""Square Root Inverter unit (paper Section IV-B, Figure 5).

Takes the variance produced by the Input Statistics Calculator and emits
the ISD ``1/sqrt(variance)``.  The datapath is:

``FX2FP -> (0x5f3759df - bits >> 1) -> FP2FX -> Newton step (x * 1.5 const)``

The functional behaviour delegates to the bit-accurate
:class:`~repro.numerics.fast_inv_sqrt.FastInvSqrt` model; this wrapper adds
the FX2FP stage, the per-value cycle cost and the activity counters used by
the power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.numerics.convert import FX2FPConverter
from repro.numerics.fast_inv_sqrt import FastInvSqrt
from repro.numerics.fixedpoint import FixedPointFormat, FixedPointValue
from repro.numerics.floating import FP32


@dataclass
class SquareRootInverter:
    """Functional + cycle model of the square root inverter.

    Parameters
    ----------
    newton_iterations:
        Newton refinement steps (the paper uses one).
    latency:
        Pipeline latency in cycles for one variance -> ISD conversion.
    variance_format:
        Fixed-point format in which the incoming variance is held before the
        FX2FP conversion.
    """

    newton_iterations: int = 1
    latency: int = 6
    variance_format: FixedPointFormat = field(default_factory=FixedPointFormat.statistics)
    values_processed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError("latency must be at least one cycle")
        self._fx2fp = FX2FPConverter(float_format=FP32)
        self._core = FastInvSqrt(float_format=FP32, newton_iterations=self.newton_iterations)

    def compute(self, variance: np.ndarray) -> np.ndarray:
        """ISD of each variance value through the hardware approximation."""
        arr = np.asarray(variance, dtype=np.float64)
        fixed = FixedPointValue.from_real(self.variance_format, arr)
        as_float = self._fx2fp.convert(fixed)
        self.values_processed += int(np.asarray(arr).size)
        return self._core.compute(as_float)

    def compute_exact(self, variance: np.ndarray) -> np.ndarray:
        """Reference ISD (no approximation), for error analysis."""
        return 1.0 / np.sqrt(np.asarray(variance, dtype=np.float64))

    def cycles_for(self, num_values: int) -> int:
        """Cycles to convert ``num_values`` variances (fully pipelined)."""
        if num_values <= 0:
            return 0
        return self.latency + (num_values - 1)

    def reset_activity(self) -> None:
        """Zero the activity counter."""
        self.values_processed = 0
