"""Power model of the HAAN accelerator (paper Table III and Figure 8(a)).

Power is modelled as static leakage plus dynamic power per active lane,
scaled by the pipeline occupancy of the workload:

``P = P_static + occupancy * (p_d * e_stats(fmt) + p_n * e_norm(fmt) + freed * e_pipe(fmt))``

* per-lane dynamic energy depends on the number format (FP32 > FP16 > INT8),
  which produces the paper's observation that FP32 consumes about 1.29x the
  power of FP16 and INT8 the least;
* occupancy is taken from the pipeline schedule, so power grows moderately
  with sequence length (longer sequences keep the pipeline fuller) and the
  reported Table III power is the average over sequence lengths 16/128/256,
  exactly as the paper measures it;
* subsampling configurations (small ``p_d``) spend the freed resources on
  deeper normalization pipelines whose registers still toggle, which is why
  the paper's (32, x) builds do not save as much power as the lane count
  alone would suggest.

Per-lane power constants are calibrated against Table III; the targets and
achieved values are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hardware.configs import AcceleratorConfig
from repro.numerics.quantization import DataFormat

#: Static (leakage + clocking) power in watts.
STATIC_POWER_W = 0.5

#: Dynamic power per statistics lane at full occupancy, in watts.
_POWER_PER_STATS_LANE = {DataFormat.FP32: 0.0225, DataFormat.FP16: 0.0165, DataFormat.INT8: 0.0047}
#: Dynamic power per normalization lane at full occupancy, in watts.
_POWER_PER_NORM_LANE = {DataFormat.FP32: 0.0245, DataFormat.FP16: 0.0185, DataFormat.INT8: 0.0072}
#: Dynamic power of the deeper-pipeline registers per freed stats lane.
_POWER_PER_FREED_LANE = {DataFormat.FP32: 0.0190, DataFormat.FP16: 0.0150, DataFormat.INT8: 0.0046}

#: Sequence lengths over which Table III averages its power numbers.
TABLE3_POWER_SEQ_LENS: tuple[int, ...] = (16, 128, 256)


@dataclass(frozen=True)
class PowerReport:
    """Power estimate of one configuration on one workload."""

    static_w: float
    dynamic_w: float
    occupancy: float

    @property
    def total_w(self) -> float:
        """Total power in watts."""
        return self.static_w + self.dynamic_w


class PowerModel:
    """Occupancy-aware power estimator for HAAN configurations."""

    def __init__(self, static_power_w: float = STATIC_POWER_W):
        self.static_power_w = static_power_w

    def peak_dynamic_w(self, config: AcceleratorConfig) -> float:
        """Dynamic power at 100% pipeline occupancy."""
        fmt = config.data_format
        freed = max(0, config.norm_width - config.stats_width)
        per_pipeline = (
            config.stats_width * _POWER_PER_STATS_LANE[fmt]
            + config.norm_width * _POWER_PER_NORM_LANE[fmt]
            + freed * _POWER_PER_FREED_LANE[fmt]
        )
        return per_pipeline * config.num_pipelines

    def estimate(self, config: AcceleratorConfig, occupancy: float = 1.0) -> PowerReport:
        """Power at a given pipeline occupancy (0..1)."""
        occupancy = min(1.0, max(0.0, occupancy))
        return PowerReport(
            static_w=self.static_power_w,
            dynamic_w=self.peak_dynamic_w(config) * occupancy,
            occupancy=occupancy,
        )

    def average_over_occupancies(
        self, config: AcceleratorConfig, occupancies: Sequence[float]
    ) -> PowerReport:
        """Average power over several workload occupancies (Table III method)."""
        if not occupancies:
            raise ValueError("need at least one occupancy value")
        reports = [self.estimate(config, occ) for occ in occupancies]
        mean_occ = sum(r.occupancy for r in reports) / len(reports)
        mean_dyn = sum(r.dynamic_w for r in reports) / len(reports)
        return PowerReport(static_w=self.static_power_w, dynamic_w=mean_dyn, occupancy=mean_occ)

    def energy_joules(self, report: PowerReport, latency_seconds: float) -> float:
        """Energy of one workload execution."""
        if latency_seconds < 0:
            raise ValueError("latency must be non-negative")
        return report.total_w * latency_seconds
