"""Critical-path timing model of the HAAN datapath.

The paper clocks the accelerator at a conservative 100 MHz on the Alveo
U280.  This module estimates the critical path of each datapath unit from
its structure (adder-tree depth, multiplier width, converter logic levels)
using per-stage logic delays typical of UltraScale+ fabric, so that:

* the 100 MHz choice can be sanity-checked for every configuration in the
  Table III sweep,
* the design-space exploration can reject configurations whose combinational
  paths would not close timing, and
* the frequency headroom of narrow/INT8 configurations becomes visible.

The numbers are deliberately coarse (one LUT level ~0.35 ns + routing, one
DSP multiply ~2.5 ns at 16 bits) -- the point is relative behaviour across
widths and formats, not sign-off accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.hardware.configs import AcceleratorConfig
from repro.numerics.quantization import DataFormat

#: Delay of one LUT logic level including local routing, nanoseconds.
LUT_LEVEL_DELAY_NS = 0.45

#: Delay of one DSP48 multiply at 16-bit operands, nanoseconds.
DSP_MULTIPLY_DELAY_NS = 2.5

#: Clock-to-out plus setup overhead charged to every register stage.
REGISTER_OVERHEAD_NS = 0.6

#: Delay of a carry-chain add per 8 bits of operand width.
CARRY_CHAIN_NS_PER_BYTE = 0.25


def adder_delay_ns(width_bits: int) -> float:
    """Delay of one two-input adder of the given operand width."""
    return CARRY_CHAIN_NS_PER_BYTE * math.ceil(width_bits / 8)


def multiplier_delay_ns(width_bits: int) -> float:
    """Delay of one multiplier; scales with the number of 16-bit DSP tiles."""
    tiles = max(1, math.ceil(width_bits / 16))
    return DSP_MULTIPLY_DELAY_NS * (1.0 + 0.35 * (tiles - 1))


def format_operand_bits(data_format: DataFormat) -> int:
    """Internal operand width used for a given input format."""
    if data_format is DataFormat.INT8:
        return 16  # products of INT8 inputs accumulate in 16+ bits
    if data_format is DataFormat.FP16:
        return 24
    return 32


@dataclass
class TimingReport:
    """Critical-path estimate of one accelerator configuration."""

    config_name: str
    unit_paths_ns: Dict[str, float]

    @property
    def critical_path_ns(self) -> float:
        """Longest register-to-register path across all units."""
        return max(self.unit_paths_ns.values())

    @property
    def critical_unit(self) -> str:
        """Unit containing the critical path."""
        return max(self.unit_paths_ns, key=self.unit_paths_ns.get)

    @property
    def max_frequency_mhz(self) -> float:
        """Highest clock frequency the critical path supports."""
        return 1e3 / self.critical_path_ns

    def meets(self, clock_mhz: float) -> bool:
        """Whether the estimate closes timing at the given clock."""
        return self.max_frequency_mhz >= clock_mhz

    @property
    def slack_ns_at_100mhz(self) -> float:
        """Positive slack against the paper's 100 MHz clock."""
        return 10.0 - self.critical_path_ns


class TimingModel:
    """Structural critical-path estimator for HAAN configurations."""

    def estimate(self, config: AcceleratorConfig) -> TimingReport:
        """Estimate per-unit critical paths of one configuration."""
        bits = format_operand_bits(config.data_format)

        # Statistics calculator: FP2FX (a few LUT levels), one multiplier
        # (the square), and one level of the adder tree between registers --
        # the tree is pipelined per level, so only one level counts.
        fp2fx_levels = 3 if config.data_format is not DataFormat.INT8 else 1
        stats_path = (
            REGISTER_OVERHEAD_NS
            + fp2fx_levels * LUT_LEVEL_DELAY_NS
            + multiplier_delay_ns(bits)
            + adder_delay_ns(bits)
        )

        # Square-root inverter: the Newton multiply chain dominates; the
        # stage carries two back-to-back multiplies in the worst stage.
        invsqrt_path = REGISTER_OVERHEAD_NS + 2 * multiplier_delay_ns(bits) + adder_delay_ns(bits)

        # Normalization unit: subtract + multiply in one stage.
        norm_path = REGISTER_OVERHEAD_NS + adder_delay_ns(bits) + multiplier_delay_ns(bits)

        # Wide-fanout control/valid distribution grows slowly with lane count.
        fanout = max(config.stats_width, config.norm_width)
        control_path = REGISTER_OVERHEAD_NS + LUT_LEVEL_DELAY_NS * math.ceil(math.log2(max(2, fanout)))

        return TimingReport(
            config_name=config.name,
            unit_paths_ns={
                "statistics": stats_path,
                "invsqrt": invsqrt_path,
                "normalization": norm_path,
                "control": control_path,
            },
        )

    def frequency_headroom(self, config: AcceleratorConfig) -> float:
        """Ratio of achievable frequency to the configured clock."""
        report = self.estimate(config)
        return report.max_frequency_mhz / config.clock_mhz
