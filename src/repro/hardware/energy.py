"""Per-operation energy model and energy-delay product analysis.

The paper reports power (Figure 8(a), Table III); energy is the quantity a
deployment actually pays for, and it is where ISD skipping helps twice --
fewer operations *and* less time.  This module complements the
occupancy-based :class:`~repro.hardware.power.PowerModel` with a
bottom-up, per-operation energy estimate so the two can be cross-checked:

* every arithmetic operation (multiply, add, square-root seed, conversion,
  memory access) is assigned an energy in picojoules scaled by operand
  width, using the usual CMOS scaling assumptions (energy roughly
  quadratic in multiplier width, linear in adder width);
* a :class:`NormalizationWorkload` is decomposed into operation counts per
  datapath unit (statistics, square-root inverter, normalization, memory)
  taking skipping and subsampling into account; and
* an :class:`EnergyReport` carries the per-unit breakdown, the total, and
  the energy-delay product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hardware.configs import AcceleratorConfig
from repro.hardware.workload import NormalizationWorkload
from repro.llm.config import NormKind
from repro.numerics.quantization import DataFormat

#: Reference per-operation energies in picojoules for a 16-bit datapath on a
#: modern FPGA process (DSP multiply, carry-chain add, BRAM access).  The
#: absolute values matter less than their ratios; they follow the widely used
#: Horowitz ISSCC'14 numbers adapted to FPGA fabric overheads.
BASE_ENERGY_PJ: Dict[str, float] = {
    "multiply": 1.1,
    "add": 0.14,
    "convert": 0.25,
    "invsqrt_seed": 0.6,
    "memory_access_per_byte": 2.5,
    "register": 0.02,
}

#: Width scaling exponents: multiplier energy grows ~quadratically with
#: operand width, adders and registers roughly linearly.
_WIDTH_EXPONENT = {
    "multiply": 2.0,
    "add": 1.0,
    "convert": 1.0,
    "invsqrt_seed": 1.0,
    "register": 1.0,
}


def format_bits(data_format: DataFormat) -> int:
    """Operand width in bits of a data format."""
    return data_format.bits


def operation_energy_pj(operation: str, data_format: DataFormat) -> float:
    """Energy of one operation at the width implied by ``data_format``."""
    if operation == "memory_access_per_byte":
        return BASE_ENERGY_PJ[operation]
    if operation not in BASE_ENERGY_PJ:
        raise KeyError(f"unknown operation {operation!r}")
    exponent = _WIDTH_EXPONENT[operation]
    scale = (format_bits(data_format) / 16.0) ** exponent
    return BASE_ENERGY_PJ[operation] * scale


@dataclass
class EnergyReport:
    """Energy estimate of one workload on one accelerator configuration."""

    config_name: str
    workload_model: str
    per_unit_nj: Dict[str, float] = field(default_factory=dict)
    latency_seconds: float = 0.0

    @property
    def total_nj(self) -> float:
        """Total energy in nanojoules."""
        return sum(self.per_unit_nj.values())

    @property
    def total_mj(self) -> float:
        """Total energy in millijoules."""
        return self.total_nj * 1e-6

    @property
    def energy_delay_product(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.total_nj * 1e-9 * self.latency_seconds

    @property
    def average_power_w(self) -> float:
        """Average power implied by the energy and the latency."""
        if self.latency_seconds <= 0:
            return 0.0
        return self.total_nj * 1e-9 / self.latency_seconds

    def share(self, unit: str) -> float:
        """Fraction of the total energy attributed to one unit."""
        total = self.total_nj
        return self.per_unit_nj.get(unit, 0.0) / total if total else 0.0


class EnergyModel:
    """Bottom-up per-operation energy estimator.

    Parameters
    ----------
    base_energies_pj:
        Override of the per-operation reference energies (tests use this to
        check scaling behaviour without depending on the constants).
    """

    def __init__(self, base_energies_pj: Dict[str, float] | None = None):
        self.base_energies_pj = dict(BASE_ENERGY_PJ)
        if base_energies_pj:
            self.base_energies_pj.update(base_energies_pj)

    def _op_energy(self, operation: str, data_format: DataFormat) -> float:
        if operation == "memory_access_per_byte":
            return self.base_energies_pj[operation]
        exponent = _WIDTH_EXPONENT[operation]
        scale = (format_bits(data_format) / 16.0) ** exponent
        return self.base_energies_pj[operation] * scale

    # -- operation counting ------------------------------------------------------

    def operation_counts(self, workload: NormalizationWorkload) -> Dict[str, float]:
        """Decompose a workload into operation counts per category.

        Statistics are only computed for non-skipped layers and over the
        (possibly subsampled) prefix; normalization always touches every
        element of every layer; the square-root inverter runs once per row
        of each non-skipped layer.
        """
        rows = workload.rows_per_layer
        full = workload.embedding_dim
        effective = workload.effective_stats_length
        computed_layers = workload.num_computed_layers
        skipped_layers = workload.num_skipped_layers
        needs_mean = workload.norm_kind is NormKind.LAYERNORM

        stats_elements = rows * effective * computed_layers
        if needs_mean:
            # LayerNorm skipped layers still need the (subsampled) mean.
            stats_elements += rows * effective * skipped_layers
        norm_elements = rows * full * workload.num_norm_layers
        isd_rows = rows * computed_layers
        predicted_rows = rows * skipped_layers

        counts = {
            # square + scale per element, then one adder per element in the
            # tree; the mean path adds one more add per element.
            "stats_multiplies": float(stats_elements),
            "stats_adds": float(stats_elements * (2 if needs_mean else 1)),
            "stats_converts": float(stats_elements),
            "invsqrt_seeds": float(isd_rows),
            "invsqrt_multiplies": float(isd_rows * 3),  # one Newton iteration
            "predictor_ops": float(predicted_rows * 2),
            "norm_multiplies": float(norm_elements * 2),  # scale + alpha
            "norm_adds": float(norm_elements * 2),  # subtract mean + beta
            "norm_converts": float(norm_elements),
            "memory_bytes": float(
                (norm_elements + stats_elements) * workload_bytes_per_element(workload)
            ),
        }
        return counts

    # -- estimation -----------------------------------------------------------------

    def estimate(
        self,
        config: AcceleratorConfig,
        workload: NormalizationWorkload,
        latency_seconds: float = 0.0,
    ) -> EnergyReport:
        """Energy report of one workload on one configuration."""
        fmt = config.data_format
        counts = self.operation_counts(workload)
        pj = {
            "statistics": (
                counts["stats_multiplies"] * self._op_energy("multiply", fmt)
                + counts["stats_adds"] * self._op_energy("add", fmt)
                + counts["stats_converts"] * self._op_energy("convert", fmt)
            ),
            "invsqrt": (
                counts["invsqrt_seeds"] * self._op_energy("invsqrt_seed", fmt)
                + counts["invsqrt_multiplies"] * self._op_energy("multiply", fmt)
            ),
            "predictor": counts["predictor_ops"] * self._op_energy("add", fmt),
            "normalization": (
                counts["norm_multiplies"] * self._op_energy("multiply", fmt)
                + counts["norm_adds"] * self._op_energy("add", fmt)
                + counts["norm_converts"] * self._op_energy("convert", fmt)
            ),
            "memory": counts["memory_bytes"] * self.base_energies_pj["memory_access_per_byte"],
        }
        per_unit_nj = {unit: value * 1e-3 for unit, value in pj.items()}
        return EnergyReport(
            config_name=config.name,
            workload_model=workload.model_name,
            per_unit_nj=per_unit_nj,
            latency_seconds=latency_seconds,
        )

    def savings_from_skipping(
        self, config: AcceleratorConfig, workload: NormalizationWorkload
    ) -> float:
        """Fractional energy saved relative to the same workload without HAAN."""
        baseline = self.estimate(config, workload.without_optimizations())
        optimized = self.estimate(config, workload)
        if baseline.total_nj == 0:
            return 0.0
        return 1.0 - optimized.total_nj / baseline.total_nj


def workload_bytes_per_element(workload: NormalizationWorkload) -> float:
    """Bytes moved per element, from the workload's storage format.

    The workload itself does not carry a data format (that is a property of
    the accelerator configuration), so FP16 storage is assumed -- the format
    of all HAAN-v* configurations and of the GPU baseline profiling in the
    paper.
    """
    return 2.0
