"""Pipeline scheduling model of the HAAN accelerator.

Section IV-C: "The input statistics calculator, square root inverter, and
normalization unit operate in a pipelined manner across multiple input
samples", and Section V-B: "by setting particular p_d, p_n, the time of the
different stages of the pipeline is evenly distributed, so that we can
maximize the utilization rate of hardware units".

:class:`PipelineModel` computes the steady-state behaviour of such a
row-pipelined datapath: total cycles for ``V`` rows equal the pipeline fill
time plus ``V`` times the bottleneck stage's per-row cycle count.  It also
reports per-stage utilization, which both the power model (idle stages burn
less dynamic power) and the pipeline-balance ablation use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence


@dataclass(frozen=True)
class PipelineStage:
    """One stage of a row-pipelined datapath."""

    name: str
    cycles_per_row: int
    fill_latency: int = 0

    def __post_init__(self) -> None:
        if self.cycles_per_row < 0 or self.fill_latency < 0:
            raise ValueError("stage cycle counts must be non-negative")


@dataclass(frozen=True)
class PipelineSchedule:
    """The result of scheduling ``num_rows`` rows through a pipeline."""

    stages: tuple[PipelineStage, ...]
    num_rows: int
    total_cycles: int
    bottleneck_stage: str
    utilization: Dict[str, float]

    @property
    def bottleneck_cycles_per_row(self) -> int:
        """Per-row cycles of the bottleneck stage."""
        for stage in self.stages:
            if stage.name == self.bottleneck_stage:
                return stage.cycles_per_row
        return 0

    def balance(self) -> float:
        """Ratio of the mean stage utilization to the bottleneck's (1.0 = even)."""
        if not self.utilization:
            return 1.0
        values = list(self.utilization.values())
        peak = max(values)
        return float(sum(values) / len(values) / peak) if peak > 0 else 1.0


class PipelineModel:
    """Schedules rows through a sequence of stages pipelined across rows."""

    def __init__(self, stages: Sequence[PipelineStage]):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = tuple(stages)

    @property
    def fill_cycles(self) -> int:
        """Cycles for the first row to traverse every stage."""
        return sum(stage.cycles_per_row + stage.fill_latency for stage in self.stages)

    @property
    def bottleneck(self) -> PipelineStage:
        """The stage with the largest per-row cycle count."""
        return max(self.stages, key=lambda stage: stage.cycles_per_row)

    def schedule(self, num_rows: int) -> PipelineSchedule:
        """Cycle count and per-stage utilization for ``num_rows`` rows.

        In steady state a new row enters every ``bottleneck.cycles_per_row``
        cycles, so the total is the fill time of the first row plus the
        issue interval times the remaining rows.  Stages cheaper than the
        bottleneck sit idle part of the time; their utilization is the
        ratio of their per-row work to the issue interval.
        """
        if num_rows < 0:
            raise ValueError("num_rows must be non-negative")
        if num_rows == 0:
            return PipelineSchedule(
                stages=self.stages,
                num_rows=0,
                total_cycles=0,
                bottleneck_stage=self.bottleneck.name,
                utilization={stage.name: 0.0 for stage in self.stages},
            )
        interval = max(1, self.bottleneck.cycles_per_row)
        total = self.fill_cycles + interval * (num_rows - 1)
        utilization = {}
        for stage in self.stages:
            busy = stage.cycles_per_row * num_rows
            utilization[stage.name] = min(1.0, busy / total) if total else 0.0
        return PipelineSchedule(
            stages=self.stages,
            num_rows=num_rows,
            total_cycles=int(total),
            bottleneck_stage=self.bottleneck.name,
            utilization=utilization,
        )

    def issue_interval(self) -> int:
        """Cycles between consecutive rows entering the pipeline."""
        return max(1, self.bottleneck.cycles_per_row)
