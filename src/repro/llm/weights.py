"""Deterministic synthetic weight generation.

Real checkpoints are unavailable offline, so models are populated with
seeded random weights whose *scales* are chosen to reproduce the activation
statistics HAAN exploits (paper Section III-A):

* In a pre-norm transformer the residual stream accumulates the output of
  every attention/MLP branch.  We scale the branch output projections so the
  branch added at block ``l`` contributes variance ``c0 * r**l`` (with
  ``r = config.residual_growth``), which makes the residual-stream variance
  grow geometrically with depth.  The ISD seen by deeper normalization
  layers therefore decays, and ``log(ISD)`` becomes linear in the layer
  index over the deep layers -- the exact phenomenon Figure 2 of the paper
  reports for LLaMA-7B and that Algorithm 1 searches for.
* The affine parameters ``alpha``/``beta`` get small per-layer variation so
  the normalization layers are not trivially identical.

Everything is derived from ``config.seed``; two processes construct
bit-identical models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.llm.config import ModelConfig, NormKind
from repro.llm.layers import AttentionWeights, Linear, MLPWeights


@dataclass
class NormParameters:
    """Affine parameters of one normalization layer."""

    gamma: np.ndarray
    beta: np.ndarray


@dataclass
class BlockWeights:
    """All parameters of one transformer block."""

    attention: AttentionWeights
    mlp: MLPWeights
    attn_norm: NormParameters
    mlp_norm: NormParameters


@dataclass
class ModelWeights:
    """All parameters of one synthetic model."""

    config: ModelConfig
    embedding: np.ndarray
    positional: np.ndarray
    blocks: List[BlockWeights] = field(default_factory=list)
    final_norm: NormParameters | None = None

    @property
    def num_parameters(self) -> int:
        """Actual parameter count of the simulation model (not the real LLM)."""
        count = self.embedding.size + self.positional.size
        for block in self.blocks:
            for lin in (
                block.attention.wq,
                block.attention.wk,
                block.attention.wv,
                block.attention.wo,
                block.mlp.w_in,
                block.mlp.w_out,
            ):
                count += lin.weight.size + lin.bias.size
            count += block.attn_norm.gamma.size + block.attn_norm.beta.size
            count += block.mlp_norm.gamma.size + block.mlp_norm.beta.size
        if self.final_norm is not None:
            count += self.final_norm.gamma.size + self.final_norm.beta.size
        return int(count)


def _linear(rng: np.random.Generator, fan_in: int, fan_out: int, std: float) -> Linear:
    """A bias-free linear layer with i.i.d. Gaussian weights of the given std."""
    weight = rng.normal(0.0, std, size=(fan_in, fan_out))
    return Linear(weight, bias=np.zeros(fan_out))


def _norm_parameters(rng: np.random.Generator, hidden: int, kind: NormKind) -> NormParameters:
    """Affine parameters: gamma near 1, beta near 0 (zero for RMSNorm)."""
    gamma = 1.0 + 0.05 * rng.standard_normal(hidden)
    if kind is NormKind.RMSNORM:
        beta = np.zeros(hidden)
    else:
        beta = 0.02 * rng.standard_normal(hidden)
    return NormParameters(gamma=gamma, beta=beta)


def branch_variance_schedule(config: ModelConfig) -> np.ndarray:
    """Target variance contributed by each block's branches.

    Block ``l`` contributes ``c0 * r**l``; this geometric schedule is what
    produces the log-linear ISD decay in the deeper layers.
    """
    exponents = np.arange(config.num_blocks, dtype=np.float64)
    return config.initial_branch_variance * np.power(config.residual_growth, exponents)


def generate_block_weights(config: ModelConfig, block_index: int, rng: np.random.Generator) -> BlockWeights:
    """Generate the weights of one block with the depth-dependent branch scale."""
    hidden = config.sim_hidden_size
    mlp_hidden = config.mlp_hidden_size
    branch_var = float(branch_variance_schedule(config)[block_index])
    # The attention and MLP branches each contribute half of the target
    # block variance.  Output-projection std is derived assuming roughly
    # unit-variance branch-internal activations (the pre-norm input is
    # normalized, Q/K/V and w_in use 1/sqrt(fan_in) scaling).
    branch_std = np.sqrt(branch_var / 2.0)
    qkv_std = 1.0 / np.sqrt(hidden)
    attention = AttentionWeights(
        wq=_linear(rng, hidden, hidden, qkv_std),
        wk=_linear(rng, hidden, hidden, qkv_std),
        wv=_linear(rng, hidden, hidden, qkv_std),
        wo=_linear(rng, hidden, hidden, branch_std / np.sqrt(hidden)),
    )
    # GeLU roughly halves the variance of a zero-mean input; compensate so
    # the MLP branch lands near its target contribution.
    gelu_compensation = 1.6
    mlp = MLPWeights(
        w_in=_linear(rng, hidden, mlp_hidden, 1.0 / np.sqrt(hidden)),
        w_out=_linear(rng, mlp_hidden, hidden, gelu_compensation * branch_std / np.sqrt(mlp_hidden)),
    )
    return BlockWeights(
        attention=attention,
        mlp=mlp,
        attn_norm=_norm_parameters(rng, hidden, config.norm_kind),
        mlp_norm=_norm_parameters(rng, hidden, config.norm_kind),
    )


def sinusoidal_positions(max_seq_len: int, hidden: int) -> np.ndarray:
    """Deterministic sinusoidal positional embeddings."""
    positions = np.arange(max_seq_len, dtype=np.float64)[:, None]
    dims = np.arange(hidden, dtype=np.float64)[None, :]
    angle_rates = 1.0 / np.power(10000.0, (2.0 * (dims // 2)) / hidden)
    angles = positions * angle_rates
    table = np.zeros((max_seq_len, hidden))
    table[:, 0::2] = np.sin(angles[:, 0::2])
    table[:, 1::2] = np.cos(angles[:, 1::2])
    return 0.1 * table


def generate_model_weights(config: ModelConfig) -> ModelWeights:
    """Generate all parameters of a model from its configuration seed."""
    rng = np.random.default_rng(config.seed)
    hidden = config.sim_hidden_size
    embedding = rng.normal(0.0, 0.7, size=(config.vocab_size, hidden))
    positional = sinusoidal_positions(config.max_seq_len, hidden)
    blocks = [
        generate_block_weights(config, block_index, rng)
        for block_index in range(config.num_blocks)
    ]
    final_norm = _norm_parameters(rng, hidden, config.norm_kind) if config.final_norm else None
    return ModelWeights(
        config=config,
        embedding=embedding,
        positional=positional,
        blocks=blocks,
        final_norm=final_norm,
    )
