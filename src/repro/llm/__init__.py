"""Synthetic LLM substrate: a NumPy transformer inference engine.

This subpackage stands in for the HuggingFace checkpoints used in the paper
(LLaMA-7B, OPT-2.7B, GPT-2); see DESIGN.md for the substitution rationale.
It provides model configurations mirroring the paper's models (same number
and type of normalization layers), deterministic synthetic weights that
reproduce the residual-stream variance growth behind the ISD decay, and the
forward-pass machinery HAAN hooks into.
"""

from repro.llm.config import (
    ModelConfig,
    NormKind,
    available_models,
    get_model_config,
    register_model_config,
)
from repro.llm.hooks import ActivationContext, NormLayerRecord, StatisticsTrace
from repro.llm.layers import (
    Embedding,
    FeedForward,
    Linear,
    MultiHeadAttention,
    causal_mask,
    gelu,
    log_softmax,
    softmax,
)
from repro.llm.model import TransformerBlock, TransformerModel
from repro.llm.normalization import BaseNorm, LayerNorm, RMSNorm, make_norm
from repro.llm.tokenizer import Tokenizer
from repro.llm.datasets import (
    MultipleChoiceItem,
    SyntheticCorpus,
    CorpusConfig,
    available_tasks,
    calibration_texts,
    generate_choice_items,
    perplexity_texts,
    TASK_SHORT_NAMES,
)
from repro.llm.weights import ModelWeights, generate_model_weights, branch_variance_schedule

__all__ = [
    "ModelConfig",
    "NormKind",
    "available_models",
    "get_model_config",
    "register_model_config",
    "ActivationContext",
    "NormLayerRecord",
    "StatisticsTrace",
    "Embedding",
    "FeedForward",
    "Linear",
    "MultiHeadAttention",
    "causal_mask",
    "gelu",
    "log_softmax",
    "softmax",
    "TransformerBlock",
    "TransformerModel",
    "BaseNorm",
    "LayerNorm",
    "RMSNorm",
    "make_norm",
    "Tokenizer",
    "MultipleChoiceItem",
    "SyntheticCorpus",
    "CorpusConfig",
    "available_tasks",
    "calibration_texts",
    "generate_choice_items",
    "perplexity_texts",
    "TASK_SHORT_NAMES",
    "ModelWeights",
    "generate_model_weights",
    "branch_variance_schedule",
]
