"""Synthetic text corpora standing in for Wikitext and the evaluation tasks.

The paper calibrates Algorithm 1 with 100 random samples from Wikitext and
evaluates accuracy on PIQA / WinoGrande / HellaSwag / ARC-Easy / ARC-Challenge.
Those datasets are not available offline, so this module generates
deterministic synthetic substitutes:

* :class:`SyntheticCorpus` -- a second-order Markov word generator over a
  Zipf-distributed vocabulary.  It produces text whose token-id sequences
  have realistic repetition structure, which is all the calibration pass
  needs (Algorithm 1 consumes only per-layer ISD traces).
* :class:`MultipleChoiceItem` / :func:`generate_choice_items` -- raw
  multiple-choice items (context plus candidate continuations).  Labelling
  of the "correct" option against a reference model happens in
  :mod:`repro.eval.tasks`, because correctness is defined relative to the
  un-approximated model (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

# A small closed vocabulary of word shapes; the tokenizer hashes them into
# ids, and the Markov chain below strings them into sentences.
_BASE_WORDS = [
    "the", "a", "of", "and", "to", "in", "is", "was", "for", "on", "that",
    "with", "as", "by", "at", "from", "it", "an", "be", "are", "this",
    "which", "or", "had", "not", "but", "have", "one", "two", "three",
    "system", "model", "layer", "network", "data", "value", "result",
    "method", "design", "hardware", "power", "latency", "memory", "cache",
    "vector", "token", "input", "output", "norm", "variance", "mean",
    "signal", "unit", "block", "stage", "pipeline", "clock", "cycle",
    "energy", "matrix", "attention", "language", "sequence", "length",
    "precision", "format", "fixed", "float", "integer", "sample", "test",
    "accuracy", "error", "range", "scale", "field", "bit", "word", "core",
    "engine", "device", "board", "chip", "logic", "array", "tree", "node",
    "graph", "path", "state", "step", "time", "rate", "ratio", "factor",
    "region", "paper", "study", "work", "task", "set", "list", "index",
]


@dataclass(frozen=True)
class CorpusConfig:
    """Configuration of the synthetic corpus generator."""

    vocab_words: int = 400
    zipf_exponent: float = 1.1
    sentence_length_mean: int = 14
    sentence_length_std: int = 4
    seed: int = 1234


class SyntheticCorpus:
    """Deterministic Markov-chain text generator.

    The generator builds an expanded word list (base words plus numbered
    variants), assigns Zipf-like unigram probabilities, and samples
    sentences with a per-word bigram bias so that text has local structure.
    Everything is seeded, so two processes generate identical corpora.
    """

    def __init__(self, config: CorpusConfig | None = None):
        self.config = config or CorpusConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._words = self._build_word_list()
        self._unigram = self._build_unigram()
        self._transition_seeds = self._rng.integers(0, 2**31 - 1, size=len(self._words))

    def _build_word_list(self) -> List[str]:
        words = list(_BASE_WORDS)
        index = 0
        while len(words) < self.config.vocab_words:
            words.append(f"{_BASE_WORDS[index % len(_BASE_WORDS)]}{index}")
            index += 1
        return words[: self.config.vocab_words]

    def _build_unigram(self) -> np.ndarray:
        ranks = np.arange(1, len(self._words) + 1, dtype=np.float64)
        probs = ranks ** (-self.config.zipf_exponent)
        return probs / probs.sum()

    def _transition(self, word_index: int) -> np.ndarray:
        """Bigram distribution conditioned on the previous word (lazy, seeded)."""
        rng = np.random.default_rng(int(self._transition_seeds[word_index]))
        noise = rng.gamma(shape=0.3, scale=1.0, size=len(self._words))
        probs = self._unigram * noise
        return probs / probs.sum()

    def sentence(self, rng: np.random.Generator) -> str:
        """Sample one sentence."""
        length = max(3, int(rng.normal(self.config.sentence_length_mean, self.config.sentence_length_std)))
        word_idx = int(rng.choice(len(self._words), p=self._unigram))
        tokens = [self._words[word_idx]]
        for _ in range(length - 1):
            word_idx = int(rng.choice(len(self._words), p=self._transition(word_idx)))
            tokens.append(self._words[word_idx])
        return " ".join(tokens) + "."

    def paragraph(self, rng: np.random.Generator, sentences: int = 4) -> str:
        """Sample a paragraph of several sentences."""
        return " ".join(self.sentence(rng) for _ in range(sentences))

    def documents(self, count: int, sentences_per_doc: int = 4, seed: int | None = None) -> List[str]:
        """Generate ``count`` documents deterministically."""
        rng = np.random.default_rng(self.config.seed if seed is None else seed)
        return [self.paragraph(rng, sentences=sentences_per_doc) for _ in range(count)]


def calibration_texts(num_samples: int = 100, seed: int = 99) -> List[str]:
    """The stand-in for "100 random samples from the Wikitext dataset"."""
    corpus = SyntheticCorpus(CorpusConfig(seed=seed))
    return corpus.documents(num_samples, sentences_per_doc=5, seed=seed)


def perplexity_texts(num_samples: int = 32, seed: int = 7) -> List[str]:
    """Held-out documents used for perplexity measurements."""
    corpus = SyntheticCorpus(CorpusConfig(seed=seed + 1))
    return corpus.documents(num_samples, sentences_per_doc=6, seed=seed)


@dataclass(frozen=True)
class MultipleChoiceItem:
    """One multiple-choice question: a context and candidate continuations.

    The index of the "gold" option is assigned later by
    :mod:`repro.eval.tasks` relative to the reference model (see DESIGN.md).
    """

    context: str
    choices: Sequence[str]
    item_id: int


# The five downstream tasks of the paper, with distinct generation seeds and
# distractor statistics so each task has its own difficulty profile.
TASK_PROFILES: Dict[str, Dict[str, float]] = {
    "winogrande": {"seed": 101, "num_choices": 2, "context_sentences": 2, "choice_sentences": 1},
    "piqa": {"seed": 202, "num_choices": 2, "context_sentences": 1, "choice_sentences": 2},
    "hellaswag": {"seed": 303, "num_choices": 4, "context_sentences": 2, "choice_sentences": 1},
    "arc_easy": {"seed": 404, "num_choices": 4, "context_sentences": 1, "choice_sentences": 1},
    "arc_challenge": {"seed": 505, "num_choices": 4, "context_sentences": 3, "choice_sentences": 1},
}

#: Short task labels used in the paper's tables.
TASK_SHORT_NAMES: Dict[str, str] = {
    "winogrande": "WG",
    "piqa": "PQ",
    "hellaswag": "HS",
    "arc_easy": "A-e",
    "arc_challenge": "A-c",
}


def available_tasks() -> List[str]:
    """Names of the five synthetic downstream tasks."""
    return list(TASK_PROFILES)


def generate_choice_items(task: str, num_items: int, seed_offset: int = 0) -> List[MultipleChoiceItem]:
    """Generate the raw (unlabelled) items of one synthetic task."""
    if task not in TASK_PROFILES:
        raise KeyError(f"unknown task {task!r}; available: {available_tasks()}")
    profile = TASK_PROFILES[task]
    seed = int(profile["seed"]) + seed_offset
    corpus = SyntheticCorpus(CorpusConfig(seed=seed))
    rng = np.random.default_rng(seed)
    items = []
    for item_id in range(num_items):
        context = corpus.paragraph(rng, sentences=int(profile["context_sentences"]))
        choices = [
            corpus.paragraph(rng, sentences=int(profile["choice_sentences"]))
            for _ in range(int(profile["num_choices"]))
        ]
        items.append(MultipleChoiceItem(context=context, choices=tuple(choices), item_id=item_id))
    return items
