"""Deterministic word-level tokenizer for the synthetic corpora.

The reproduction has no network access, so instead of a byte-pair-encoding
vocabulary trained on real text we use a simple, fully deterministic
word-level tokenizer: every distinct word maps to an id via a stable hash
into the configured vocabulary range.  The tokenizer only has to drive the
simulated LLM through realistic token-id sequences; linguistic fidelity is
irrelevant to the normalization statistics HAAN operates on.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

_WORD_RE = re.compile(r"[a-zA-Z0-9']+|[.,;:!?]")


def _stable_hash(word: str) -> int:
    """A process-independent hash of a word (Python's ``hash`` is salted)."""
    digest = hashlib.sha256(word.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class Tokenizer:
    """Hash-based word-level tokenizer.

    Reserved ids: 0 = padding, 1 = beginning-of-sequence, 2 = unknown.
    All other words hash into ``[num_reserved, vocab_size)``.
    """

    vocab_size: int = 2048
    num_reserved: int = 3
    pad_id: int = 0
    bos_id: int = 1
    unk_id: int = 2
    _cache: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.vocab_size <= self.num_reserved:
            raise ValueError("vocab_size must exceed the number of reserved ids")

    def token_id(self, word: str) -> int:
        """Map one word to its token id."""
        if not word:
            return self.unk_id
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        span = self.vocab_size - self.num_reserved
        tid = self.num_reserved + (_stable_hash(word.lower()) % span)
        self._cache[word] = tid
        return tid

    def tokenize_words(self, text: str) -> List[str]:
        """Split text into the word/punctuation units the tokenizer understands."""
        return _WORD_RE.findall(text)

    def encode(self, text: str, add_bos: bool = True, max_len: int | None = None) -> List[int]:
        """Encode a text string into token ids."""
        ids = [self.token_id(w) for w in self.tokenize_words(text)]
        if add_bos:
            ids = [self.bos_id] + ids
        if max_len is not None:
            ids = ids[:max_len]
        return ids

    def encode_batch(
        self,
        texts: Sequence[str],
        max_len: int,
        add_bos: bool = True,
    ) -> List[List[int]]:
        """Encode and right-pad a batch of texts to a common length."""
        batch = []
        for text in texts:
            ids = self.encode(text, add_bos=add_bos, max_len=max_len)
            if len(ids) < max_len:
                ids = ids + [self.pad_id] * (max_len - len(ids))
            batch.append(ids)
        return batch

    def decode(self, ids: Iterable[int]) -> str:
        """Best-effort decoding (ids are not invertible; used for debugging)."""
        parts = []
        for tid in ids:
            if tid == self.pad_id:
                continue
            if tid == self.bos_id:
                parts.append("<bos>")
            elif tid == self.unk_id:
                parts.append("<unk>")
            else:
                parts.append(f"tok{tid}")
        return " ".join(parts)
