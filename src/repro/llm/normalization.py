"""Reference LayerNorm and RMSNorm layers (paper equations (1) and (2)).

These are the exact normalization operations the HAAN algorithm
approximates.  Both layers share a common interface:

* ``compute_statistics(x)`` returns the per-row ``(mean, isd)`` pair, where
  ``isd = 1/sigma`` (LayerNorm) or ``1/rms`` (RMSNorm, with mean pinned to
  zero since RMSNorm does not re-center).  The equations themselves live in
  :mod:`repro.engine.stats` -- the single source shared with the execution
  backends -- and are only *invoked* here.
* ``__call__(x, context)`` runs the full operation and deposits the
  statistics into the :class:`~repro.llm.hooks.ActivationContext` so later
  layers (and the calibration recorder) can see them.
* ``forward_batched(...)`` / ``forward_batched_reference(...)`` normalize a
  stack of independent request segments through the layer's compiled
  execution engine (:mod:`repro.engine`): the layer compiles its
  :class:`~repro.engine.plan.ExecutionPlan` once and delegates execution to
  a registered backend, so no layer carries backend-specific branching.

The HAAN-accelerated layer in :mod:`repro.core.haan_norm` subclasses
:class:`BaseNorm` and only overrides the statistics computation; the affine
path, the context protocol and the engine delegation stay identical.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine.stats import layernorm_row_statistics, rmsnorm_row_statistics
from repro.llm.config import NormKind
from repro.llm.hooks import ActivationContext, NormLayerRecord
from repro.numerics import kernels


class BaseNorm:
    """Shared machinery of LayerNorm / RMSNorm.

    Parameters
    ----------
    hidden_size:
        Length of the vectors being normalized (``E`` in the paper).
    layer_index:
        Position of this layer in the model's normalization-layer order
        (0-based); Algorithm 1 and the ISD predictor address layers by this
        index.
    name:
        Stable, human-readable layer name (e.g. ``"block3.mlp_norm"``).
    gamma / beta:
        The learnable affine parameters ``alpha`` and ``beta``.  They are
        fixed during inference, exactly as in the paper.
    eps:
        Numerical-stability epsilon added to the variance.
    """

    kind: NormKind = NormKind.LAYERNORM

    def __init__(
        self,
        hidden_size: int,
        layer_index: int = 0,
        name: str = "norm",
        gamma: Optional[np.ndarray] = None,
        beta: Optional[np.ndarray] = None,
        eps: float = 1e-5,
    ):
        self.hidden_size = int(hidden_size)
        self.layer_index = int(layer_index)
        self.name = name
        self.eps = float(eps)
        self.gamma = np.ones(hidden_size) if gamma is None else np.asarray(gamma, dtype=np.float64)
        self.beta = np.zeros(hidden_size) if beta is None else np.asarray(beta, dtype=np.float64)
        if self.gamma.shape != (hidden_size,):
            raise ValueError("gamma must have shape (hidden_size,)")
        if self.beta.shape != (hidden_size,):
            raise ValueError("beta must have shape (hidden_size,)")
        self._plan = None
        self._engines = {}

    # -- execution engine --------------------------------------------------

    @property
    def plan(self):
        """This layer's compiled :class:`~repro.engine.plan.ExecutionPlan`.

        Compiled lazily on first use and cached; :meth:`load_affine`
        invalidates it.  The import is function-level on purpose: the
        engine's backend modules import :mod:`repro.core`, so importing
        them while this module loads would cycle.
        """
        if self._plan is None:
            from repro.engine.plan import plan_for_layer

            self._plan = plan_for_layer(self)
        return self._plan

    def engine_for(self, backend: str = "vectorized", accelerator: Optional[str] = None):
        """The cached :class:`~repro.engine.registry.Engine` for a backend.

        Unknown backend names raise ``ValueError`` listing the registry
        contents.  Engines share this layer's single compiled plan.

        ``accelerator`` selects a named :class:`AcceleratorConfig`
        (HAAN-v1/v2/v3 or a baseline: see
        :func:`repro.hardware.configs.resolve_accelerator_config`) for
        cost-modelling backends, so one layer can be priced on several
        datapaths; each ``(backend, accelerator)`` pair caches its own
        engine.  Backends without a cost model reject the selection.
        """
        cache_key = backend if accelerator is None else (backend, accelerator)
        engine = self._engines.get(cache_key)
        if engine is None:
            from repro.engine.registry import build

            if accelerator is None:
                engine = build(self.plan, backend=backend)
            else:
                from repro.hardware.configs import resolve_accelerator_config

                config = resolve_accelerator_config(accelerator)
                try:
                    engine = build(self.plan, backend=backend, accelerator_config=config)
                except TypeError as error:
                    raise ValueError(
                        f"backend {backend!r} does not accept an accelerator "
                        f"config; pick a cost-modelling backend (simulated*) "
                        f"or drop accelerator={accelerator!r}"
                    ) from error
            self._engines[cache_key] = engine
        return engine

    def invalidate_engines(self) -> None:
        """Drop the cached plan and engines (configuration changed)."""
        self._plan = None
        self._engines = {}

    # -- statistics -------------------------------------------------------

    def compute_statistics(
        self, rows: np.ndarray, context: Optional[ActivationContext] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row (mean, ISD) of a 2-D ``(num_rows, hidden)`` array."""
        raise NotImplementedError

    # -- forward ----------------------------------------------------------

    def __call__(self, x: np.ndarray, context: Optional[ActivationContext] = None) -> np.ndarray:
        """Normalize ``x`` along its last dimension and apply the affine transform."""
        arr = np.asarray(x, dtype=np.float64)
        if arr.shape[-1] != self.hidden_size:
            raise ValueError(
                f"last dimension {arr.shape[-1]} does not match hidden size {self.hidden_size}"
            )
        original_shape = arr.shape
        rows = arr.reshape(-1, self.hidden_size)
        mean, isd = self.compute_statistics(rows, context)
        out = kernels.normalize_affine(rows, mean, isd, self.gamma, self.beta)
        if context is not None:
            context.store_isd(self.layer_index, isd)
            context.record(
                NormLayerRecord(
                    layer_index=self.layer_index,
                    layer_name=self.name,
                    mean=mean.copy(),
                    isd=isd.copy(),
                    input_variance=self._variance_from_isd(isd),
                    was_predicted=self._last_was_predicted(),
                    was_subsampled=self._last_was_subsampled(),
                )
            )
        return out.reshape(original_shape)

    def forward_batched(
        self,
        rows: np.ndarray,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
        workspace: Optional[kernels.KernelWorkspace] = None,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Serving fast path: normalize stacked request rows in one call.

        ``rows`` is a ``(total_rows, hidden)`` matrix formed by concatenating
        the rows of many independent requests; ``segment_starts`` marks the
        first row of each request.  Delegates to this layer's compiled
        engine on the ``vectorized`` backend (the fused single-pass kernel),
        bit-identical to calling the layer once per segment.  ``anchor_isd``
        carries one anchor-layer ISD per stacked row for skipped layers
        (``NaN`` where a request's context lacks the anchor); ``workspace``
        pools kernel scratch and ``out`` receives the normalized rows (both
        optional).  Returns ``(output, mean, isd)`` without touching any
        activation context.  Shape validation happens once, inside the
        backend (``plan.check_rows``).
        """
        self._note_batched_execution()
        return self.engine_for("vectorized").run(
            rows, segment_starts, anchor_isd, workspace=workspace, out=out
        )

    def forward_batched_reference(
        self,
        rows: np.ndarray,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Golden-model batched path: the unfused reference backend.

        Separate full-array passes for quantize, statistics and affine with
        fresh intermediate allocations.  The fused path behind
        :meth:`forward_batched` must match this bit for bit; the golden
        equivalence suites and the kernel benchmark both call it.  Kept as
        a thin shim over ``engine_for("reference")`` for callers that
        predate the engine.
        """
        self._note_batched_execution()
        return self.engine_for("reference").run(rows, segment_starts, anchor_isd)

    # Hooks for subclasses (the HAAN layer) to report how statistics were
    # obtained; the reference layers always compute them exactly.
    def _note_batched_execution(self) -> None:
        """Record path flags of a batched call (no-op for exact layers)."""

    def _last_was_predicted(self) -> bool:
        return False

    def _last_was_subsampled(self) -> bool:
        return False

    def _variance_from_isd(self, isd: np.ndarray) -> np.ndarray:
        """Recover the (epsilon-inclusive) variance from the ISD for recording."""
        return 1.0 / np.square(isd)

    # -- parameter helpers --------------------------------------------------

    def load_affine(self, gamma: np.ndarray, beta: np.ndarray) -> None:
        """Replace the affine parameters (used when wrapping an existing layer)."""
        gamma = np.asarray(gamma, dtype=np.float64)
        beta = np.asarray(beta, dtype=np.float64)
        if gamma.shape != (self.hidden_size,) or beta.shape != (self.hidden_size,):
            raise ValueError("affine parameter shape mismatch")
        self.gamma = gamma
        self.beta = beta
        # The compiled plan holds the affine arrays by reference.
        self.invalidate_engines()


class LayerNorm(BaseNorm):
    """Layer normalization (paper equation (1))."""

    kind = NormKind.LAYERNORM

    def compute_statistics(
        self, rows: np.ndarray, context: Optional[ActivationContext] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        return layernorm_row_statistics(rows, self.eps)


class RMSNorm(BaseNorm):
    """Root-mean-square normalization (paper equation (2)).

    RMSNorm does not re-center, so the "mean" returned by
    :meth:`compute_statistics` is identically zero and the ISD is the
    reciprocal of the RMS value ``r_z``.
    """

    kind = NormKind.RMSNORM

    def compute_statistics(
        self, rows: np.ndarray, context: Optional[ActivationContext] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        return rmsnorm_row_statistics(rows, self.eps)


def make_norm(
    kind: NormKind,
    hidden_size: int,
    layer_index: int,
    name: str,
    gamma: Optional[np.ndarray] = None,
    beta: Optional[np.ndarray] = None,
    eps: float = 1e-5,
) -> BaseNorm:
    """Factory constructing the right normalization class for a model family."""
    cls = LayerNorm if kind is NormKind.LAYERNORM else RMSNorm
    return cls(
        hidden_size=hidden_size,
        layer_index=layer_index,
        name=name,
        gamma=gamma,
        beta=beta,
        eps=eps,
    )
