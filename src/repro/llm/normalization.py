"""Reference LayerNorm and RMSNorm layers (paper equations (1) and (2)).

These are the exact normalization operations the HAAN algorithm
approximates.  Both layers share a common interface:

* ``compute_statistics(x)`` returns the per-row ``(mean, isd)`` pair, where
  ``isd = 1/sigma`` (LayerNorm) or ``1/rms`` (RMSNorm, with mean pinned to
  zero since RMSNorm does not re-center).
* ``apply_affine(normalized)`` multiplies by ``alpha`` and adds ``beta``.
* ``__call__(x, context)`` runs the full operation and deposits the
  statistics into the :class:`~repro.llm.hooks.ActivationContext` so later
  layers (and the calibration recorder) can see them.

The HAAN-accelerated layer in :mod:`repro.core.haan_norm` subclasses
:class:`BaseNorm` and only overrides the statistics computation, so the
affine path and the context protocol stay identical.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.llm.config import NormKind
from repro.llm.hooks import ActivationContext, NormLayerRecord
from repro.numerics import kernels


class BaseNorm:
    """Shared machinery of LayerNorm / RMSNorm.

    Parameters
    ----------
    hidden_size:
        Length of the vectors being normalized (``E`` in the paper).
    layer_index:
        Position of this layer in the model's normalization-layer order
        (0-based); Algorithm 1 and the ISD predictor address layers by this
        index.
    name:
        Stable, human-readable layer name (e.g. ``"block3.mlp_norm"``).
    gamma / beta:
        The learnable affine parameters ``alpha`` and ``beta``.  They are
        fixed during inference, exactly as in the paper.
    eps:
        Numerical-stability epsilon added to the variance.
    """

    kind: NormKind = NormKind.LAYERNORM

    def __init__(
        self,
        hidden_size: int,
        layer_index: int = 0,
        name: str = "norm",
        gamma: Optional[np.ndarray] = None,
        beta: Optional[np.ndarray] = None,
        eps: float = 1e-5,
    ):
        self.hidden_size = int(hidden_size)
        self.layer_index = int(layer_index)
        self.name = name
        self.eps = float(eps)
        self.gamma = np.ones(hidden_size) if gamma is None else np.asarray(gamma, dtype=np.float64)
        self.beta = np.zeros(hidden_size) if beta is None else np.asarray(beta, dtype=np.float64)
        if self.gamma.shape != (hidden_size,):
            raise ValueError("gamma must have shape (hidden_size,)")
        if self.beta.shape != (hidden_size,):
            raise ValueError("beta must have shape (hidden_size,)")

    # -- statistics -------------------------------------------------------

    def compute_statistics(
        self, rows: np.ndarray, context: Optional[ActivationContext] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row (mean, ISD) of a 2-D ``(num_rows, hidden)`` array."""
        raise NotImplementedError

    # -- forward ----------------------------------------------------------

    def __call__(self, x: np.ndarray, context: Optional[ActivationContext] = None) -> np.ndarray:
        """Normalize ``x`` along its last dimension and apply the affine transform."""
        arr = np.asarray(x, dtype=np.float64)
        if arr.shape[-1] != self.hidden_size:
            raise ValueError(
                f"last dimension {arr.shape[-1]} does not match hidden size {self.hidden_size}"
            )
        original_shape = arr.shape
        rows = arr.reshape(-1, self.hidden_size)
        mean, isd = self.compute_statistics(rows, context)
        out = kernels.normalize_affine(rows, mean, isd, self.gamma, self.beta)
        if context is not None:
            context.store_isd(self.layer_index, isd)
            context.record(
                NormLayerRecord(
                    layer_index=self.layer_index,
                    layer_name=self.name,
                    mean=mean.copy(),
                    isd=isd.copy(),
                    input_variance=self._variance_from_isd(isd),
                    was_predicted=self._last_was_predicted(),
                    was_subsampled=self._last_was_subsampled(),
                )
            )
        return out.reshape(original_shape)

    def forward_batched(
        self,
        rows: np.ndarray,
        segment_starts: Optional[np.ndarray] = None,
        anchor_isd: Optional[np.ndarray] = None,
        workspace: Optional[kernels.KernelWorkspace] = None,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Serving fast path: normalize stacked request rows in one call.

        ``rows`` is a ``(total_rows, hidden)`` matrix formed by concatenating
        the rows of many independent requests; ``segment_starts`` marks the
        first row of each request.  Every statistic of the reference layers
        is a per-row reduction, so the batched call is bit-identical to
        calling the layer once per segment -- the parameters only matter for
        subclasses whose numerics couple rows (per-tensor quantization) or
        consume cross-request state (predicted ISDs).  ``workspace`` pools
        kernel scratch and ``out`` receives the normalized rows (both
        optional).  Returns ``(output, mean, isd)`` without touching any
        activation context.
        """
        arr = np.asarray(rows, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.hidden_size:
            raise ValueError(
                f"forward_batched expects (rows, {self.hidden_size}); got {arr.shape}"
            )
        mean, isd = self.compute_statistics(arr, None)
        out = kernels.normalize_affine(arr, mean, isd, self.gamma, self.beta, out=out)
        return out, mean, isd

    # Hooks for subclasses (the HAAN layer) to report how statistics were
    # obtained; the reference layers always compute them exactly.
    def _last_was_predicted(self) -> bool:
        return False

    def _last_was_subsampled(self) -> bool:
        return False

    def _variance_from_isd(self, isd: np.ndarray) -> np.ndarray:
        """Recover the (epsilon-inclusive) variance from the ISD for recording."""
        return 1.0 / np.square(isd)

    # -- parameter helpers --------------------------------------------------

    def load_affine(self, gamma: np.ndarray, beta: np.ndarray) -> None:
        """Replace the affine parameters (used when wrapping an existing layer)."""
        gamma = np.asarray(gamma, dtype=np.float64)
        beta = np.asarray(beta, dtype=np.float64)
        if gamma.shape != (self.hidden_size,) or beta.shape != (self.hidden_size,):
            raise ValueError("affine parameter shape mismatch")
        self.gamma = gamma
        self.beta = beta


class LayerNorm(BaseNorm):
    """Layer normalization (paper equation (1))."""

    kind = NormKind.LAYERNORM

    def compute_statistics(
        self, rows: np.ndarray, context: Optional[ActivationContext] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        mean = rows.mean(axis=1)
        variance = rows.var(axis=1)
        isd = 1.0 / np.sqrt(variance + self.eps)
        return mean, isd


class RMSNorm(BaseNorm):
    """Root-mean-square normalization (paper equation (2)).

    RMSNorm does not re-center, so the "mean" returned by
    :meth:`compute_statistics` is identically zero and the ISD is the
    reciprocal of the RMS value ``r_z``.
    """

    kind = NormKind.RMSNORM

    def compute_statistics(
        self, rows: np.ndarray, context: Optional[ActivationContext] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        mean_square = np.mean(np.square(rows), axis=1)
        isd = 1.0 / np.sqrt(mean_square + self.eps)
        return np.zeros(rows.shape[0]), isd


def make_norm(
    kind: NormKind,
    hidden_size: int,
    layer_index: int,
    name: str,
    gamma: Optional[np.ndarray] = None,
    beta: Optional[np.ndarray] = None,
    eps: float = 1e-5,
) -> BaseNorm:
    """Factory constructing the right normalization class for a model family."""
    cls = LayerNorm if kind is NormKind.LAYERNORM else RMSNorm
    return cls(
        hidden_size=hidden_size,
        layer_index=layer_index,
        name=name,
        gamma=gamma,
        beta=beta,
        eps=eps,
    )
