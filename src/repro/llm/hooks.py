"""Per-forward activation context and statistics recording.

HAAN's ISD skipping needs two things during a forward pass:

1. later normalization layers must be able to read the ISD produced by an
   earlier layer *for the same tokens* (equation (3) predicts
   ``log(ISD_k)`` from ``log(ISD_i)``), and
2. the calibration pass must record the ISD of every normalization layer
   for every calibration token (Algorithm 1, lines 2-4).

Both are served by :class:`ActivationContext`: the model creates one per
forward call and hands it to every normalization layer; layers deposit the
statistics they computed (or predicted), and optional recorders snapshot
them for offline analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class NormLayerRecord:
    """Statistics captured for one normalization layer in one forward pass.

    All arrays are flattened over the batch and sequence dimensions, i.e.
    one entry per normalized vector (token).
    """

    layer_index: int
    layer_name: str
    mean: np.ndarray
    isd: np.ndarray
    input_variance: np.ndarray
    was_predicted: bool = False
    was_subsampled: bool = False

    @property
    def log_isd(self) -> np.ndarray:
        """Natural logarithm of the ISD values (the quantity Algorithm 1 fits)."""
        return np.log(self.isd)


class ActivationContext:
    """Carries per-token normalization statistics through one forward pass."""

    def __init__(self, record_statistics: bool = False):
        self.record_statistics = record_statistics
        self._isd_by_layer: Dict[int, np.ndarray] = {}
        self._records: List[NormLayerRecord] = []

    # -- ISD sharing between layers (used by the HAAN predictor) ---------

    def store_isd(self, layer_index: int, isd: np.ndarray) -> None:
        """Store the per-token ISD computed (or predicted) at a layer."""
        self._isd_by_layer[layer_index] = np.asarray(isd, dtype=np.float64)

    def isd_of(self, layer_index: int) -> Optional[np.ndarray]:
        """Retrieve the per-token ISD of an earlier layer, if available."""
        return self._isd_by_layer.get(layer_index)

    @property
    def known_layers(self) -> List[int]:
        """Indices of layers whose ISD has been stored so far."""
        return sorted(self._isd_by_layer)

    # -- statistics recording (used by calibration / Figure 2) -----------

    def record(self, record: NormLayerRecord) -> None:
        """Append a statistics record when recording is enabled."""
        if self.record_statistics:
            self._records.append(record)

    @property
    def records(self) -> List[NormLayerRecord]:
        """All records captured during this forward pass."""
        return list(self._records)


def stack_anchor_isds(
    contexts: Sequence[Optional["ActivationContext"]],
    anchor_layer: int,
    row_counts: Sequence[int],
) -> Optional[np.ndarray]:
    """Per-row anchor ISDs for a micro-batch of stacked requests.

    The serving runtime coalesces requests that each carry their own
    :class:`ActivationContext`.  For a skipped layer, equation (3) needs the
    anchor layer's ISD *of the same request*; this gathers them into one
    vector aligned with the stacked rows.  A request whose context is absent,
    lacks the anchor layer, or stored a mismatched row count contributes
    ``NaN`` rows -- the batched predictor replaces those with the
    calibration-set scalar, exactly like the per-request fallback.  Returns
    ``None`` when no request has a usable anchor (the all-fallback case).
    """
    if len(contexts) != len(row_counts):
        raise ValueError("contexts and row_counts must have the same length")
    total = int(sum(row_counts))
    stacked = np.full(total, np.nan)
    any_anchor = False
    offset = 0
    for context, count in zip(contexts, row_counts):
        isd = context.isd_of(anchor_layer) if context is not None else None
        if isd is not None and isd.shape == (count,):
            stacked[offset : offset + count] = isd
            any_anchor = True
        offset += count
    return stacked if any_anchor else None


def scatter_isd(
    contexts: Sequence[Optional["ActivationContext"]],
    layer_index: int,
    isd: np.ndarray,
    row_counts: Sequence[int],
) -> None:
    """Store per-request slices of a batched ISD back into each context.

    Inverse of :func:`stack_anchor_isds`: after the batched kernel produces
    one ISD per stacked row, each request's slice is deposited into its own
    context so a later request reusing that context (e.g. the next
    normalization layer of the same activation stream) sees the ISD a
    single-request forward would have stored.  Only the ISD is deposited:
    the batched path never appends :class:`NormLayerRecord` entries, so a
    recording context must go through the per-request layers.
    """
    if len(contexts) != len(row_counts):
        raise ValueError("contexts and row_counts must have the same length")
    values = np.asarray(isd, dtype=np.float64)
    if values.shape != (int(sum(row_counts)),):
        raise ValueError("isd does not match the stacked row count")
    offset = 0
    for context, count in zip(contexts, row_counts):
        if context is not None:
            # Copy so the context never aliases the shared batch array.
            context.store_isd(layer_index, values[offset : offset + count].copy())
        offset += count


@dataclass
class StatisticsTrace:
    """Aggregated per-layer statistics accumulated over many forward passes.

    ``isd_samples[layer_index]`` is the list of per-token ISD arrays observed
    for that layer; :meth:`isd_matrix` stacks them into a dense
    ``(num_tokens, num_layers)`` matrix -- the object Algorithm 1 scans.
    """

    num_layers: int
    layer_names: List[str]
    isd_samples: Dict[int, List[np.ndarray]] = field(default_factory=dict)
    mean_samples: Dict[int, List[np.ndarray]] = field(default_factory=dict)

    def absorb(self, context: ActivationContext) -> None:
        """Fold the records of one forward pass into the trace."""
        for record in context.records:
            self.isd_samples.setdefault(record.layer_index, []).append(record.isd)
            self.mean_samples.setdefault(record.layer_index, []).append(record.mean)

    def isd_vector(self, layer_index: int) -> np.ndarray:
        """All observed ISD values of one layer, concatenated."""
        samples = self.isd_samples.get(layer_index, [])
        if not samples:
            return np.array([], dtype=np.float64)
        return np.concatenate(samples)

    def isd_matrix(self) -> np.ndarray:
        """Dense ``(num_tokens, num_layers)`` ISD matrix.

        Raises if layers saw different token counts (which would indicate a
        model wiring bug).
        """
        columns = []
        expected = None
        for layer in range(self.num_layers):
            vec = self.isd_vector(layer)
            if expected is None:
                expected = vec.size
            if vec.size != expected:
                raise ValueError(
                    f"layer {layer} observed {vec.size} tokens, expected {expected}"
                )
            columns.append(vec)
        if not columns:
            return np.zeros((0, self.num_layers))
        return np.stack(columns, axis=1)

    def mean_log_isd(self) -> np.ndarray:
        """Per-layer mean of ``log(ISD)`` -- the curve plotted in Figure 2."""
        matrix = self.isd_matrix()
        if matrix.size == 0:
            return np.zeros(self.num_layers)
        return np.mean(np.log(matrix), axis=0)

    @property
    def num_tokens(self) -> int:
        """Number of tokens observed per layer (0 if nothing recorded)."""
        if not self.isd_samples:
            return 0
        return int(self.isd_vector(min(self.isd_samples)).size)
