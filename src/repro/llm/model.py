"""Decoder-only transformer inference engine.

:class:`TransformerModel` wires the layers of :mod:`repro.llm.layers`, the
normalization layers of :mod:`repro.llm.normalization` and the synthetic
weights of :mod:`repro.llm.weights` into a complete pre-norm decoder stack:

``embed -> [norm -> attention -> add, norm -> mlp -> add] * L -> (final norm) -> logits``

The model exposes exactly the hooks HAAN needs:

* ``norm_layers`` is the ordered list of normalization layers; HAAN replaces
  entries in place (:meth:`replace_norm_layer`) with its approximating layer.
* every forward pass threads an :class:`~repro.llm.hooks.ActivationContext`
  through the normalization layers so predicted ISDs can reference earlier
  layers and calibration can record statistics.
* :meth:`collect_statistics` runs a calibration set through the model and
  returns the per-layer ISD trace consumed by Algorithm 1.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.llm.config import ModelConfig, get_model_config
from repro.llm.hooks import ActivationContext, StatisticsTrace
from repro.llm.layers import FeedForward, MultiHeadAttention, log_softmax
from repro.llm.normalization import BaseNorm, make_norm
from repro.llm.tokenizer import Tokenizer
from repro.llm.weights import ModelWeights, generate_model_weights


class TransformerBlock:
    """One pre-norm transformer block (attention + MLP sublayers)."""

    def __init__(
        self,
        attention: MultiHeadAttention,
        mlp: FeedForward,
        attn_norm: BaseNorm,
        mlp_norm: BaseNorm,
    ):
        self.attention = attention
        self.mlp = mlp
        self.attn_norm = attn_norm
        self.mlp_norm = mlp_norm

    def __call__(self, x: np.ndarray, context: Optional[ActivationContext] = None) -> np.ndarray:
        x = x + self.attention(self.attn_norm(x, context))
        x = x + self.mlp(self.mlp_norm(x, context))
        return x


class TransformerModel:
    """A complete synthetic LLM with pluggable normalization layers."""

    def __init__(self, config: ModelConfig, weights: Optional[ModelWeights] = None):
        self.config = config
        self.weights = weights if weights is not None else generate_model_weights(config)
        if self.weights.config.name != config.name:
            raise ValueError("weights were generated for a different configuration")
        self.tokenizer = Tokenizer(vocab_size=config.vocab_size)
        self.norm_layers: List[BaseNorm] = []
        self.blocks: List[TransformerBlock] = []
        self._build()

    @classmethod
    def from_name(cls, name: str, **overrides) -> "TransformerModel":
        """Construct a model from a registered configuration name."""
        return cls(get_model_config(name, **overrides))

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        config = self.config
        names = config.norm_layer_names()
        layer_index = 0
        for block_index, block_weights in enumerate(self.weights.blocks):
            attn_norm = make_norm(
                config.norm_kind,
                config.sim_hidden_size,
                layer_index,
                names[layer_index],
                gamma=block_weights.attn_norm.gamma,
                beta=block_weights.attn_norm.beta,
            )
            layer_index += 1
            mlp_norm = make_norm(
                config.norm_kind,
                config.sim_hidden_size,
                layer_index,
                names[layer_index],
                gamma=block_weights.mlp_norm.gamma,
                beta=block_weights.mlp_norm.beta,
            )
            layer_index += 1
            attention = MultiHeadAttention(block_weights.attention, config.num_heads)
            mlp = FeedForward(block_weights.mlp)
            block = TransformerBlock(attention, mlp, attn_norm, mlp_norm)
            self.blocks.append(block)
            self.norm_layers.extend([attn_norm, mlp_norm])
        self.final_norm: Optional[BaseNorm] = None
        if config.final_norm:
            params = self.weights.final_norm
            self.final_norm = make_norm(
                config.norm_kind,
                config.sim_hidden_size,
                layer_index,
                names[layer_index],
                gamma=params.gamma,
                beta=params.beta,
            )
            self.norm_layers.append(self.final_norm)

    @property
    def num_norm_layers(self) -> int:
        """Number of normalization layers (matches ``config.num_norm_layers``)."""
        return len(self.norm_layers)

    def replace_norm_layer(self, layer_index: int, new_norm: BaseNorm) -> None:
        """Swap a normalization layer in place (used to install HAAN layers)."""
        if not 0 <= layer_index < len(self.norm_layers):
            raise IndexError(f"no normalization layer {layer_index}")
        old = self.norm_layers[layer_index]
        if new_norm.hidden_size != old.hidden_size:
            raise ValueError("replacement layer has a different hidden size")
        new_norm.layer_index = old.layer_index
        new_norm.name = old.name
        self.norm_layers[layer_index] = new_norm
        # Re-wire the block (or final norm) that owns this layer.
        block_index, position = divmod(layer_index, 2)
        if block_index < len(self.blocks):
            if position == 0:
                self.blocks[block_index].attn_norm = new_norm
            else:
                self.blocks[block_index].mlp_norm = new_norm
        else:
            self.final_norm = new_norm

    def norm_layer(self, layer_index: int) -> BaseNorm:
        """Return the normalization layer at the given execution-order index."""
        return self.norm_layers[layer_index]

    # -- forward -------------------------------------------------------------

    def embed(self, token_ids: np.ndarray) -> np.ndarray:
        """Token plus positional embedding of an id batch (batch, seq)."""
        ids = np.asarray(token_ids, dtype=np.int64)
        if ids.ndim == 1:
            ids = ids[None, :]
        if ids.shape[1] > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {ids.shape[1]} exceeds max_seq_len {self.config.max_seq_len}"
            )
        hidden = self.weights.embedding[ids]
        hidden = hidden + self.weights.positional[None, : ids.shape[1], :]
        return hidden

    def forward_hidden(
        self, token_ids: np.ndarray, context: Optional[ActivationContext] = None
    ) -> np.ndarray:
        """Run the block stack and return the final hidden states."""
        hidden = self.embed(token_ids)
        for block in self.blocks:
            hidden = block(hidden, context)
        if self.final_norm is not None:
            hidden = self.final_norm(hidden, context)
        return hidden

    def forward(
        self, token_ids: np.ndarray, context: Optional[ActivationContext] = None
    ) -> np.ndarray:
        """Full forward pass returning logits of shape (batch, seq, vocab)."""
        hidden = self.forward_hidden(token_ids, context)
        return hidden @ self.weights.embedding.T

    def log_probs(
        self, token_ids: np.ndarray, context: Optional[ActivationContext] = None
    ) -> np.ndarray:
        """Log-softmax of the logits over the vocabulary."""
        return log_softmax(self.forward(token_ids, context), axis=-1)

    # -- scoring helpers (used by the evaluation harness) --------------------

    def sequence_log_likelihood(
        self,
        token_ids: Sequence[int],
        score_from: int = 1,
        context: Optional[ActivationContext] = None,
    ) -> float:
        """Sum of next-token log-probabilities of a single sequence.

        ``score_from`` is the first *target* position included in the score;
        the default of 1 scores every token after the BOS token.  To score
        only a continuation, pass the index of its first token.
        """
        ids = np.asarray(token_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ValueError("sequence_log_likelihood expects a 1-D token list")
        if ids.size < 2 or score_from < 1 or score_from >= ids.size:
            raise ValueError("need at least one target position to score")
        logp = self.log_probs(ids[None, :], context)[0]
        targets = ids[score_from:]
        positions = np.arange(score_from - 1, ids.size - 1)
        return float(np.sum(logp[positions, targets]))

    def continuation_log_likelihood(
        self,
        prefix_ids: Sequence[int],
        continuation_ids: Sequence[int],
        normalize_by_length: bool = False,
        context: Optional[ActivationContext] = None,
    ) -> float:
        """Log-likelihood of a continuation given a prefix (lm-eval style)."""
        prefix = list(prefix_ids)
        continuation = list(continuation_ids)
        if not continuation:
            raise ValueError("continuation must be non-empty")
        full = np.asarray(prefix + continuation, dtype=np.int64)
        score = self.sequence_log_likelihood(full, score_from=len(prefix), context=context)
        if normalize_by_length:
            score /= len(continuation)
        return score

    def score_continuations(
        self,
        prefix_ids: Sequence[int],
        continuations: Sequence[Sequence[int]],
        normalize_by_length: bool = True,
        context: Optional[ActivationContext] = None,
    ) -> np.ndarray:
        """Log-likelihood of several continuations of one prefix, batched.

        All candidate continuations share the prefix, so they are padded to
        a common length and scored in a single batched forward pass -- the
        lm-eval-harness access pattern the accuracy experiments use.
        Padding positions do not contribute to any score.
        """
        prefix = list(prefix_ids)
        conts = [list(c) for c in continuations]
        if not conts or any(len(c) == 0 for c in conts):
            raise ValueError("every continuation must be non-empty")
        max_len = len(prefix) + max(len(c) for c in conts)
        batch = np.full((len(conts), max_len), self.tokenizer.pad_id, dtype=np.int64)
        for row, cont in enumerate(conts):
            ids = prefix + cont
            batch[row, : len(ids)] = ids
        logp = self.log_probs(batch, context)
        scores = np.zeros(len(conts))
        for row, cont in enumerate(conts):
            start = len(prefix)
            end = start + len(cont)
            targets = batch[row, start:end]
            positions = np.arange(start - 1, end - 1)
            score = float(np.sum(logp[row, positions, targets]))
            if normalize_by_length:
                score /= len(cont)
            scores[row] = score
        return scores

    # -- calibration ----------------------------------------------------------

    def collect_statistics(
        self,
        token_batches: Iterable[np.ndarray],
        max_tokens_per_batch: Optional[int] = None,
    ) -> StatisticsTrace:
        """Run batches through the model recording per-layer ISD statistics.

        Parameters
        ----------
        token_batches:
            Iterable of (batch, seq) or (seq,) token-id arrays.
        max_tokens_per_batch:
            Optional cap on sequence length, to bound calibration cost.
        """
        trace = StatisticsTrace(
            num_layers=self.num_norm_layers,
            layer_names=[norm.name for norm in self.norm_layers],
        )
        for batch in token_batches:
            ids = np.asarray(batch, dtype=np.int64)
            if ids.ndim == 1:
                ids = ids[None, :]
            if max_tokens_per_batch is not None:
                ids = ids[:, :max_tokens_per_batch]
            context = ActivationContext(record_statistics=True)
            self.forward_hidden(ids, context)
            trace.absorb(context)
        return trace

    def encode_texts(self, texts: Sequence[str], max_len: int) -> np.ndarray:
        """Tokenize and pad a list of texts into an id matrix."""
        return np.asarray(self.tokenizer.encode_batch(texts, max_len=max_len), dtype=np.int64)
