"""Model architecture configurations.

The paper evaluates HAAN on LLaMA-7B, OPT-2.7B and GPT-2 (117M / 355M /
1.5B).  We cannot load those checkpoints offline, so each configuration here
mirrors the *structural* properties that matter to HAAN -- the number and
type of normalization layers, the embedding dimension seen by the hardware,
and the pre-norm residual topology -- while the simulated hidden width is
scaled down so the NumPy engine runs on a CPU.

Two widths are therefore tracked per model:

* ``hidden_size`` -- the real model's embedding dimension (4096 for LLaMA-7B
  and so on).  The hardware latency/power models use this, because the
  accelerator normalizes vectors of that length.
* ``sim_hidden_size`` -- the width actually used by the NumPy simulation.
  HAAN's subsampling lengths are specified against ``hidden_size`` and are
  mapped proportionally onto ``sim_hidden_size`` by
  :meth:`ModelConfig.scale_subsample_length`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List


class NormKind(enum.Enum):
    """Type of normalization used by a model family."""

    LAYERNORM = "layernorm"
    RMSNORM = "rmsnorm"


@dataclass(frozen=True)
class ModelConfig:
    """Architecture description of one LLM.

    Attributes
    ----------
    name:
        Identifier used throughout the benchmarks ("llama-7b", ...).
    num_blocks:
        Number of transformer blocks.
    hidden_size:
        Real embedding dimension of the model (used by the hardware model).
    sim_hidden_size:
        Hidden width used by the NumPy simulation engine.
    num_heads:
        Attention heads in the simulation engine.
    mlp_ratio:
        MLP expansion factor (intermediate = ratio * hidden).
    vocab_size:
        Vocabulary size of the simulation tokenizer.
    max_seq_len:
        Maximum sequence length supported by the positional embedding.
    norm_kind:
        LayerNorm (GPT-2, OPT) or RMSNorm (LLaMA).
    final_norm:
        Whether a final normalization layer follows the last block.
    num_parameters:
        Approximate real parameter count, for reporting only.
    """

    name: str
    num_blocks: int
    hidden_size: int
    sim_hidden_size: int
    num_heads: int
    mlp_ratio: float
    vocab_size: int
    max_seq_len: int
    norm_kind: NormKind
    final_norm: bool
    num_parameters: float
    residual_growth: float = 1.12
    initial_branch_variance: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if self.sim_hidden_size % self.num_heads != 0:
            raise ValueError("sim_hidden_size must be divisible by num_heads")
        if self.hidden_size < 1 or self.sim_hidden_size < 1:
            raise ValueError("hidden sizes must be positive")

    @property
    def norms_per_block(self) -> int:
        """Normalization layers inside each block (attention norm + MLP norm)."""
        return 2

    @property
    def num_norm_layers(self) -> int:
        """Total normalization layers, matching the counts quoted in the paper."""
        return self.num_blocks * self.norms_per_block + (1 if self.final_norm else 0)

    @property
    def head_dim(self) -> int:
        """Per-head dimension of the simulation engine."""
        return self.sim_hidden_size // self.num_heads

    @property
    def mlp_hidden_size(self) -> int:
        """Width of the MLP intermediate layer in the simulation engine."""
        return int(round(self.sim_hidden_size * self.mlp_ratio))

    def scale_subsample_length(self, n_sub: int) -> int:
        """Map a paper subsample length onto the simulated hidden width.

        The accuracy impact of subsampling is governed by the *statistical
        error* of the truncated estimator, which depends on the absolute
        number of elements used (roughly ``1/sqrt(N_sub)``), not on the
        fraction of the embedding it covers.  To keep the perturbation
        magnitude faithful to the paper's settings the mapping therefore
        preserves the absolute element count, capped at the simulated width
        (the hardware latency/power models use the real ``hidden_size`` and
        the uncapped ``N_sub``).  See DESIGN.md for the discussion.
        """
        if n_sub <= 0:
            raise ValueError("n_sub must be positive")
        return max(1, min(int(n_sub), self.sim_hidden_size))

    def norm_layer_names(self) -> List[str]:
        """Stable names of every normalization layer, in execution order."""
        names = []
        for block in range(self.num_blocks):
            names.append(f"block{block}.attn_norm")
            names.append(f"block{block}.mlp_norm")
        if self.final_norm:
            names.append("final_norm")
        return names

    def with_overrides(self, **kwargs) -> "ModelConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def _registry() -> Dict[str, ModelConfig]:
    """Build the built-in model zoo."""
    configs = [
        # LLaMA-7B: 32 blocks, RMSNorm.  The paper's Figure 2 profiles 64
        # normalization layers for this model, i.e. the two per-block norms.
        ModelConfig(
            name="llama-7b",
            num_blocks=32,
            hidden_size=4096,
            sim_hidden_size=256,
            num_heads=8,
            mlp_ratio=2.7,
            vocab_size=2048,
            max_seq_len=512,
            norm_kind=NormKind.RMSNORM,
            final_norm=False,
            num_parameters=6.7e9,
            residual_growth=1.16,
            initial_branch_variance=0.5,
            seed=11,
        ),
        # OPT-2.7B: 32 blocks plus a final LayerNorm = 65 normalization
        # layers ("7 out of 65 ISD operations can be skipped").
        ModelConfig(
            name="opt-2.7b",
            num_blocks=32,
            hidden_size=2560,
            sim_hidden_size=256,
            num_heads=8,
            mlp_ratio=4.0,
            vocab_size=2048,
            max_seq_len=512,
            norm_kind=NormKind.LAYERNORM,
            final_norm=True,
            num_parameters=2.7e9,
            residual_growth=1.14,
            initial_branch_variance=0.45,
            seed=23,
        ),
        # GPT2-1.5B (GPT-2 XL): 48 blocks plus final LayerNorm = 97 norm
        # layers; the paper's skip range (85, 92) sits in that tail.
        ModelConfig(
            name="gpt2-1.5b",
            num_blocks=48,
            hidden_size=1600,
            sim_hidden_size=192,
            num_heads=8,
            mlp_ratio=4.0,
            vocab_size=2048,
            max_seq_len=512,
            norm_kind=NormKind.LAYERNORM,
            final_norm=True,
            num_parameters=1.5e9,
            residual_growth=1.10,
            initial_branch_variance=0.4,
            seed=31,
        ),
        # GPT2-355M (medium): used for the end-to-end speedup experiment.
        ModelConfig(
            name="gpt2-355m",
            num_blocks=24,
            hidden_size=1024,
            sim_hidden_size=128,
            num_heads=8,
            mlp_ratio=4.0,
            vocab_size=2048,
            max_seq_len=512,
            norm_kind=NormKind.LAYERNORM,
            final_norm=True,
            num_parameters=3.55e8,
            residual_growth=1.12,
            initial_branch_variance=0.4,
            seed=37,
        ),
        # GPT2-117M (small): used for the Figure 1(b) latency breakdown.
        ModelConfig(
            name="gpt2-117m",
            num_blocks=12,
            hidden_size=768,
            sim_hidden_size=128,
            num_heads=8,
            mlp_ratio=4.0,
            vocab_size=2048,
            max_seq_len=512,
            norm_kind=NormKind.LAYERNORM,
            final_norm=True,
            num_parameters=1.17e8,
            residual_growth=1.18,
            initial_branch_variance=0.45,
            seed=41,
        ),
        # A tiny configuration for unit tests and quick examples.
        ModelConfig(
            name="tiny",
            num_blocks=4,
            hidden_size=512,
            sim_hidden_size=64,
            num_heads=4,
            mlp_ratio=2.0,
            vocab_size=256,
            max_seq_len=128,
            norm_kind=NormKind.LAYERNORM,
            final_norm=True,
            num_parameters=1.0e6,
            residual_growth=1.2,
            initial_branch_variance=0.5,
            seed=7,
        ),
        # Tiny RMSNorm variant (LLaMA-style) for unit tests.
        ModelConfig(
            name="tiny-rms",
            num_blocks=4,
            hidden_size=512,
            sim_hidden_size=64,
            num_heads=4,
            mlp_ratio=2.0,
            vocab_size=256,
            max_seq_len=128,
            norm_kind=NormKind.RMSNORM,
            final_norm=False,
            num_parameters=1.0e6,
            residual_growth=1.2,
            initial_branch_variance=0.5,
            seed=13,
        ),
    ]
    return {cfg.name: cfg for cfg in configs}


_MODEL_REGISTRY: Dict[str, ModelConfig] = _registry()


def available_models() -> List[str]:
    """Names of all built-in model configurations."""
    return sorted(_MODEL_REGISTRY)


def get_model_config(name: str, **overrides) -> ModelConfig:
    """Look up a built-in configuration, optionally overriding fields.

    Parameters
    ----------
    name:
        One of :func:`available_models`.
    overrides:
        Field overrides applied with :meth:`ModelConfig.with_overrides`
        (e.g. ``sim_hidden_size=64`` to shrink a model for a test).
    """
    key = name.strip().lower()
    if key not in _MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    cfg = _MODEL_REGISTRY[key]
    if overrides:
        cfg = cfg.with_overrides(**overrides)
    return cfg


def register_model_config(config: ModelConfig, overwrite: bool = False) -> None:
    """Register a custom configuration in the global zoo."""
    if config.name in _MODEL_REGISTRY and not overwrite:
        raise ValueError(f"model {config.name!r} already registered")
    _MODEL_REGISTRY[config.name] = config
