"""Transformer building blocks for the NumPy inference engine.

These layers implement the dense compute of a decoder-only transformer --
linear projections, GeLU, softmax, multi-head causal self-attention and the
position-wise MLP -- using plain NumPy.  They are the substrate the HAAN
algorithm runs on: HAAN itself only touches the normalization layers, but a
complete forward pass is required so that (a) the normalization-layer input
statistics are produced by genuine residual-stream dynamics and (b) accuracy
experiments measure real logit perturbations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian Error Linear Unit (tanh approximation used by GPT-2)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * np.power(x, 3))))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def causal_mask(seq_len: int) -> np.ndarray:
    """Additive causal mask of shape (seq_len, seq_len): 0 on/below diag, -inf above."""
    mask = np.zeros((seq_len, seq_len))
    mask[np.triu_indices(seq_len, k=1)] = -np.inf
    return mask


class Linear:
    """Dense layer ``y = x @ W + b`` with weights of shape (in, out)."""

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray] = None):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be 2-D (in_features, out_features)")
        if bias is None:
            bias = np.zeros(self.weight.shape[1])
        self.bias = np.asarray(bias, dtype=np.float64)
        if self.bias.shape != (self.weight.shape[1],):
            raise ValueError("bias shape must match out_features")

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64) @ self.weight + self.bias


class Embedding:
    """Token embedding lookup table."""

    def __init__(self, table: np.ndarray):
        self.table = np.asarray(table, dtype=np.float64)
        if self.table.ndim != 2:
            raise ValueError("embedding table must be 2-D (vocab, hidden)")

    @property
    def vocab_size(self) -> int:
        return self.table.shape[0]

    @property
    def hidden_size(self) -> int:
        return self.table.shape[1]

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(token_ids, dtype=np.int64)
        if np.any(ids < 0) or np.any(ids >= self.vocab_size):
            raise ValueError("token id out of range")
        return self.table[ids]


@dataclass
class AttentionWeights:
    """Projection matrices of one attention layer."""

    wq: Linear
    wk: Linear
    wv: Linear
    wo: Linear


class MultiHeadAttention:
    """Causal multi-head self-attention."""

    def __init__(self, weights: AttentionWeights, num_heads: int):
        self.weights = weights
        self.num_heads = int(num_heads)
        hidden = weights.wq.out_features
        if hidden % self.num_heads != 0:
            raise ValueError("hidden size must be divisible by num_heads")
        self.head_dim = hidden // self.num_heads

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, seq, hidden = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, heads, seq, dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * dim)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Run attention over a (batch, seq, hidden) tensor."""
        q = self._split_heads(self.weights.wq(x))
        k = self._split_heads(self.weights.wk(x))
        v = self._split_heads(self.weights.wv(x))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = np.matmul(q, k.transpose(0, 1, 3, 2)) * scale
        scores = scores + causal_mask(x.shape[1])[None, None, :, :]
        probs = softmax(scores, axis=-1)
        attended = np.matmul(probs, v)
        return self.weights.wo(self._merge_heads(attended))


@dataclass
class MLPWeights:
    """Projection matrices of one position-wise feed-forward layer."""

    w_in: Linear
    w_out: Linear


class FeedForward:
    """Position-wise MLP with GeLU activation."""

    def __init__(self, weights: MLPWeights):
        self.weights = weights

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.weights.w_out(gelu(self.weights.w_in(x)))
