"""Multi-tenancy for the serving stack: auth, quotas, metering, metrics.

The north star is "millions of users"; this package gives the wire tier
the three things that takes and the serving tiers below stay unaware of:

* **Identity** -- tenants declared in a JSON tenant file, authenticated
  by bearer token in the ``hello`` handshake (constant-time compare),
  every connection stamped with a :class:`TenantContext`
  (:mod:`repro.tenancy.tenants`);
* **Quotas** -- per-tenant token buckets over requests/rows/bytes,
  enforced in the server reader thread *before* frame decode and
  composed with overload shedding behind one
  :class:`~repro.api.admission.PreDecodeGate`
  (:mod:`repro.tenancy.quota`);
* **Metering** -- a :class:`CostLedger` attributing rows, bytes, wall
  latency and the simulated backends' modelled cycles/energy to each
  tenant with *exact* splits and prepaid-balance semantics
  (:mod:`repro.tenancy.ledger`);
* **Observability** -- a Prometheus-style ``/metrics`` text endpoint
  exporting the per-tenant state next to every serving-telemetry section
  (:mod:`repro.tenancy.metrics`).

:class:`TenancyController` (:mod:`repro.tenancy.control`) composes the
first three behind the hooks :class:`~repro.api.server.NormServer` and
:class:`~repro.serving.service.NormalizationService` expose.
"""

from repro.tenancy.control import TenancyController
from repro.tenancy.ledger import CostLedger, split_cost
from repro.tenancy.metrics import MetricsServer, render_prometheus
from repro.tenancy.quota import (
    DEFAULT_TIER,
    QuotaPolicy,
    TenantQuota,
    TokenBucket,
    estimate_rows,
)
from repro.tenancy.tenants import ANONYMOUS, TenantContext, TenantDirectory, TenantSpec

__all__ = [
    "ANONYMOUS",
    "CostLedger",
    "DEFAULT_TIER",
    "MetricsServer",
    "QuotaPolicy",
    "TenancyController",
    "TenantContext",
    "TenantDirectory",
    "TenantQuota",
    "TenantSpec",
    "TokenBucket",
    "estimate_rows",
    "render_prometheus",
    "split_cost",
]
