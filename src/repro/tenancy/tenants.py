"""Tenant identity: declared tenants, bearer-token auth, tier resolution.

Tenants are declared in a JSON tenant file (``haan-serve --tenants``)::

    {
      "tiers": {
        "default": {"requests_per_s": 100, "rows_per_s": 100000,
                    "bytes_per_s": 67108864, "burst_seconds": 1.0},
        "gold":    {"requests_per_s": 1000, "rows_per_s": null}
      },
      "tenants": [
        {"name": "acme", "token": "s3cr3t-acme", "tier": "gold",
         "balance": 1e9},
        {"name": "trial", "token": "s3cr3t-trial"}
      ]
    }

``tiers`` maps tier names to :class:`~repro.tenancy.quota.QuotaPolicy`
fields (missing fields take the policy defaults, ``null`` means
unlimited); ``tenants`` declares name, bearer token, tier (``default`` if
omitted) and an optional prepaid ``balance`` in modelled cycles.

Authentication happens once per connection, in the v2/v3 ``hello``
handshake: the client's ``token`` is compared against every declared
token with :func:`hmac.compare_digest` (constant-time per comparison, and
the scan always visits the full directory, so timing reveals neither the
match position nor near-misses).  A valid token stamps the connection
with a :class:`TenantContext`; an *invalid* token always fails typed
(bad credentials are never silently downgraded to anonymous); a missing
token yields the anonymous default-tier context unless ``require_auth``.
"""

from __future__ import annotations

import hmac
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.api.envelopes import AuthenticationError
from repro.tenancy.quota import DEFAULT_TIER, QuotaPolicy

__all__ = ["ANONYMOUS", "TenantContext", "TenantDirectory", "TenantSpec"]

#: Ledger/metrics account name of unauthenticated connections.
ANONYMOUS = "anonymous"


@dataclass(frozen=True)
class TenantSpec:
    """One declared tenant: identity, credential, tier, optional prepaid balance."""

    name: str
    token: str
    tier: str = DEFAULT_TIER
    #: Prepaid credit in modelled cycles (None = post-paid / unlimited).
    balance: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"tenant name must be a non-empty string, got {self.name!r}")
        if self.name == ANONYMOUS:
            raise ValueError(f"tenant name {ANONYMOUS!r} is reserved for unauthenticated access")
        if not self.token or not isinstance(self.token, str):
            raise ValueError(f"tenant {self.name!r} needs a non-empty string token")

    @classmethod
    def from_dict(cls, payload: Dict[str, Any], where: str = "tenant") -> "TenantSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"{where} must be a JSON object, got {type(payload).__name__}")
        known = {"name", "token", "tier", "balance"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"{where} has unknown keys {sorted(unknown)}; knows {sorted(known)}")
        balance = payload.get("balance")
        if balance is not None and (isinstance(balance, bool) or not isinstance(balance, (int, float))):
            raise ValueError(f"{where}.balance must be a number or null, got {balance!r}")
        return cls(
            name=payload.get("name", ""),
            token=payload.get("token", ""),
            tier=payload.get("tier", DEFAULT_TIER),
            balance=None if balance is None else float(balance),
        )


@dataclass(frozen=True)
class TenantContext:
    """What a connection knows about its caller after the hello handshake."""

    name: str
    tier: str = DEFAULT_TIER
    authenticated: bool = False


#: The context unauthenticated connections run under (no ``--require-auth``).
ANONYMOUS_CONTEXT = TenantContext(name=ANONYMOUS, tier=DEFAULT_TIER, authenticated=False)


class TenantDirectory:
    """Declared tenants + tiers; resolves tokens to :class:`TenantContext`."""

    def __init__(
        self,
        tenants: Tuple[TenantSpec, ...] = (),
        tiers: Optional[Dict[str, QuotaPolicy]] = None,
        require_auth: bool = False,
    ):
        self.tenants: Tuple[TenantSpec, ...] = tuple(tenants)
        self.tiers: Dict[str, QuotaPolicy] = dict(tiers or {})
        self.tiers.setdefault(DEFAULT_TIER, QuotaPolicy())
        self.require_auth = require_auth
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate tenant names in tenant file: {dupes}")
        tokens = [spec.token for spec in self.tenants]
        if len(set(tokens)) != len(tokens):
            raise ValueError("duplicate tokens in tenant file: every token must be unique")
        for spec in self.tenants:
            if spec.tier not in self.tiers:
                raise ValueError(
                    f"tenant {spec.name!r} names unknown tier {spec.tier!r}; "
                    f"declared tiers: {sorted(self.tiers)}"
                )

    # -- construction --------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, Any], require_auth: bool = False) -> "TenantDirectory":
        """Build from the tenant-file JSON structure (see module docstring)."""
        if not isinstance(payload, dict):
            raise ValueError(f"tenant file must be a JSON object, got {type(payload).__name__}")
        unknown = set(payload) - {"tenants", "tiers"}
        if unknown:
            raise ValueError(f"tenant file has unknown keys {sorted(unknown)}")
        tiers: Dict[str, QuotaPolicy] = {}
        raw_tiers = payload.get("tiers", {})
        if not isinstance(raw_tiers, dict):
            raise ValueError("tenant file 'tiers' must be an object of tier -> policy")
        for name, entry in raw_tiers.items():
            tiers[name] = QuotaPolicy.from_dict(entry, where=f"tiers[{name!r}]")
        raw_tenants = payload.get("tenants", [])
        if not isinstance(raw_tenants, list):
            raise ValueError("tenant file 'tenants' must be a list")
        tenants = tuple(
            TenantSpec.from_dict(entry, where=f"tenants[{index}]")
            for index, entry in enumerate(raw_tenants)
        )
        return cls(tenants=tenants, tiers=tiers, require_auth=require_auth)

    @classmethod
    def from_file(cls, path: str, require_auth: bool = False) -> "TenantDirectory":
        """Load a tenant file from disk."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(f"tenant file {path} is not valid JSON: {error}") from error
        return cls.from_dict(payload, require_auth=require_auth)

    # -- resolution ----------------------------------------------------

    def authenticate(self, token: Optional[str]) -> TenantContext:
        """Resolve a hello token to a :class:`TenantContext`, or raise.

        * valid token -> the tenant's authenticated context;
        * invalid token -> :class:`AuthenticationError` *always* (a bad
          credential is an error, never a silent anonymous downgrade);
        * no token -> anonymous default-tier context, unless
          ``require_auth`` (then :class:`AuthenticationError`).
        """
        if token is None:
            if self.require_auth:
                raise AuthenticationError(
                    "this server requires a tenant bearer token "
                    "(connect with token=... / --token)"
                )
            return ANONYMOUS_CONTEXT
        matched: Optional[TenantSpec] = None
        encoded = token.encode("utf-8")
        for spec in self.tenants:
            # Full-directory scan with constant-time compares: neither the
            # match position nor prefix overlap leaks through timing.
            if hmac.compare_digest(spec.token.encode("utf-8"), encoded):
                matched = spec
        if matched is None:
            raise AuthenticationError("unknown tenant bearer token")
        return TenantContext(name=matched.name, tier=matched.tier, authenticated=True)

    def spec(self, name: str) -> Optional[TenantSpec]:
        for spec in self.tenants:
            if spec.name == name:
                return spec
        return None

    def policy_for(self, tier: str) -> QuotaPolicy:
        """The tier's policy (unknown tiers fall back to the default tier)."""
        return self.tiers.get(tier, self.tiers[DEFAULT_TIER])

    def __len__(self) -> int:
        return len(self.tenants)

    def __repr__(self) -> str:
        return (
            f"TenantDirectory(tenants={len(self.tenants)}, "
            f"tiers={sorted(self.tiers)}, require_auth={self.require_auth})"
        )
