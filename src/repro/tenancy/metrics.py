"""Prometheus-style ``/metrics``: text exposition over stdlib ``http.server``.

`haan-serve --metrics-port N` starts a :class:`MetricsServer` -- a
daemon-threaded ``ThreadingHTTPServer`` whose only route, ``GET
/metrics``, renders the serving telemetry snapshot in the Prometheus text
exposition format (version 0.0.4): every sample line is ``name value`` or
``name{label="v",...} value``, with ``# HELP`` / ``# TYPE`` comment lines
preceding each family.

What is exported:

* the core serving counters/gauges (``haan_requests_total`` ...);
* the latency histograms as native Prometheus histograms
  (``haan_queue_wait_seconds_bucket{le="..."}``, ``_sum``, ``_count``),
  straight from the log-spaced buckets
  :class:`~repro.serving.telemetry.LatencyHistogram` already keeps;
* every *attached* telemetry section (admission, degradation, wire,
  tenancy, ...) flattened generically -- scalar numeric leaves become
  ``haan_<section>_<key>`` gauges, so future sections export themselves;
* per-tenant quota and ledger state with a ``tenant`` label (and
  ``resource`` for the bucket gauges), from the ``tenancy`` section.

No third-party client library: the format is five string rules, and the
CI smoke job validates every emitted line against them.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["MetricsServer", "render_prometheus"]

_PREFIX = "haan"


def _sanitize_name(name: str) -> str:
    """Coerce a snapshot key into a legal Prometheus metric-name fragment."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Any) -> Optional[str]:
    """Render a scalar sample value, or None when it is not numeric."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return None


class _Writer:
    """Accumulates exposition lines, emitting HELP/TYPE once per family."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._seen: set = set()

    def sample(
        self,
        name: str,
        value: Any,
        labels: Tuple[Tuple[str, str], ...] = (),
        kind: str = "gauge",
        help_text: str = "",
    ) -> None:
        rendered = _format_value(value)
        if rendered is None:
            return
        if name not in self._seen:
            self._seen.add(name)
            self.lines.append(f"# HELP {name} {help_text or name}")
            self.lines.append(f"# TYPE {name} {kind}")
        if labels:
            body = ",".join(f'{key}="{_escape_label(value)}"' for key, value in labels)
            self.lines.append(f"{name}{{{body}}} {rendered}")
        else:
            self.lines.append(f"{name} {rendered}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _emit_histogram(writer: _Writer, name: str, export: Dict[str, Any]) -> None:
    """One native histogram family from a LatencyHistogram export."""
    for upper, cumulative in export["buckets"]:
        writer.sample(
            f"{name}_bucket",
            cumulative,
            labels=(("le", upper),),
            kind="histogram",
            help_text=f"{name} latency distribution (seconds)",
        )
    # _sum / _count ride the same family: no separate HELP/TYPE lines.
    writer.lines.append(f"{name}_sum {_format_value(float(export['sum']))}")
    writer.lines.append(f"{name}_count {int(export['count'])}")


def _emit_tenancy(writer: _Writer, tenancy: Dict[str, Any]) -> None:
    """Per-tenant quota/ledger families with a ``tenant`` label."""
    writer.sample(
        f"{_PREFIX}_tenancy_require_auth",
        tenancy.get("require_auth", False),
        help_text="1 when the server rejects unauthenticated connections",
    )
    for key in ("tenants_declared", "authenticated_total", "rejected_tokens"):
        kind = "counter" if key.endswith(("_total", "_tokens")) else "gauge"
        writer.sample(f"{_PREFIX}_tenancy_{key}", tenancy.get(key, 0), kind=kind)
    for tenant, quota in sorted(tenancy.get("quotas", {}).items()):
        label = (("tenant", tenant),)
        writer.sample(
            f"{_PREFIX}_tenant_quota_admitted_total",
            quota.get("admitted", 0),
            labels=label,
            kind="counter",
            help_text="work requests admitted through the tenant's quota",
        )
        for resource, count in sorted(quota.get("shed", {}).items()):
            writer.sample(
                f"{_PREFIX}_tenant_quota_shed_total",
                count,
                labels=(("tenant", tenant), ("resource", resource)),
                kind="counter",
                help_text="requests shed by the tenant's quota, per resource",
            )
        for resource, bucket in sorted((quota.get("buckets") or {}).items()):
            if bucket is None:
                continue
            writer.sample(
                f"{_PREFIX}_tenant_quota_tokens",
                bucket.get("tokens", 0.0),
                labels=(("tenant", tenant), ("resource", resource)),
                help_text="token-bucket balance, per resource",
            )
    for tenant, account in sorted(tenancy.get("ledger", {}).items()):
        label = (("tenant", tenant),)
        for key, kind in (
            ("requests", "counter"),
            ("rows", "counter"),
            ("bytes", "counter"),
            ("wall_seconds", "counter"),
            ("cycles", "counter"),
            ("energy_nj", "counter"),
        ):
            writer.sample(
                f"{_PREFIX}_tenant_{key}_total",
                account.get(key, 0),
                labels=label,
                kind=kind,
                help_text=f"metered {key} per tenant",
            )
        balance = account.get("balance")
        if balance is not None:
            writer.sample(
                f"{_PREFIX}_tenant_balance_cycles",
                balance,
                labels=label,
                help_text="remaining prepaid balance in modelled cycles",
            )
            writer.sample(
                f"{_PREFIX}_tenant_balance_exhausted",
                account.get("exhausted", False),
                labels=label,
                help_text="1 when the prepaid balance is spent",
            )


#: Core snapshot keys exported as counters (the rest become gauges).
_CORE_COUNTERS = frozenset(
    {"requests_total", "rows_total", "batches_total", "errors_total"}
)

#: Snapshot keys that are attached sections (dicts) with special handling.
_SKIPPED_SECTION_KEYS = frozenset(
    {"per_connection", "by_config", "quotas", "ledger"}
)


def _emit_section(writer: _Writer, section_name: str, section: Dict[str, Any]) -> None:
    """Flatten one attached section's scalar numeric leaves into gauges."""
    base = f"{_PREFIX}_{_sanitize_name(section_name)}"
    for key, value in section.items():
        if key in _SKIPPED_SECTION_KEYS:
            continue
        if isinstance(value, dict):
            # One level of nesting (e.g. admission sub-groups) flattens
            # with an underscore; deeper structures stay CLI-only.
            for sub_key, sub_value in value.items():
                kind = "counter" if str(sub_key).endswith("_total") else "gauge"
                writer.sample(
                    f"{base}_{_sanitize_name(key)}_{_sanitize_name(sub_key)}",
                    sub_value,
                    kind=kind,
                )
            continue
        kind = "counter" if key.endswith("_total") else "gauge"
        writer.sample(f"{base}_{_sanitize_name(key)}", value, kind=kind)


def render_prometheus(
    snapshot: Dict[str, Any],
    histograms: Optional[Dict[str, Dict[str, Any]]] = None,
) -> str:
    """Render one telemetry snapshot as Prometheus text exposition 0.0.4.

    ``snapshot`` is :meth:`ServingTelemetry.snapshot` output;
    ``histograms`` is :meth:`ServingTelemetry.histogram_export` output
    (bucketed latency families), when available.
    """
    writer = _Writer()
    for key, value in snapshot.items():
        if isinstance(value, dict):
            continue  # sections and histogram summaries handled below
        kind = "counter" if key in _CORE_COUNTERS else "gauge"
        writer.sample(f"{_PREFIX}_{_sanitize_name(key)}", value, kind=kind)
    cost = snapshot.get("modelled_cost")
    if isinstance(cost, dict):
        _emit_section(writer, "modelled_cost", cost)
    for section_name in ("wire", "admission", "degradation", "retry", "chaos"):
        section = snapshot.get(section_name)
        if isinstance(section, dict):
            _emit_section(writer, section_name, section)
    tenancy = snapshot.get("tenancy")
    if isinstance(tenancy, dict):
        _emit_tenancy(writer, tenancy)
    for name, export in (histograms or {}).items():
        _emit_histogram(writer, f"{_PREFIX}_{_sanitize_name(name)}_seconds", export)
    return writer.text()


class MetricsServer:
    """Serve ``GET /metrics`` for one telemetry source, in a daemon thread.

    ``source`` is a zero-argument callable returning the exposition text
    (typically a closure over the service's telemetry).  Rendering runs in
    the HTTP thread per scrape -- the serving path never blocks on it.
    """

    def __init__(self, source: Callable[[], str], host: str = "127.0.0.1", port: int = 0):
        self._source = source

        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 -- http.server API
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics is served here")
                    return
                try:
                    body = outer._source().encode("utf-8")
                except Exception as error:  # noqa: BLE001 -- scrape must answer
                    self.send_error(500, f"snapshot failed: {error}")
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-scrape stderr
                pass

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="haan-metrics",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
