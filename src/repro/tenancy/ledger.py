"""`CostLedger`: per-tenant metering with exact cost attribution.

The simulated backends price every micro-batch in modelled hardware cost
(:class:`~repro.engine.backends.NormCostRecord`: cycles and nanojoules).
A micro-batch may mix requests of several tenants, so attribution needs a
*split*, and the ledger's contract is that the split is **exact**: summed
per-tenant cycles and energy reproduce the engine's aggregate totals
bit-for-bit, no matter how requests shared batches.

Two mechanisms make that possible:

* **Cycles** (integers) split by the cumulative-prefix scheme: request
  ``i`` of a batch gets ``total * cum_rows_i // rows - total *
  cum_rows_{i-1} // rows``.  Each share is a fair (row-proportional,
  error < 1 cycle) integer and the shares telescope to ``total`` exactly.
* **Energy** (a float) splits in :class:`fractions.Fraction` arithmetic.
  Every float is a dyadic rational, so ``Fraction(energy_nj)`` is exact,
  the row-proportional shares ``E * rows_i / rows`` are exact rationals,
  and their sum is *exactly* ``E`` under any grouping or order.  The
  ledger keeps energy as a ``Fraction`` internally, serializes it as a
  ``[numerator, denominator]`` pair (lossless snapshot/restore round
  trips) and exposes a float only in display snapshots.

Balances are prepaid credit in modelled cycles: ``deduct`` happens
automatically as costs are charged, ``remaining`` may go negative (the
server keeps serving; billing is an accounting concern, enforcement is
the quota layer's), and the exhausted state is visible in snapshots and
the metrics endpoint.
"""

from __future__ import annotations

import threading
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["CostLedger", "split_cost"]


def split_cost(
    total_cycles: int, energy_nj: float, counts: Sequence[int]
) -> List[Tuple[int, Fraction]]:
    """Row-proportional ``(cycles, energy)`` shares summing *exactly*.

    ``counts`` are the per-request row counts of one batch.  Returns one
    ``(int cycles, Fraction energy_nj)`` pair per request; the cycle
    shares sum to ``total_cycles`` and the energy shares sum to
    ``Fraction(energy_nj)``, both exactly.
    """
    total_rows = sum(counts)
    if total_rows <= 0:
        raise ValueError(f"counts must sum to > 0, got {list(counts)}")
    energy = Fraction(energy_nj)
    shares: List[Tuple[int, Fraction]] = []
    cumulative = 0
    previous = 0
    for count in counts:
        if count < 0:
            raise ValueError(f"counts must be >= 0, got {list(counts)}")
        cumulative += count
        prefix = total_cycles * cumulative // total_rows
        shares.append((prefix - previous, energy * count / total_rows))
        previous = prefix
    return shares


class _Account:
    """One tenant's mutable tallies (guarded by the ledger lock)."""

    __slots__ = (
        "requests",
        "rows",
        "bytes",
        "wall_seconds",
        "cycles",
        "energy_nj",
        "balance",
        "deducted",
    )

    def __init__(self, balance: Optional[Fraction] = None):
        self.requests = 0
        self.rows = 0
        self.bytes = 0
        self.wall_seconds = 0.0
        self.cycles = 0
        self.energy_nj = Fraction(0)
        #: Prepaid credit in modelled cycles (None = post-paid).
        self.balance = balance
        self.deducted = Fraction(0)


def _fraction_to_json(value: Fraction) -> List[int]:
    return [value.numerator, value.denominator]


def _fraction_from_json(value: Any, where: str) -> Fraction:
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or not all(isinstance(part, int) and not isinstance(part, bool) for part in value)
    ):
        raise ValueError(f"{where} must be a [numerator, denominator] pair, got {value!r}")
    return Fraction(value[0], value[1])


class CostLedger:
    """Thread-safe per-tenant cost accounting with balance semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._accounts: Dict[str, _Account] = {}

    # -- accounts ------------------------------------------------------

    def open_account(self, tenant: str, balance: Optional[float] = None) -> None:
        """Ensure an account exists; sets the prepaid balance on creation.

        Re-opening an existing account never resets its tallies or
        balance (reconnects must not refill a drained prepaid tenant).
        """
        with self._lock:
            if tenant not in self._accounts:
                self._accounts[tenant] = _Account(
                    None if balance is None else Fraction(balance)
                )

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted(self._accounts)

    # -- charging ------------------------------------------------------

    def charge_request(
        self, tenant: str, rows: int = 0, nbytes: int = 0, wall_seconds: float = 0.0
    ) -> None:
        """Attribute one served request's rows, bytes and wall latency."""
        with self._lock:
            account = self._accounts.setdefault(tenant, _Account())
            account.requests += 1
            account.rows += int(rows)
            account.bytes += int(nbytes)
            account.wall_seconds += float(wall_seconds)

    def charge_cost(self, tenant: str, cycles: int, energy_nj) -> None:
        """Attribute modelled cost; deducts from a prepaid balance.

        ``energy_nj`` may be a float or (exact path) a
        :class:`~fractions.Fraction` share from :func:`split_cost`.
        """
        with self._lock:
            account = self._accounts.setdefault(tenant, _Account())
            account.cycles += int(cycles)
            account.energy_nj += Fraction(energy_nj)
            if account.balance is not None:
                account.balance -= cycles
                account.deducted += cycles

    def charge_batch(
        self,
        tenants: Sequence[Optional[str]],
        counts: Sequence[int],
        cost_record,
    ) -> None:
        """Split one batch's :class:`NormCostRecord` across its tenants.

        This is the :attr:`NormalizationService.cost_observer` hook: called
        once per costed micro-batch with the per-request tenant names
        (None = anonymous) and row counts, in batch order.
        """
        shares = split_cost(cost_record.total_cycles, cost_record.energy_nj, counts)
        for tenant, (cycles, energy) in zip(tenants, shares):
            self.charge_cost(tenant or "anonymous", cycles, energy)

    # -- balances ------------------------------------------------------

    def remaining(self, tenant: str) -> Optional[float]:
        """Remaining prepaid cycles (None: unknown tenant or post-paid)."""
        with self._lock:
            account = self._accounts.get(tenant)
            if account is None or account.balance is None:
                return None
            return float(account.balance)

    def exhausted(self, tenant: str) -> bool:
        """Whether a prepaid tenant has spent its balance."""
        remaining = self.remaining(tenant)
        return remaining is not None and remaining <= 0

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Display snapshot: floats for energy/balance (telemetry, tables)."""
        with self._lock:
            return {
                tenant: {
                    "requests": account.requests,
                    "rows": account.rows,
                    "bytes": account.bytes,
                    "wall_seconds": account.wall_seconds,
                    "cycles": account.cycles,
                    "energy_nj": float(account.energy_nj),
                    "balance": None if account.balance is None else float(account.balance),
                    "deducted_cycles": float(account.deducted),
                    "exhausted": account.balance is not None and account.balance <= 0,
                }
                for tenant, account in sorted(self._accounts.items())
            }

    def to_json(self) -> Dict[str, Any]:
        """Lossless serialization (energy/balance as exact rationals)."""
        with self._lock:
            return {
                "version": 1,
                "tenants": {
                    tenant: {
                        "requests": account.requests,
                        "rows": account.rows,
                        "bytes": account.bytes,
                        "wall_seconds": account.wall_seconds,
                        "cycles": account.cycles,
                        "energy_nj": _fraction_to_json(account.energy_nj),
                        "balance": (
                            None
                            if account.balance is None
                            else _fraction_to_json(account.balance)
                        ),
                        "deducted": _fraction_to_json(account.deducted),
                    }
                    for tenant, account in self._accounts.items()
                },
            }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "CostLedger":
        """Restore a ledger serialized by :meth:`to_json`, losslessly."""
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise ValueError(
                f"not a CostLedger snapshot (expected version 1): {payload!r:.120}"
            )
        tenants = payload.get("tenants", {})
        if not isinstance(tenants, dict):
            raise ValueError("CostLedger snapshot 'tenants' must be an object")
        ledger = cls()
        for tenant, entry in tenants.items():
            account = _Account()
            account.requests = int(entry["requests"])
            account.rows = int(entry["rows"])
            account.bytes = int(entry["bytes"])
            account.wall_seconds = float(entry["wall_seconds"])
            account.cycles = int(entry["cycles"])
            account.energy_nj = _fraction_from_json(
                entry["energy_nj"], f"tenants[{tenant!r}].energy_nj"
            )
            balance = entry.get("balance")
            account.balance = (
                None
                if balance is None
                else _fraction_from_json(balance, f"tenants[{tenant!r}].balance")
            )
            account.deducted = _fraction_from_json(
                entry["deducted"], f"tenants[{tenant!r}].deducted"
            )
            ledger._accounts[tenant] = account
        return ledger

    # -- exact accessors (tests / benchmarks) --------------------------

    def exact_totals(self, tenant: str) -> Tuple[int, Fraction]:
        """``(cycles, energy_nj)`` with energy as the exact Fraction."""
        with self._lock:
            account = self._accounts.get(tenant)
            if account is None:
                return 0, Fraction(0)
            return account.cycles, account.energy_nj

    def __repr__(self) -> str:
        with self._lock:
            return f"CostLedger(tenants={sorted(self._accounts)})"
