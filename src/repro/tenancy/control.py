"""`TenancyController`: one object the server threads tenancy through.

Composes the three tenancy concerns behind the interfaces the serving
stack already has:

* :meth:`authenticate` resolves a hello token to a
  :class:`~repro.tenancy.tenants.TenantContext` (opening the tenant's
  ledger account with its declared prepaid balance);
* :meth:`quota_check` is the ``quota`` callable of the server's
  :class:`~repro.api.admission.PreDecodeGate` -- it classifies the peeked
  envelope (rows from tensor shapes, bytes from the frame length) and
  admits it against the tenant's token buckets, all before any tensor
  buffer is materialized;
* :meth:`charge_request` / the :attr:`ledger`'s ``charge_batch`` hook
  meter served work (rows, bytes, wall latency, modelled cycles/energy);
* :meth:`snapshot` is the ``tenancy`` telemetry section and the metrics
  endpoint's data source.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.tenancy.ledger import CostLedger
from repro.tenancy.quota import TenantQuota, estimate_rows
from repro.tenancy.tenants import (
    ANONYMOUS_CONTEXT,
    TenantContext,
    TenantDirectory,
)

__all__ = ["TenancyController"]


class TenancyController:
    """Auth, quotas and metering for one :class:`~repro.api.server.NormServer`."""

    def __init__(
        self,
        directory: Optional[TenantDirectory] = None,
        ledger: Optional[CostLedger] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.directory = directory if directory is not None else TenantDirectory()
        self.ledger = ledger if ledger is not None else CostLedger()
        self._clock = clock
        self._lock = threading.Lock()
        #: Tenant name -> its composed quota (created lazily on first use,
        #: from the tenant's tier policy; anonymous gets the default tier).
        self._quotas: Dict[str, TenantQuota] = {}
        self.authenticated_total = 0
        self.rejected_tokens = 0

    @classmethod
    def from_file(cls, path: str, require_auth: bool = False) -> "TenancyController":
        """Build from a tenant file (``haan-serve --tenants``)."""
        return cls(directory=TenantDirectory.from_file(path, require_auth=require_auth))

    @property
    def require_auth(self) -> bool:
        return self.directory.require_auth

    # -- auth ----------------------------------------------------------

    def authenticate(self, token: Optional[str]) -> TenantContext:
        """Resolve a hello token (see :meth:`TenantDirectory.authenticate`).

        A successful resolution opens the tenant's ledger account, seeding
        its prepaid balance from the tenant file exactly once.
        """
        try:
            context = self.directory.authenticate(token)
        except Exception:
            with self._lock:
                self.rejected_tokens += 1
            raise
        spec = self.directory.spec(context.name)
        self.ledger.open_account(
            context.name, balance=None if spec is None else spec.balance
        )
        with self._lock:
            if context.authenticated:
                self.authenticated_total += 1
        return context

    # -- the PreDecodeGate quota callable ------------------------------

    def quota_check(
        self, tenant: Optional[TenantContext], payload: Dict[str, Any], nbytes: int = 0
    ) -> None:
        """Admit one peeked work envelope against the tenant's buckets.

        Raises :class:`~repro.api.envelopes.QuotaExceededError` to shed.
        Row counts come from tensor ``shape`` fields of the peeked
        envelope (binary frames: the JSON preamble), so rejection never
        costs a buffer decode.
        """
        context = tenant if tenant is not None else ANONYMOUS_CONTEXT
        self.quota_for(context).admit(
            requests=1, rows=estimate_rows(payload), nbytes=nbytes
        )

    def quota_for(self, context: TenantContext) -> TenantQuota:
        """The tenant's quota, created from its tier policy on first use."""
        with self._lock:
            quota = self._quotas.get(context.name)
            if quota is None:
                quota = TenantQuota(
                    self.directory.policy_for(context.tier),
                    tenant=context.name,
                    clock=self._clock,
                )
                self._quotas[context.name] = quota
            return quota

    # -- metering ------------------------------------------------------

    def charge_request(
        self,
        tenant: Optional[TenantContext],
        rows: int = 0,
        nbytes: int = 0,
        wall_seconds: float = 0.0,
    ) -> None:
        """Meter one completed request (reader/worker side)."""
        context = tenant if tenant is not None else ANONYMOUS_CONTEXT
        self.ledger.charge_request(
            context.name, rows=rows, nbytes=nbytes, wall_seconds=wall_seconds
        )

    @property
    def cost_observer(self):
        """The :attr:`NormalizationService.cost_observer` hook (exact splits)."""
        return self.ledger.charge_batch

    # -- introspection -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The ``tenancy`` telemetry section / metrics-endpoint source."""
        with self._lock:
            quotas = {name: quota.snapshot() for name, quota in self._quotas.items()}
            authenticated = self.authenticated_total
            rejected = self.rejected_tokens
        return {
            "require_auth": self.require_auth,
            "tenants_declared": len(self.directory),
            "authenticated_total": authenticated,
            "rejected_tokens": rejected,
            "quotas": quotas,
            "ledger": self.ledger.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"TenancyController(tenants={len(self.directory)}, "
            f"require_auth={self.require_auth})"
        )
