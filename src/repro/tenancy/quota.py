"""Per-tenant rate quotas: token buckets over requests, rows and bytes.

A tenant's tier grants it a steady-state rate (``*_per_s``) and a burst
allowance (``burst_seconds`` worth of rate, accumulated while idle).  Each
tenant owns three :class:`TokenBucket` instances -- requests, rows, bytes --
grouped in a :class:`TenantQuota` that admits a request *atomically*: either
all three buckets are debited or none is, so a rejection never leaks
partial charge and concurrent reader threads can never over-admit.

The gate runs in the server's reader thread **before** frame decode.  The
row estimate therefore comes from :func:`estimate_rows`, a structural walk
over the peeked envelope (for binary frames: the JSON preamble only) that
reads tensor ``shape`` fields without ever materializing a buffer.

Rejections raise :class:`~repro.api.envelopes.QuotaExceededError` carrying
``retry_after_ms`` -- the bucket's own estimate of when enough tokens will
have refilled -- which the client-side retry policy honors as its backoff
floor, exactly like overload shedding.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.api.envelopes import QuotaExceededError

__all__ = [
    "DEFAULT_TIER",
    "QuotaPolicy",
    "TenantQuota",
    "TokenBucket",
    "estimate_rows",
]

#: ``retry_after_ms`` cap for unsatisfiable waits (zero-rate buckets or
#: requests larger than a bucket's burst capacity): the client should come
#: back *eventually*, not never.
_MAX_RETRY_AFTER_MS = 60_000.0


@dataclass(frozen=True)
class QuotaPolicy:
    """One tier's rate grants.  ``None`` disables that resource's limit."""

    requests_per_s: Optional[float] = 100.0
    rows_per_s: Optional[float] = 100_000.0
    bytes_per_s: Optional[float] = 64 * 1024 * 1024
    #: Burst allowance: each bucket's capacity is ``rate * burst_seconds``
    #: (at least one request / one row / one frame), accumulated while idle.
    burst_seconds: float = 1.0

    def __post_init__(self) -> None:
        for name in ("requests_per_s", "rows_per_s", "bytes_per_s"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0 or None, got {value!r}")
        if self.burst_seconds <= 0:
            raise ValueError(f"burst_seconds must be > 0, got {self.burst_seconds!r}")

    @classmethod
    def from_dict(cls, payload: Dict[str, Any], where: str = "tier") -> "QuotaPolicy":
        """Build from a tenant-file tier entry; unknown keys are rejected."""
        if not isinstance(payload, dict):
            raise ValueError(f"{where} must be a JSON object, got {type(payload).__name__}")
        known = {"requests_per_s", "rows_per_s", "bytes_per_s", "burst_seconds"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"{where} has unknown keys {sorted(unknown)}; knows {sorted(known)}")
        kwargs: Dict[str, Any] = {}
        for key in known:
            if key not in payload:
                continue
            value = payload[key]
            if value is not None and (isinstance(value, bool) or not isinstance(value, (int, float))):
                raise ValueError(f"{where}.{key} must be a number or null, got {value!r}")
            kwargs[key] = None if value is None else float(value)
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests_per_s": self.requests_per_s,
            "rows_per_s": self.rows_per_s,
            "bytes_per_s": self.bytes_per_s,
            "burst_seconds": self.burst_seconds,
        }


#: The tier anonymous (and otherwise un-tiered) tenants run under.
DEFAULT_TIER = "default"


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/s up to ``capacity``.

    The clock is injectable so tests control refill deterministically.
    ``try_acquire`` returns ``None`` on admission (tokens debited) or the
    seconds until ``amount`` tokens will be available (nothing debited --
    a rejected caller never consumes budget).
    """

    __slots__ = ("rate", "capacity", "_clock", "_lock", "_tokens", "_updated")

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate!r}")
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity!r}")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = self.capacity  # a fresh bucket grants its full burst
        self._updated = clock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, amount: float = 1.0) -> Optional[float]:
        """Debit ``amount`` tokens, or return the wait (s) until possible."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount!r}")
        with self._lock:
            self._refill_locked()
            if amount <= self._tokens:
                self._tokens -= amount
                return None
            deficit = amount - self._tokens
            if self.rate <= 0:
                return math.inf
            return deficit / self.rate

    def deficit(self, amount: float) -> float:
        """Seconds until ``amount`` tokens are available (0 if now)."""
        with self._lock:
            self._refill_locked()
            if amount <= self._tokens:
                return 0.0
            if self.rate <= 0:
                return math.inf
            return (amount - self._tokens) / self.rate

    def consume(self, amount: float) -> None:
        """Unconditionally debit ``amount`` (caller verified availability)."""
        with self._lock:
            self._refill_locked()
            self._tokens -= amount

    @property
    def tokens(self) -> float:
        """Current token balance (after refill)."""
        with self._lock:
            self._refill_locked()
            return self._tokens

    def snapshot(self) -> Dict[str, float]:
        return {"rate": self.rate, "capacity": self.capacity, "tokens": round(self.tokens, 3)}

    def __repr__(self) -> str:
        return f"TokenBucket(rate={self.rate}, capacity={self.capacity})"


#: Resource names, in the order they are checked and reported.
_RESOURCES = ("requests", "rows", "bytes")


class TenantQuota:
    """One tenant's composed quota: request, row and byte buckets.

    ``admit`` is all-or-nothing under one lock: all three buckets are
    checked first, then debited together, so a request rejected on one
    resource leaves the other buckets untouched and concurrent reader
    threads account exactly (never over-admitting past any bucket's
    capacity).  The buckets stay individually thread-safe, so reading a
    gauge never needs the tenant lock.
    """

    def __init__(
        self,
        policy: QuotaPolicy,
        tenant: str = "anonymous",
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy
        self.tenant = tenant
        self._lock = threading.Lock()
        self._buckets: Dict[str, Optional[TokenBucket]] = {}
        for name, rate, floor in (
            ("requests", policy.requests_per_s, 1.0),
            ("rows", policy.rows_per_s, 1.0),
            ("bytes", policy.bytes_per_s, 1.0),
        ):
            if rate is None:
                self._buckets[name] = None  # unlimited
            else:
                capacity = max(floor, rate * policy.burst_seconds)
                self._buckets[name] = TokenBucket(rate, capacity, clock)
        self.admitted = 0
        self.shed: Dict[str, int] = {name: 0 for name in _RESOURCES}

    def admit(self, requests: float = 1.0, rows: float = 0.0, nbytes: float = 0.0) -> None:
        """Admit one request charging all three resources, or raise.

        Raises :class:`QuotaExceededError` naming the binding resource and
        carrying ``retry_after_ms`` (the longest bucket wait, capped).
        """
        amounts = {"requests": requests, "rows": rows, "bytes": nbytes}
        with self._lock:
            worst: Optional[tuple] = None  # (wait_s, resource)
            for name in _RESOURCES:
                bucket = self._buckets[name]
                if bucket is None or amounts[name] <= 0:
                    continue
                wait = bucket.deficit(amounts[name])
                if wait > 0 and (worst is None or wait > worst[0]):
                    worst = (wait, name)
            if worst is not None:
                wait, resource = worst
                self.shed[resource] += 1
                retry_after = min(_MAX_RETRY_AFTER_MS, max(1.0, wait * 1000.0))
                raise QuotaExceededError(
                    f"tenant {self.tenant!r} exceeded its {resource} quota "
                    f"({self._describe(resource)}); request shed before decode",
                    retry_after_ms=retry_after,
                )
            for name in _RESOURCES:
                bucket = self._buckets[name]
                if bucket is not None and amounts[name] > 0:
                    bucket.consume(amounts[name])
            self.admitted += 1

    def _describe(self, resource: str) -> str:
        rate = getattr(self.policy, f"{resource}_per_s")
        return f"{rate:g}/s, burst {self.policy.burst_seconds:g}s"

    def snapshot(self) -> Dict[str, Any]:
        """Gauges for telemetry / the metrics endpoint."""
        return {
            "admitted": self.admitted,
            "shed": dict(self.shed),
            "buckets": {
                name: (bucket.snapshot() if bucket is not None else None)
                for name, bucket in self._buckets.items()
            },
        }


def _looks_like_tensor(value: Dict[str, Any]) -> bool:
    return (
        isinstance(value.get("shape"), list)
        and "encoding" in value
        and "data" in value
    )


def estimate_rows(payload: Any) -> int:
    """Row (token) count of an envelope, from tensor shapes alone.

    Structural walk over the (peeked) envelope: every tensor-shaped dict
    contributes ``shape[0]`` rows when 2-D-or-higher, else 1.  Works on
    JSON envelopes and on binary-frame preambles alike -- in a binary
    preamble the tensor's ``data`` is a buffer index, and this function
    never touches it, so no tensor bytes are materialized for a request
    that ends up rejected.
    """
    total = 0
    stack = [payload]
    while stack:
        value = stack.pop()
        if isinstance(value, dict):
            if _looks_like_tensor(value):
                shape = value["shape"]
                if len(shape) >= 2 and isinstance(shape[0], int) and shape[0] >= 0:
                    total += shape[0]
                else:
                    total += 1
                continue  # never descend into a tensor's fields
            stack.extend(value.values())
        elif isinstance(value, (list, tuple)):
            stack.extend(value)
    return total
