"""Tests of the versioned public client/server normalization API.

The contracts under test, in order:

* envelope round trips: every request/response/error envelope survives
  ``to_wire`` -> ``from_wire`` intact, tensors bit-exactly in both
  encodings, and schema-version mismatches are rejected;
* transport equivalence: ``NormClient`` over ``InProcessTransport`` and
  over ``SocketTransport`` produces outputs bit-identical to calling
  ``NormalizationService`` directly;
* the ``remote`` engine backend: ``engine.build(spec, backend="remote")``
  round-trips through a live ``NormServer`` bit-identically to the local
  ``reference`` backend, for computed and skipped specs;
* resilience: error taxonomy over the wire, payload-size rejection, and
  client reconnect after a server restart on the same port;
* the serving front door: unknown backend / model / accelerator names fail
  at ``submit()`` time listing the registered names, baseline accelerators
  are registered as costed ``simulated-*`` backends, and simulated cost
  records aggregate into the telemetry snapshot.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.api.client import NormClient
from repro.api.envelopes import (
    SCHEMA_VERSION,
    ApiError,
    BadSchemaError,
    ErrorResponse,
    ExecuteSpecRequest,
    NormalizeRequest,
    NormalizeResponse,
    PayloadTooLargeError,
    SchemaVersionError,
    SpecRequest,
    TensorPayload,
    TransportError,
    UnknownBackendError,
    UnknownModelError,
    parse_request,
    parse_response,
)
from repro.api.framing import FRAME_HEADER, encode_frame
from repro.api.handler import ApiHandler
from repro.api.server import NormServer, parse_address
from repro.api.transport import InProcessTransport
from repro.core.config import HaanConfig
from repro.core.haan_norm import HaanNormalization
from repro.core.predictor import IsdPredictor
from repro.core.subsampling import SubsampleSettings
from repro.engine.registry import available_backends, build, local_backends
from repro.engine.spec import EngineSpec
from repro.llm.normalization import LayerNorm
from repro.numerics.quantization import DataFormat
from repro.serving.registry import CalibrationArtifact, CalibrationRegistry
from repro.serving.service import NormalizationService

HIDDEN = 48


# ---------------------------------------------------------------------------
# fixtures: a calibration-free artifact so no test pays Algorithm 1
# ---------------------------------------------------------------------------


def _instant_loader(model_name, dataset):
    """Artifact stub: a computed HAAN layer, a skipped one, and a reference."""
    rng = np.random.default_rng(29)
    layers = []
    bases = []
    for index in (0, 1):
        base = LayerNorm(hidden_size=HIDDEN, layer_index=index, name=f"api.norm{index}")
        base.load_affine(rng.normal(1.0, 0.1, HIDDEN), rng.normal(0.0, 0.1, HIDDEN))
        bases.append(base)
    computed = HaanNormalization(
        bases[0], subsample=SubsampleSettings(length=12), data_format=DataFormat.INT8
    )
    predictor = IsdPredictor(anchor_layer=0, last_layer=3, decay=-0.04, anchor_log_isd=0.1)
    skipped = HaanNormalization(bases[1], predictor=predictor, data_format=DataFormat.FP16)
    return CalibrationArtifact(
        model_name=model_name,
        dataset=dataset,
        model=None,
        config=HaanConfig(subsample_length=12, data_format=DataFormat.INT8),
        calibration=None,
        haan_layers=[computed, skipped],
        reference_layers=bases,
    )


@pytest.fixture()
def registry():
    return CalibrationRegistry(loader=_instant_loader)


@pytest.fixture()
def service(registry):
    with NormalizationService(registry=registry, threaded=False) as svc:
        yield svc


@pytest.fixture()
def live_server(registry):
    """A threaded service behind a real TCP NormServer on a free port."""
    svc = NormalizationService(registry=registry)
    server = NormServer(svc).start()
    yield server
    server.close()
    svc.close()


def _rows(rng, count=5):
    return rng.normal(0.0, 1.5, size=(count, HIDDEN))


# ---------------------------------------------------------------------------
# envelope round trips
# ---------------------------------------------------------------------------


class TestTensorPayload:
    @pytest.mark.parametrize("encoding", ["base64", "list"])
    @pytest.mark.parametrize(
        "dtype", ["float64", "float32", "float16", "int64", "int32", "int8"]
    )
    def test_round_trip_preserves_bits_and_dtype(self, rng, encoding, dtype):
        if dtype.startswith("float"):
            arr = rng.normal(0.0, 100.0, size=(3, 7)).astype(dtype)
        else:
            arr = rng.integers(-100, 100, size=(3, 7)).astype(dtype)
        payload = TensorPayload.from_array(arr, encoding)
        decoded = payload.to_array()
        assert decoded.dtype == arr.dtype
        assert np.array_equal(decoded, arr)

    @pytest.mark.parametrize("encoding", ["base64", "list"])
    def test_survives_json_and_special_values(self, encoding):
        arr = np.array([np.pi, 1e-308, -0.0, 1.0 / 3.0, 12345.6789])
        wire = TensorPayload.from_array(arr, encoding).to_wire()
        restored = TensorPayload.from_wire(json.loads(json.dumps(wire)))
        assert np.array_equal(restored.to_array(), arr)

    def test_empty_and_1d_shapes(self):
        for arr in (np.empty((0, 4)), np.arange(3.0)):
            decoded = TensorPayload.from_array(arr).to_array()
            assert decoded.shape == arr.shape
            assert np.array_equal(decoded, arr)

    def test_decoded_array_is_writable(self, rng):
        decoded = TensorPayload.from_array(_rows(rng)).to_array()
        decoded[0, 0] = 42.0  # would raise on a frombuffer view

    def test_byte_count_mismatch_rejected(self, rng):
        payload = TensorPayload.from_array(_rows(rng))
        wire = payload.to_wire()
        wire["shape"] = [1, 1]
        with pytest.raises(BadSchemaError, match="bytes"):
            TensorPayload.from_wire(wire).to_array()

    def test_bad_dtype_and_encoding_rejected(self):
        wire = TensorPayload.from_array(np.arange(3.0)).to_wire()
        for key, value in (("dtype", "complex128"), ("encoding", "pickle")):
            broken = dict(wire)
            broken[key] = value
            with pytest.raises(BadSchemaError):
                TensorPayload.from_wire(broken)


class TestEnvelopes:
    def test_normalize_request_round_trip(self, rng):
        request = NormalizeRequest(
            model="tiny",
            tensor=TensorPayload.from_array(_rows(rng)),
            layer_index=3,
            dataset="wiki",
            reference=True,
            backend="simulated",
            accelerator="haan-v2",
        )
        wire = json.loads(json.dumps(request.to_wire()))
        assert wire["schema_version"] == SCHEMA_VERSION
        decoded = parse_request(wire)
        assert decoded == request

    def test_every_request_op_round_trips(self, rng):
        spec = EngineSpec(kind="layernorm", hidden_size=HIDDEN).to_dict()
        requests = [
            NormalizeRequest(model="m", tensor=TensorPayload.from_array(_rows(rng))),
            SpecRequest(model="m", layer_index=1),
            ExecuteSpecRequest(
                spec=spec,
                rows=TensorPayload.from_array(_rows(rng)),
                segment_starts=TensorPayload.from_array(np.array([0, 2])),
                backend="reference",
            ),
        ]
        for request in requests:
            decoded = parse_request(json.loads(json.dumps(request.to_wire())))
            assert decoded == request

    def test_schema_version_mismatch_rejected(self, rng):
        wire = NormalizeRequest(
            model="m", tensor=TensorPayload.from_array(_rows(rng))
        ).to_wire()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError, match="schema_version"):
            parse_request(wire)
        with pytest.raises(SchemaVersionError):
            parse_response(wire, "normalize")

    def test_missing_fields_and_unknown_op_rejected(self):
        with pytest.raises(BadSchemaError, match="missing"):
            parse_request({"schema_version": SCHEMA_VERSION, "op": "spec"})
        with pytest.raises(BadSchemaError, match="unknown op"):
            parse_request(
                {"schema_version": SCHEMA_VERSION, "op": "teleport", "request_id": 1}
            )
        with pytest.raises(BadSchemaError):
            parse_request([1, 2, 3])

    def test_error_response_round_trip_raises_taxonomy_member(self):
        wire = ErrorResponse(code="unknown_model", message="nope", request_id=7).to_wire()
        assert wire["ok"] is False
        with pytest.raises(UnknownModelError, match="nope"):
            parse_response(json.loads(json.dumps(wire)), "normalize")

    def test_unknown_error_code_degrades_to_base_api_error(self):
        wire = ErrorResponse(code="haywire", message="?", request_id=1).to_wire()
        with pytest.raises(ApiError):
            parse_response(wire, "normalize")

    def test_normalize_response_round_trip(self, rng):
        response = NormalizeResponse(
            request_id=9,
            tensor=TensorPayload.from_array(_rows(rng)),
            mean=TensorPayload.from_array(np.zeros(5)),
            isd=TensorPayload.from_array(np.ones(5)),
            was_predicted=True,
            was_subsampled=False,
            batch_size=4,
            queue_wait=0.001,
            batch_latency=0.002,
            backend="vectorized",
        )
        decoded = parse_response(json.loads(json.dumps(response.to_wire())), "normalize")
        assert decoded == response


class TestFraming:
    def test_frame_header_is_four_byte_length_prefix(self):
        frame = encode_frame({"a": 1})
        (length,) = FRAME_HEADER.unpack(frame[:4])
        assert length == len(frame) - 4
        assert json.loads(frame[4:].decode()) == {"a": 1}

    def test_oversized_frame_rejected_at_encode_time(self):
        with pytest.raises(PayloadTooLargeError):
            encode_frame({"blob": "x" * 1024}, max_frame_bytes=64)


# ---------------------------------------------------------------------------
# transports: bit-equivalence with the direct service path
# ---------------------------------------------------------------------------


class TestInProcessTransport:
    def test_bit_identical_to_direct_service_calls(self, registry, rng):
        payloads = [_rows(rng, 3) for _ in range(4)]
        with NormalizationService(registry=registry, threaded=False) as direct:
            golden = [
                direct.normalize(p, "tiny", layer_index=index % 2)
                for index, p in enumerate(payloads)
            ]
        with NormClient.in_process(registry=registry) as client:
            results = [
                client.normalize(p, "tiny", layer_index=index % 2)
                for index, p in enumerate(payloads)
            ]
        for result, reference in zip(results, golden):
            assert np.array_equal(result.output, reference.output)
            assert np.array_equal(result.mean, reference.mean)
            assert np.array_equal(result.isd, reference.isd)
            assert result.was_predicted == reference.was_predicted

    @pytest.mark.parametrize("encoding", ["base64", "list"])
    def test_both_encodings_are_exact(self, registry, rng, encoding):
        payload = _rows(rng)
        with NormClient.in_process(registry=registry) as client:
            via_api = client.normalize(payload, "tiny", encoding=encoding)
        artifact = _instant_loader("tiny", "default")
        golden = artifact.layer(0).engine_for("reference").run(payload)
        assert np.array_equal(via_api.output, golden[0])

    def test_1d_payload_shape_restored(self, registry, rng):
        with NormClient.in_process(registry=registry) as client:
            result = client.normalize(rng.normal(size=HIDDEN), "tiny")
        assert result.output.shape == (HIDDEN,)

    def test_payload_too_large_rejected(self, registry, rng):
        transport = InProcessTransport(registry=registry, max_payload_elements=16)
        with NormClient(transport) as client:
            with pytest.raises(PayloadTooLargeError, match="16"):
                client.normalize(_rows(rng), "tiny")

    def test_wrong_width_maps_to_bad_schema(self, registry, rng):
        with NormClient.in_process(registry=registry) as client:
            with pytest.raises(BadSchemaError, match="hidden"):
                client.normalize(rng.normal(size=(2, HIDDEN + 1)), "tiny")

    def test_fetch_spec_matches_layer_plan(self, registry):
        with NormClient.in_process(registry=registry) as client:
            served = client.fetch_spec("tiny", layer_index=1)
        layer = _instant_loader("tiny", "default").layer(1)
        assert served.spec == layer.plan.spec
        assert served.num_layers == 2
        assert np.array_equal(served.gamma, layer.gamma)
        assert np.array_equal(served.beta, layer.beta)

    def test_closed_transport_refuses_requests(self, registry):
        client = NormClient.in_process(registry=registry)
        client.close()
        with pytest.raises(TransportError):
            client.ping()


class TestSocketTransport:
    def test_bit_identical_over_the_wire(self, live_server, registry, rng):
        payloads = [_rows(rng, 4) for _ in range(3)]
        artifact = registry.get("tiny", "default")
        with NormClient.connect(live_server.host, live_server.port) as client:
            for index, payload in enumerate(payloads):
                result = client.normalize(payload, "tiny", layer_index=index % 2)
                golden = artifact.layer(index % 2).engine_for("reference").run(payload)
                assert np.array_equal(result.output, golden[0])
                assert np.array_equal(result.isd, golden[2])

    def test_error_taxonomy_travels_the_wire(self, live_server, rng):
        with NormClient.connect(live_server.host, live_server.port) as client:
            with pytest.raises(UnknownBackendError, match="vectorized"):
                client.normalize(_rows(rng), "tiny", backend="abacus")
            # the remote backend is refused server-side (forwarding loop)
            with pytest.raises(UnknownBackendError, match="remote"):
                client.normalize(_rows(rng), "tiny", backend="remote")

    def test_ping_reports_registered_backends(self, live_server):
        with NormClient.connect(live_server.host, live_server.port) as client:
            assert client.ping()["backends"] == available_backends()

    def test_telemetry_over_the_wire(self, live_server, rng):
        with NormClient.connect(live_server.host, live_server.port) as client:
            client.normalize(_rows(rng), "tiny")
            snapshot = client.telemetry()
        assert snapshot["telemetry"]["requests_total"] >= 1
        assert snapshot["registry"]["entries"] >= 1

    def test_two_clients_share_one_server(self, live_server, registry, rng):
        payload = _rows(rng)
        artifact = registry.get("tiny", "default")
        golden = artifact.layer(0).engine_for("reference").run(payload)[0]
        clients = [
            NormClient.connect(live_server.host, live_server.port) for _ in range(2)
        ]
        try:
            for client in clients:
                assert np.array_equal(client.normalize(payload, "tiny").output, golden)
        finally:
            for client in clients:
                client.close()

    def test_reconnect_after_server_restart_on_same_port(self, registry, rng):
        svc = NormalizationService(registry=registry)
        server = NormServer(svc).start()
        port = server.port
        client = NormClient.connect(server.host, port)
        try:
            first = client.normalize(_rows(rng), "tiny")
            server.close()
            svc.close()
            svc2 = NormalizationService(registry=registry)
            server2 = NormServer(svc2, port=port).start()
            try:
                # same client object, no explicit reconnect: the transport
                # drops the stale socket and retries against the new server
                second = client.normalize(_rows(rng, 2), "tiny")
                assert second.output.shape == (2, HIDDEN)
                assert first.output.shape == (5, HIDDEN)
            finally:
                server2.close()
                svc2.close()
        finally:
            client.close()

    def test_connect_failure_is_transport_error(self):
        client = NormClient.connect("127.0.0.1", 1, connect_timeout=0.2)
        with pytest.raises(TransportError, match="connect"):
            client.ping()

    def test_oversized_frame_rejected_client_side(self, live_server, rng):
        from repro.api.transport import SocketTransport

        # negotiate=False: the hello exchange itself would trip the tiny
        # frame limit before the request under test is ever encoded.
        transport = SocketTransport(
            live_server.host, live_server.port, max_frame_bytes=128, negotiate=False
        )
        with NormClient(transport) as client:
            with pytest.raises(PayloadTooLargeError):
                client.normalize(_rows(rng), "tiny")


class TestBulkAndStreamOps:
    """The v2 envelopes through the shared handler (in-process transport)."""

    def test_normalize_bulk_matches_direct_service_calls(self, registry, rng):
        payloads = [_rows(rng, n) for n in (1, 4, 2)]
        with NormalizationService(registry=registry, threaded=False) as direct:
            golden = [direct.normalize(p, "tiny") for p in payloads]
        with NormClient.in_process(registry=registry) as client:
            results = client.normalize_bulk(payloads, "tiny")
        for result, reference in zip(results, golden):
            assert np.array_equal(result.output, reference.output)
            assert np.array_equal(result.isd, reference.isd)

    def test_normalize_bulk_fills_one_micro_batch(self, registry, rng):
        # equal-size payloads share a size bucket: one bulk frame becomes
        # exactly one micro-batch (no cross-client coalescing needed)
        payloads = [_rows(rng, 2) for _ in range(3)]
        with NormClient.in_process(registry=registry) as client:
            results = client.normalize_bulk(payloads, "tiny")
        assert all(result.batch_size == len(payloads) for result in results)

    def test_stream_yields_chunk_order_and_matches_direct(self, registry, rng):
        chunks = [_rows(rng, 2) for _ in range(5)]
        artifact = registry.get("tiny", "default")
        golden = [artifact.layer(0).engine_for("reference").run(c)[0] for c in chunks]
        with NormClient.in_process(registry=registry) as client:
            results = list(client.stream(chunks, "tiny", depth=2))
        assert len(results) == len(chunks)
        for result, reference in zip(results, golden):
            assert np.array_equal(result.output, reference)

    def test_stream_marks_the_last_chunk_final(self, registry, rng):
        recorded = []

        class RecordingTransport(InProcessTransport):
            def submit(self, payload):
                recorded.append(payload)
                return super().submit(payload)

        chunks = (chunk for chunk in [_rows(rng, 1) for _ in range(4)])  # generator
        with NormClient(RecordingTransport(registry=registry)) as client:
            results = list(client.stream(chunks, "tiny", depth=2))
        assert len(results) == 4
        assert [payload["final"] for payload in recorded] == [False, False, False, True]
        assert [payload["seq"] for payload in recorded] == [0, 1, 2, 3]
        assert len({payload["stream_id"] for payload in recorded}) == 1

    def test_submit_normalize_returns_completed_pending(self, registry, rng):
        payload = _rows(rng)
        with NormClient.in_process(registry=registry) as client:
            pending = client.submit_normalize(payload, "tiny")
            assert pending.done()  # in-process: completes synchronously
            result = pending.result()
        assert result.output.shape == payload.shape

    def test_normalize_many_depth_over_in_process(self, registry, rng):
        payloads = [_rows(rng, 2) for _ in range(5)]
        with NormClient.in_process(registry=registry) as client:
            lockstep = client.normalize_many(payloads, "tiny", depth=1)
            pipelined = client.normalize_many(payloads, "tiny", depth=3)
        for a, b in zip(lockstep, pipelined):
            assert np.array_equal(a.output, b.output)
        with pytest.raises(ValueError, match="depth"):
            client.normalize_many(payloads, "tiny", depth=0)

    def test_empty_bulk_rejected(self, registry):
        with NormClient.in_process(registry=registry) as client:
            with pytest.raises(BadSchemaError, match="at least one tensor"):
                client.normalize_bulk([], "tiny")

    def test_bulk_total_size_capped(self, registry, rng):
        transport = InProcessTransport(registry=registry, max_payload_elements=300)
        with NormClient(transport) as client:
            # each tensor fits, the sum does not
            with pytest.raises(PayloadTooLargeError, match="across"):
                client.normalize_bulk([_rows(rng, 4)] * 2, "tiny")

    def test_bulk_width_mismatch_is_bad_schema(self, registry, rng):
        with NormClient.in_process(registry=registry) as client:
            with pytest.raises(BadSchemaError, match="hidden"):
                client.normalize_bulk([rng.normal(size=(2, HIDDEN + 3))], "tiny")


class TestLazyPackageExports:
    def test_public_names_resolve_and_cache(self):
        import repro.api as api

        assert api.NormClient is NormClient
        assert api.SCHEMA_VERSION == SCHEMA_VERSION
        assert "NormalizeBulkRequest" in dir(api)
        assert api.FrameDecoder is not None
        with pytest.raises(AttributeError):
            api.NoSuchExport


# ---------------------------------------------------------------------------
# the remote engine backend
# ---------------------------------------------------------------------------


class TestRemoteBackend:
    def _specs(self, rng):
        computed = EngineSpec(
            kind="layernorm",
            hidden_size=HIDDEN,
            storage="int8",
            subsample_length=12,
        )
        skipped = EngineSpec(
            kind="layernorm",
            hidden_size=HIDDEN,
            storage="fp16",
            skipped=True,
            layer_index=2,
            predictor_anchor_layer=0,
            predictor_last_layer=3,
            predictor_decay=-0.04,
            predictor_anchor_log_isd=0.1,
        )
        gamma = rng.normal(1.0, 0.1, HIDDEN)
        beta = rng.normal(0.0, 0.1, HIDDEN)
        return computed, skipped, gamma, beta

    def test_registered_but_not_local(self):
        assert "remote" in available_backends()
        assert "remote" not in local_backends()
        with pytest.raises(ValueError, match="address"):
            build(EngineSpec(kind="layernorm", hidden_size=4), backend="remote")

    def test_round_trip_matches_reference_bit_for_bit(self, live_server, rng):
        computed, skipped, gamma, beta = self._specs(rng)
        stacked = rng.normal(size=(9, HIDDEN))
        starts = np.array([0, 3, 7])
        anchor = np.array([1.0, 1.5, np.nan, 0.5, 2.0, 0.7, 1.1, 0.9, 1.3])
        for spec, anchor_isd in ((computed, None), (skipped, anchor)):
            remote = build(
                spec,
                backend="remote",
                address=live_server.address,
                gamma=gamma,
                beta=beta,
            )
            local = build(spec, backend="reference", gamma=gamma, beta=beta)
            try:
                got = remote.run(stacked, starts, anchor_isd)
                expected = local.run(stacked, starts, anchor_isd)
                for remote_part, local_part in zip(got, expected):
                    assert np.array_equal(remote_part, local_part)
            finally:
                remote.backend.close()

    def test_run_many_ships_one_bulk_frame(self, live_server, rng):
        """Engine.run_many over the remote backend == looped reference runs."""
        computed, skipped, gamma, beta = self._specs(rng)
        groups = [
            (rng.normal(size=(3, HIDDEN)), None, None),
            (rng.normal(size=(6, HIDDEN)), np.array([0, 2, 5]), None),
        ]
        anchor = np.array([1.0, np.nan, 0.5, 2.0, 0.7, 1.1])
        skipped_groups = [(rows, starts, anchor[: rows.shape[0]]) for rows, starts, _ in groups]
        for spec, spec_groups in ((computed, groups), (skipped, skipped_groups)):
            remote = build(
                spec, backend="remote", address=live_server.address, gamma=gamma, beta=beta
            )
            local = build(spec, backend="reference", gamma=gamma, beta=beta)
            # frames_received is exact here: every already-answered frame
            # was counted before its response was sent (requests_served
            # lags -- workers increment it after the send).
            before = live_server.wire_snapshot()["frames_received"]
            try:
                got = remote.run_many(spec_groups)
            finally:
                remote.backend.close()
            # one execute_bulk frame (+1 for the connect-time hello)
            assert live_server.wire_snapshot()["frames_received"] == before + 2
            expected = local.run_many(spec_groups)
            for got_parts, expected_parts in zip(got, expected):
                for got_part, expected_part in zip(got_parts, expected_parts):
                    assert np.array_equal(got_part, expected_part)

    def test_out_buffer_honored(self, live_server, rng):
        computed, _, gamma, beta = self._specs(rng)
        engine = build(
            computed, backend="remote", address=live_server.address, gamma=gamma, beta=beta
        )
        try:
            rows = rng.normal(size=(4, HIDDEN))
            out = np.empty((4, HIDDEN))
            result, _, _ = engine.run(rows, out=out)
            assert result is out
            assert np.array_equal(out, build(computed, gamma=gamma, beta=beta).run(rows)[0])
        finally:
            engine.backend.close()

    def test_server_rejects_bad_spec(self, live_server, rng):
        with NormClient.connect(live_server.host, live_server.port) as client:
            with pytest.raises(BadSchemaError, match="spec"):
                client.execute_spec({"kind": "hypernorm"}, rng.normal(size=(2, 4)))

    def test_server_side_engine_cache_reused(self, registry, rng):
        svc = NormalizationService(registry=registry, threaded=False)
        handler = ApiHandler(svc, engine_cache_size=4)
        spec = EngineSpec(kind="rmsnorm", hidden_size=HIDDEN)
        with NormClient(InProcessTransportWithHandler(handler)) as client:
            for _ in range(3):
                client.execute_spec(spec, rng.normal(size=(2, HIDDEN)))
        assert len(handler._engine_cache) == 1
        svc.close()


class InProcessTransportWithHandler:
    """Minimal transport over an externally-owned handler (test helper)."""

    def __init__(self, handler):
        self._handler = handler

    def request(self, payload):
        return self._handler.handle(payload)

    def close(self):
        pass


# ---------------------------------------------------------------------------
# serving front door: submit-time validation + cost telemetry
# ---------------------------------------------------------------------------


class TestSubmitValidation:
    def test_unknown_backend_raises_at_submit_listing_registry(self, service, rng):
        with pytest.raises(ValueError) as excinfo:
            service.submit(_rows(rng), "tiny", backend="fpga-of-the-future")
        for name in available_backends():
            assert name in str(excinfo.value)

    def test_unknown_model_raises_at_submit_with_default_known_models(self, rng):
        registry = CalibrationRegistry(loader=_instant_loader, known_models=["tiny"])
        with NormalizationService(registry=registry, threaded=False) as svc:
            with pytest.raises(ValueError, match="registered models: tiny"):
                svc.submit(_rows(rng), "gpt5")

    def test_default_registry_knows_the_model_zoo(self):
        from repro.llm.config import available_models

        registry = CalibrationRegistry()
        assert registry.known_model_names() == available_models()
        with pytest.raises(ValueError, match="tiny"):
            registry.validate_model("definitely-not-a-model")

    def test_custom_loader_skips_model_validation(self, registry):
        assert registry.known_model_names() is None
        registry.validate_model("anything-goes")  # no raise

    def test_unknown_accelerator_raises_at_submit(self, service, rng):
        with pytest.raises(ValueError, match="haan-v1"):
            service.submit(_rows(rng), "tiny", backend="simulated", accelerator="tpu")

    def test_accelerator_on_costless_backend_fails_future(self, service, rng):
        future = service.submit(
            _rows(rng), "tiny", backend="vectorized", accelerator="haan-v2"
        )
        service.batcher.drain_all()
        with pytest.raises(ValueError, match="accelerator"):
            future.result()


class TestCostTelemetry:
    def test_simulated_cost_aggregates_into_snapshot(self, service, rng):
        service.normalize_many([_rows(rng) for _ in range(3)], "tiny", backend="simulated")
        snap = service.telemetry.snapshot()
        cost = snap["modelled_cost"]
        assert cost["batches"] >= 1
        assert cost["total_cycles"] > 0
        assert cost["energy_nj"] > 0
        assert cost["by_config"]["haan-v1"]["cycles"] == cost["total_cycles"]
        assert "modelled cycles" in service.telemetry.format_table()

    def test_costless_backends_leave_cost_empty(self, service, rng):
        service.normalize(_rows(rng), "tiny", backend="vectorized")
        cost = service.telemetry.snapshot()["modelled_cost"]
        assert cost["batches"] == 0
        assert "modelled cycles" not in service.telemetry.format_table()

    def test_per_request_accelerator_selection_attributes_cost(self, service, rng):
        service.normalize(_rows(rng), "tiny", backend="simulated", accelerator="haan-v1")
        service.normalize(_rows(rng), "tiny", backend="simulated", accelerator="dfx")
        by_config = service.telemetry.snapshot()["modelled_cost"]["by_config"]
        assert set(by_config) == {"haan-v1", "dfx"}
        # DFX's 16-lane datapath needs more cycles than HAAN-v1's 128 lanes
        assert by_config["dfx"]["cycles"] > by_config["haan-v1"]["cycles"]

    def test_accelerator_requests_never_share_a_batch(self, service, rng):
        for accelerator in ("haan-v1", "haan-v2"):
            service.submit_many(
                [_rows(rng, 1)] * 2, "tiny", backend="simulated", accelerator=accelerator
            )
        service.batcher.drain_all()
        snap = service.telemetry.snapshot()
        assert snap["modelled_cost"]["batches"] == 2


class TestBaselineBackends:
    def test_baselines_registered_as_costed_simulated_variants(self):
        assert {"simulated-sole", "simulated-dfx", "simulated-mhaa"} <= set(
            available_backends()
        )

    def test_baseline_backend_bit_identical_and_costed(self, rng):
        spec = EngineSpec(kind="layernorm", hidden_size=HIDDEN, storage="fp16")
        rows = rng.normal(size=(6, HIDDEN))
        golden = build(spec, backend="reference").run(rows)
        for name, config_name in (
            ("simulated-sole", "sole"),
            ("simulated-dfx", "dfx"),
            ("simulated-mhaa", "mhaa"),
        ):
            engine = build(spec, backend=name)
            out, mean, isd = engine.run(rows)
            assert np.array_equal(out, golden[0])
            record = engine.backend.last_record
            assert record is not None
            assert record.config_name == config_name
            assert record.total_cycles > 0

    def test_baseline_cycle_models_differ_structurally(self, rng):
        spec = EngineSpec(kind="layernorm", hidden_size=1024, storage="fp16")
        rows = rng.normal(size=(8, 1024))
        cycles = {}
        for name in ("simulated-sole", "simulated-dfx", "simulated-mhaa"):
            engine = build(spec, backend=name)
            engine.run(rows)
            cycles[name] = engine.backend.last_record.total_cycles
        # DFX's 16-lane unit must cost more cycles than SOLE's 200 lanes
        assert cycles["simulated-dfx"] > cycles["simulated-sole"]

    def test_accelerator_configs_resolve_baselines(self):
        from repro.hardware.configs import resolve_accelerator_config

        for name, lanes in (("sole", 200), ("dfx", 16), ("mhaa", 100)):
            config = resolve_accelerator_config(name)
            assert config.stats_width == lanes
        with pytest.raises(ValueError, match="sole"):
            resolve_accelerator_config("abacus")


# ---------------------------------------------------------------------------
# the api experiment and server lifecycle
# ---------------------------------------------------------------------------


class TestApiExperiment:
    def test_transport_parity_is_exact(self):
        from repro.eval.experiments import run_experiment

        result = run_experiment(
            "api", requests=2, rows_per_request=2, loader=_instant_loader
        )
        for name in (
            "in-process",
            "socket-binary",
            "socket-base64",
            "shm",
            "socket-pipelined",
            "socket-bulk",
        ):
            assert result.metadata["deviations"][name] == 0.0
        assert {row[0] for row in result.rows} == {
            "direct",
            "in-process",
            "socket-binary",
            "socket-base64",
            "shm",
            "socket-pipelined",
            "socket-bulk",
        }


class TestClientCli:
    """haan-client round trips against a live server, per traffic shape."""

    def _run(self, live_server, *extra):
        from repro.api.cli import main

        return main(["--connect", live_server.address, "--model", "tiny", *extra])

    def test_lockstep_pipelined_and_bulk_with_golden_check(self, live_server, capsys):
        for shape in ([], ["--depth", "4", "--pool", "2"], ["--bulk"]):
            code = self._run(
                live_server, "--requests", "6", *shape, "--golden-check"
            )
            captured = capsys.readouterr()
            assert code == 0, captured.err
            assert "golden check: 6 response(s) bit-identical" in captured.out

    def test_spec_and_telemetry_modes(self, live_server, capsys):
        assert self._run(live_server, "--spec") == 0
        spec = json.loads(capsys.readouterr().out)
        assert spec["hidden_size"] == HIDDEN
        assert self._run(live_server, "--telemetry") == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "wire" in snapshot["telemetry"]

    def test_input_payload_file(self, live_server, tmp_path, capsys):
        payload_file = tmp_path / "payload.json"
        payload_file.write_text(json.dumps(np.ones((2, HIDDEN)).tolist()))
        assert self._run(live_server, "--input", str(payload_file)) == 0
        assert "2 row(s) normalized" in capsys.readouterr().out

    def test_unknown_backend_exits_nonzero(self, live_server, capsys):
        assert self._run(live_server, "--backend", "abacus") == 1
        assert "unknown_backend" in capsys.readouterr().err

    def test_bad_arguments_rejected(self, live_server):
        from repro.api.cli import main

        with pytest.raises(SystemExit):
            main(["--connect", "no-port-here"])
        with pytest.raises(SystemExit):
            main(["--connect", live_server.address, "--depth", "0"])


class TestServerLifecycle:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:8471") == ("127.0.0.1", 8471)
        assert parse_address(":9000") == ("0.0.0.0", 9000)
        for bad in ("8471", "host:", "host:abc"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_close_is_idempotent_and_unblocks_port(self, registry):
        svc = NormalizationService(registry=registry)
        server = NormServer(svc).start()
        port = server.port
        server.close()
        server.close()
        svc.close()
        # the port is immediately rebindable (shutdown woke the accept loop)
        svc2 = NormalizationService(registry=registry)
        deadline = time.monotonic() + 5.0
        while True:
            try:
                server2 = NormServer(svc2, port=port)
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
        server2.close()
        svc2.close()

    def test_requests_served_counter(self, live_server, rng):
        before = live_server.requests_served
        with NormClient.connect(live_server.host, live_server.port) as client:
            client.ping()
            client.normalize(_rows(rng), "tiny")
        # +3: the connect-time hello handshake is itself a served request.
        # Workers increment the counter *after* sending the response, so
        # the last bump can land marginally after the client returns.
        deadline = time.monotonic() + 5.0
        while live_server.requests_served < before + 3:
            assert time.monotonic() < deadline, live_server.requests_served
            time.sleep(0.01)
        assert live_server.requests_served == before + 3
