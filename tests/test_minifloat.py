"""Tests for the FP8 / bfloat16 minifloat codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.minifloat import BFLOAT16, E4M3, E5M2, MinifloatFormat, minifloat_by_name


class TestFormatParameters:
    def test_e4m3_parameters(self):
        assert E4M3.total_bits == 8
        assert E4M3.bias == 7
        assert E4M3.max_finite == pytest.approx(448.0)
        assert E4M3.min_normal == pytest.approx(2.0**-6)

    def test_e5m2_parameters(self):
        assert E5M2.total_bits == 8
        assert E5M2.bias == 15
        assert E5M2.max_finite == pytest.approx(57344.0)

    def test_bfloat16_parameters(self):
        assert BFLOAT16.total_bits == 16
        assert BFLOAT16.bias == 127
        assert BFLOAT16.epsilon == pytest.approx(2.0**-7)

    def test_num_codes(self):
        assert E4M3.num_codes == 256
        assert BFLOAT16.num_codes == 65536

    def test_lookup_by_name(self):
        assert minifloat_by_name("E4M3") is E4M3
        assert minifloat_by_name("fp8_e5m2") is E5M2
        assert minifloat_by_name("bf16") is BFLOAT16

    def test_lookup_unknown_name(self):
        with pytest.raises(ValueError):
            minifloat_by_name("fp7")

    def test_invalid_format_rejected(self):
        with pytest.raises(ValueError):
            MinifloatFormat(name="bad", exponent_bits=1, mantissa_bits=3)
        with pytest.raises(ValueError):
            MinifloatFormat(name="bad", exponent_bits=4, mantissa_bits=0)


class TestEncodeDecode:
    @pytest.mark.parametrize("fmt", [E4M3, E5M2, BFLOAT16], ids=lambda f: f.name)
    def test_exact_values_round_trip(self, fmt):
        for value in (0.0, 1.0, -1.0, 2.0, 0.5, -0.25, fmt.min_normal, fmt.max_finite):
            assert fmt.round_trip(value) == pytest.approx(value)

    @pytest.mark.parametrize("fmt", [E4M3, E5M2, BFLOAT16], ids=lambda f: f.name)
    def test_all_codes_round_trip(self, fmt):
        """Every finite representable value must encode back to its own code."""
        if fmt.num_codes > 4096:
            pytest.skip("exhaustive sweep only for 8-bit formats")
        for code in range(fmt.num_codes):
            value = fmt.decode_code(code)
            if not np.isfinite(value):
                continue
            recoded = int(fmt.encode(value))
            assert fmt.decode_code(recoded) == pytest.approx(value), hex(code)

    def test_overflow_saturates_to_max_finite(self):
        assert float(E4M3.decode(E4M3.encode(1e6))) == pytest.approx(E4M3.max_finite)
        assert float(E4M3.decode(E4M3.encode(-1e6))) == pytest.approx(-E4M3.max_finite)

    def test_e5m2_infinity_encodes_to_infinity(self):
        assert np.isinf(float(E5M2.decode(E5M2.encode(np.inf))))

    def test_nan_round_trips_as_nan(self):
        for fmt in (E4M3, E5M2):
            assert np.isnan(float(fmt.decode(fmt.encode(np.nan))))

    def test_subnormals_represented(self):
        tiny = E4M3.min_subnormal
        assert float(E4M3.round_trip(tiny)) == pytest.approx(tiny)
        assert float(E4M3.round_trip(tiny / 4)) in (0.0, pytest.approx(tiny))

    def test_negative_zero_sign(self):
        code = int(E5M2.encode(-0.0))
        assert code >> 7 == 1
        assert float(E5M2.decode(code)) == 0.0

    def test_rounding_to_nearest(self):
        # With 3 mantissa bits the spacing around 1.0 is 1/8; 1.06 rounds to
        # 1.0 and 1.07 rounds to 1.125.
        assert float(E4M3.round_trip(1.06)) == pytest.approx(1.0)
        assert float(E4M3.round_trip(1.07)) == pytest.approx(1.125)

    def test_array_shape_preserved(self):
        values = np.linspace(-3, 3, 12).reshape(3, 4)
        assert E4M3.round_trip(values).shape == (3, 4)

    def test_all_values_monotone_in_positive_codes(self):
        values = E4M3.all_values()
        positives = [v for c, v in enumerate(values) if c < 0x7E and np.isfinite(v)]
        assert all(a < b for a, b in zip(positives, positives[1:]))


class TestMinifloatProperties:
    @given(value=st.floats(min_value=-400.0, max_value=400.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_e4m3_error_bounded_by_half_spacing(self, value):
        stored = float(E4M3.round_trip(value))
        if value == 0.0:
            assert stored == 0.0
            return
        # The representable spacing near |value| is at most eps * 2^(exp+1).
        exponent = max(np.floor(np.log2(abs(value))), 1 - E4M3.bias)
        spacing = E4M3.epsilon * 2.0 ** (exponent + 1)
        assert abs(stored - value) <= spacing

    @given(value=st.floats(min_value=-5e4, max_value=5e4, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_round_trip_idempotent(self, value):
        for fmt in (E4M3, E5M2, BFLOAT16):
            once = float(fmt.round_trip(value))
            twice = float(fmt.round_trip(once))
            assert twice == pytest.approx(once, nan_ok=True)

    @given(
        values=st.lists(
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=1, max_size=32
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_quantization_error_matches_round_trip(self, values):
        arr = np.asarray(values)
        errors = E5M2.quantization_error(arr)
        direct = np.abs(E5M2.round_trip(arr) - arr)
        np.testing.assert_allclose(errors, direct)

    @given(value=st.floats(min_value=0.001, max_value=400.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_sign_symmetry(self, value):
        positive = float(E4M3.round_trip(value))
        negative = float(E4M3.round_trip(-value))
        assert negative == pytest.approx(-positive)
