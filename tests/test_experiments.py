"""Tests of the experiment registry and the CLI (reduced-scale runs)."""

import pytest

from repro.eval.cli import build_parser, main
from repro.eval.experiments import (
    ExperimentResult,
    available_experiments,
    run_experiment,
    run_fig1b,
    run_fig2,
    run_fig8a,
    run_fig8b,
    run_fig9,
    run_invsqrt_ablation,
    run_pipeline_balance_ablation,
    run_table1,
    run_table3,
)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = available_experiments()
        for required in ("fig1b", "fig2", "table1", "table2", "table3", "fig8a", "fig8b", "fig9", "end_to_end"):
            assert required in ids

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_result_formatting(self):
        result = ExperimentResult(experiment_id="x", title="demo", headers=["a"], rows=[[1]])
        assert "[x] demo" in result.formatted()
        assert result.row_dict()[1] == [1]


class TestAnalyticalExperiments:
    def test_fig1b_shape(self):
        result = run_fig1b()
        assert len(result.rows) == 4
        before, after = result.metadata["gpt2-117m_norm_share"]
        assert after > before

    def test_fig2_on_tiny_analogue(self):
        result = run_fig2(model_name="tiny", num_documents=4, max_seq_len=16)
        assert result.metadata["num_layers"] == 9
        assert result.metadata["tail_correlation"] < 0
        assert result.metadata["overall_decay"] < 0

    def test_table3_rows(self):
        result = run_table3()
        assert len(result.rows) == 6
        formats = {row[0] for row in result.rows}
        assert formats == {"FP32", "FP16", "INT8"}

    def test_fig8a_power_comparison(self):
        result = run_fig8a()
        powers = result.metadata["powers"]
        assert powers["HAAN-v1"] < powers["DFX"]
        assert result.metadata["dfx_reduction"] > 0.6

    def test_fig9_ratios(self):
        result = run_fig9(seq_lens=(128, 256))
        ratios = result.metadata["ratios"]
        assert ratios["DFX"][128] > 9.0
        assert ratios["GPU"][128] > 8.0
        assert ratios["SOLE"][128] < 2.0

    def test_fig8b_ratios(self):
        result = run_fig8b(seq_lens=(128,))
        ratios = result.metadata["ratios"]
        assert ratios["MHAA"][128] > 2.0

    def test_end_to_end(self):
        result = run_experiment("end_to_end", seq_lens=(128,))
        assert result.metadata["average"] > 1.0

    def test_invsqrt_ablation_monotone(self):
        result = run_invsqrt_ablation(newton_iterations=(0, 1, 2))
        errors = [result.metadata["errors"][n][0] for n in (0, 1, 2)]
        assert errors == sorted(errors, reverse=True)

    def test_pipeline_ablation(self):
        result = run_pipeline_balance_ablation(widths=((128, 128), (32, 128)))
        details = result.metadata["details"]
        assert details[(32, 128)]["latency_us"] > details[(128, 128)]["latency_us"]


class TestAccuracyExperimentsSmall:
    def test_table1_reduced_scale_on_tiny(self):
        result = run_table1(
            models=("tiny",),
            num_items=5,
            max_seq_len=28,
            task_names=("piqa",),
            calibration_texts_count=4,
        )
        assert len(result.rows) == 2
        assert result.metadata["max_degradation"] <= 0.5


class TestCli:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out

    def test_run_single_experiment(self, capsys):
        assert main(["fig1b"]) == 0
        assert "fig1b" in capsys.readouterr().out

    def test_unknown_experiment_exit_code(self):
        assert main(["not-an-experiment"]) == 2

    def test_parser_flags(self):
        args = build_parser().parse_args(["table1", "--items", "7", "--seq-lens", "128,256"])
        assert args.items == 7
        assert args.seq_lens == "128,256"
