"""Tests of the reference LayerNorm / RMSNorm layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.config import NormKind
from repro.llm.hooks import ActivationContext
from repro.llm.normalization import LayerNorm, RMSNorm, make_norm


class TestLayerNorm:
    def test_output_has_zero_mean_unit_variance(self, rng):
        norm = LayerNorm(hidden_size=64)
        x = rng.normal(3.0, 5.0, size=(10, 64))
        out = norm(x)
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-2)

    def test_affine_transform_applied(self, rng):
        gamma = np.full(16, 2.0)
        beta = np.full(16, 1.0)
        norm = LayerNorm(hidden_size=16, gamma=gamma, beta=beta)
        x = rng.normal(size=(4, 16))
        plain = LayerNorm(hidden_size=16)(x)
        np.testing.assert_allclose(norm(x), plain * 2.0 + 1.0, atol=1e-9)

    def test_matches_manual_formula(self, rng):
        norm = LayerNorm(hidden_size=8)
        x = rng.normal(size=(3, 8))
        expected = (x - x.mean(axis=1, keepdims=True)) / np.sqrt(x.var(axis=1, keepdims=True) + norm.eps)
        np.testing.assert_allclose(norm(x), expected, atol=1e-9)

    def test_preserves_input_shape_3d(self, rng):
        norm = LayerNorm(hidden_size=8)
        x = rng.normal(size=(2, 5, 8))
        assert norm(x).shape == (2, 5, 8)

    def test_wrong_last_dim_rejected(self, rng):
        norm = LayerNorm(hidden_size=8)
        with pytest.raises(ValueError):
            norm(rng.normal(size=(3, 9)))

    def test_wrong_affine_shape_rejected(self):
        with pytest.raises(ValueError):
            LayerNorm(hidden_size=8, gamma=np.ones(4))

    def test_records_statistics_in_context(self, rng):
        norm = LayerNorm(hidden_size=8, layer_index=3, name="block1.mlp_norm")
        context = ActivationContext(record_statistics=True)
        norm(rng.normal(size=(2, 4, 8)), context)
        assert len(context.records) == 1
        record = context.records[0]
        assert record.layer_index == 3
        assert record.isd.shape == (8,)
        assert context.isd_of(3) is not None

    def test_invariant_to_input_shift(self, rng):
        norm = LayerNorm(hidden_size=32)
        x = rng.normal(size=(5, 32))
        np.testing.assert_allclose(norm(x), norm(x + 100.0), atol=1e-6)

    @given(st.floats(min_value=0.5, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_scale_invariance_of_normalized_output(self, scale):
        # Up to the epsilon term, LayerNorm output is invariant to scaling.
        rng = np.random.default_rng(0)
        norm = LayerNorm(hidden_size=32)
        x = rng.normal(size=(3, 32))
        np.testing.assert_allclose(norm(x), norm(x * scale), atol=5e-3)


class TestRMSNorm:
    def test_output_rms_is_one(self, rng):
        norm = RMSNorm(hidden_size=64)
        x = rng.normal(2.0, 4.0, size=(6, 64))
        out = norm(x)
        rms = np.sqrt(np.mean(out**2, axis=1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-2)

    def test_does_not_recenter(self, rng):
        norm = RMSNorm(hidden_size=32)
        x = np.abs(rng.normal(size=(4, 32))) + 1.0
        out = norm(x)
        assert np.all(out.mean(axis=1) > 0.5)

    def test_matches_manual_formula(self, rng):
        norm = RMSNorm(hidden_size=8)
        x = rng.normal(size=(3, 8))
        expected = x / np.sqrt(np.mean(x**2, axis=1, keepdims=True) + norm.eps)
        np.testing.assert_allclose(norm(x), expected, atol=1e-9)

    def test_statistics_mean_is_zero(self, rng):
        norm = RMSNorm(hidden_size=8)
        mean, isd = norm.compute_statistics(rng.normal(size=(5, 8)))
        np.testing.assert_array_equal(mean, np.zeros(5))
        assert np.all(isd > 0)


class TestFactory:
    def test_make_norm_dispatch(self):
        assert isinstance(make_norm(NormKind.LAYERNORM, 8, 0, "a"), LayerNorm)
        assert isinstance(make_norm(NormKind.RMSNORM, 8, 0, "a"), RMSNorm)

    def test_factory_sets_metadata(self):
        norm = make_norm(NormKind.LAYERNORM, 8, 5, "block2.attn_norm")
        assert norm.layer_index == 5
        assert norm.name == "block2.attn_norm"
