"""Tests of the log-linear ISD predictor (equation (3))."""

import numpy as np
import pytest

from repro.core.predictor import IsdPredictor
from repro.core.skipping import SkipSearchResult
from repro.llm.hooks import ActivationContext


@pytest.fixture()
def predictor():
    return IsdPredictor(anchor_layer=10, last_layer=16, decay=-0.1, anchor_log_isd=np.log(0.5))


class TestPredictor:
    def test_covers_only_the_skip_interval(self, predictor):
        assert not predictor.covers(10)  # the anchor itself is computed
        assert predictor.covers(11)
        assert predictor.covers(16)
        assert not predictor.covers(17)

    def test_prediction_follows_log_linear_law(self, predictor):
        anchor = np.array([0.5, 1.0, 2.0])
        predicted = predictor.predict_from_anchor(anchor, 12)
        np.testing.assert_allclose(predicted, anchor * np.exp(-0.1 * 2))

    def test_prediction_outside_range_rejected(self, predictor):
        with pytest.raises(ValueError):
            predictor.predict_from_anchor(np.ones(2), 20)
        with pytest.raises(ValueError):
            predictor.predict_scalar(9)

    def test_scalar_fallback_uses_calibration_anchor(self, predictor):
        value = predictor.predict_scalar(11)
        assert value == pytest.approx(0.5 * np.exp(-0.1))

    def test_context_prediction_uses_stored_anchor(self, predictor):
        context = ActivationContext()
        context.store_isd(10, np.array([2.0, 4.0]))
        predicted = predictor.predict_from_context(context, 12, num_rows=2)
        np.testing.assert_allclose(predicted, np.array([2.0, 4.0]) * np.exp(-0.2))

    def test_context_prediction_falls_back_without_anchor(self, predictor):
        predicted = predictor.predict_from_context(None, 11, num_rows=3)
        assert predicted.shape == (3,)
        np.testing.assert_allclose(predicted, predictor.predict_scalar(11))

    def test_context_prediction_falls_back_on_row_mismatch(self, predictor):
        context = ActivationContext()
        context.store_isd(10, np.array([2.0]))
        predicted = predictor.predict_from_context(context, 11, num_rows=3)
        assert predicted.shape == (3,)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            IsdPredictor(anchor_layer=5, last_layer=3, decay=0.0, anchor_log_isd=0.0)

    def test_from_search_result(self):
        result = SkipSearchResult(skip_range=(4, 9), correlation=-0.99, decay=-0.2, anchor_log_isd=1.0)
        predictor = IsdPredictor.from_search_result(result)
        assert predictor.skip_range == (4, 9)
        assert predictor.decay == -0.2
        assert predictor.covers(5)
