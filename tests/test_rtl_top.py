"""Top-level RTL row processor checked against the functional accelerator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.accelerator import HaanAccelerator
from repro.hardware.configs import AcceleratorConfig
from repro.hardware.rtl import HaanRowProcessorRtl
from repro.hdl import Simulator
from repro.numerics.quantization import DataFormat


def make_processor(stats_width=8, norm_width=8, compute_mean=True):
    dut = HaanRowProcessorRtl(
        stats_width=stats_width, norm_width=norm_width, compute_mean=compute_mean
    )
    return dut, Simulator(dut)


def process_row(dut, sim, row, gamma, beta, **kwargs):
    dut.load_row(row, gamma, beta, **kwargs)
    sim.run_until(lambda s: dut.finished, max_cycles=5000)
    return dut.result


def reference_layernorm(row, gamma, beta, eps=1e-5):
    mean = row.mean()
    isd = 1.0 / np.sqrt(row.var() + eps)
    return gamma * (row - mean) * isd + beta


def reference_rmsnorm(row, gamma, beta, eps=1e-5):
    rms = np.sqrt(np.mean(row * row) + eps)
    return gamma * row / rms + beta


class TestHaanRowProcessorLayerNorm:
    def test_matches_reference_layernorm(self, rng):
        row = rng.normal(0.0, 1.0, size=64)
        gamma = rng.normal(1.0, 0.05, size=64)
        beta = rng.normal(0.0, 0.05, size=64)
        dut, sim = make_processor()
        result = process_row(dut, sim, row, gamma, beta)
        np.testing.assert_allclose(result.output, reference_layernorm(row, gamma, beta), atol=2e-2)

    def test_matches_functional_accelerator(self, rng):
        row = rng.normal(0.0, 1.5, size=48)
        gamma = np.ones(48)
        beta = np.zeros(48)
        config = AcceleratorConfig(
            name="rtl-check", stats_width=8, norm_width=8, data_format=DataFormat.FP32
        )
        accel = HaanAccelerator(config)
        golden = accel.normalize_rows(row[None, :], gamma, beta)
        dut, sim = make_processor()
        result = process_row(dut, sim, row, gamma, beta)
        np.testing.assert_allclose(result.output, golden[0], atol=2e-2)

    def test_reports_row_statistics(self, rng):
        row = rng.normal(2.0, 0.7, size=32)
        dut, sim = make_processor()
        result = process_row(dut, sim, row, np.ones(32), np.zeros(32))
        assert result.mean == pytest.approx(float(row.mean()), abs=5e-3)
        assert result.isd == pytest.approx(1.0 / np.sqrt(row.var() + 1e-5), rel=1e-2)
        assert not result.skipped

    def test_subsampling_uses_prefix_statistics(self, rng):
        row = np.concatenate([rng.normal(0.0, 1.0, size=16), rng.normal(0.0, 10.0, size=48)])
        dut, sim = make_processor()
        result = process_row(dut, sim, row, np.ones(64), np.zeros(64), subsample_length=16)
        prefix = row[:16]
        assert result.mean == pytest.approx(float(prefix.mean()), abs=5e-3)
        assert result.isd == pytest.approx(1.0 / np.sqrt(prefix.var() + 1e-5), rel=1e-2)

    def test_predicted_isd_bypasses_inverter(self, rng):
        row = rng.normal(0.0, 1.0, size=32)
        predicted = 0.9 / np.sqrt(row.var())
        dut, sim = make_processor()
        result = process_row(
            dut, sim, row, np.ones(32), np.zeros(32), predicted_isd=float(predicted)
        )
        assert result.skipped
        assert result.isd == pytest.approx(predicted, rel=1e-3)
        expected = (row - row.mean()) * predicted
        np.testing.assert_allclose(result.output, expected, atol=2e-2)

    def test_skipped_row_is_faster(self, rng):
        row = rng.normal(0.0, 1.0, size=64)
        dut, sim = make_processor()
        computed = process_row(dut, sim, row, np.ones(64), np.zeros(64))
        skipped = process_row(
            dut, sim, row, np.ones(64), np.zeros(64), predicted_isd=1.0
        )
        assert skipped.cycles < computed.cycles

    def test_subsampled_row_is_faster(self, rng):
        row = rng.normal(0.0, 1.0, size=128)
        dut, sim = make_processor()
        full = process_row(dut, sim, row, np.ones(128), np.zeros(128))
        sub = process_row(dut, sim, row, np.ones(128), np.zeros(128), subsample_length=32)
        assert sub.cycles < full.cycles

    def test_back_to_back_rows(self, rng):
        dut, sim = make_processor()
        for _ in range(3):
            row = rng.normal(0.0, 1.0, size=32)
            result = process_row(dut, sim, row, np.ones(32), np.zeros(32))
            np.testing.assert_allclose(
                result.output, reference_layernorm(row, np.ones(32), np.zeros(32)), atol=2e-2
            )

    def test_cycle_count_tracks_row_length(self, rng):
        dut, sim = make_processor()
        short = process_row(dut, sim, rng.normal(size=32), np.ones(32), np.zeros(32))
        dut2, sim2 = make_processor()
        long = process_row(dut2, sim2, rng.normal(size=128), np.ones(128), np.zeros(128))
        assert long.cycles > short.cycles

    def test_cycle_count_close_to_analytical_beats(self, rng):
        stats_width, norm_width = 8, 8
        length = 64
        dut, sim = make_processor(stats_width=stats_width, norm_width=norm_width)
        result = process_row(dut, sim, rng.normal(size=length), np.ones(length), np.zeros(length))
        stats_beats = int(np.ceil(length / stats_width))
        norm_beats = int(np.ceil(length / norm_width))
        lower_bound = stats_beats + norm_beats
        upper_bound = stats_beats + norm_beats + 25
        assert lower_bound <= result.cycles <= upper_bound

    def test_result_unavailable_before_finish(self, rng):
        dut, _ = make_processor()
        dut.load_row(rng.normal(size=16), np.ones(16), np.zeros(16))
        with pytest.raises(RuntimeError):
            _ = dut.result

    def test_mismatched_affine_length_rejected(self, rng):
        dut, _ = make_processor()
        with pytest.raises(ValueError):
            dut.load_row(rng.normal(size=16), np.ones(8), np.zeros(16))


class TestHaanRowProcessorRmsNorm:
    def test_matches_reference_rmsnorm(self, rng):
        row = rng.normal(0.0, 1.2, size=64)
        gamma = rng.normal(1.0, 0.05, size=64)
        beta = np.zeros(64)
        dut, sim = make_processor(compute_mean=False)
        result = process_row(dut, sim, row, gamma, beta)
        np.testing.assert_allclose(result.output, reference_rmsnorm(row, gamma, beta), atol=2e-2)

    def test_rms_skip_bypasses_statistics_entirely(self, rng):
        row = rng.normal(0.0, 1.0, size=64)
        isd = float(1.0 / np.sqrt(np.mean(row * row)))
        dut, sim = make_processor(compute_mean=False)
        skipped = process_row(dut, sim, row, np.ones(64), np.zeros(64), predicted_isd=isd)
        computed = process_row(dut, sim, row, np.ones(64), np.zeros(64))
        # With prediction the statistics pass disappears completely, so the
        # skipped row needs far fewer cycles than the computed one.
        assert skipped.cycles < computed.cycles - 5
        np.testing.assert_allclose(skipped.output, computed.output, atol=3e-2)

    def test_rms_mean_is_zero(self, rng):
        row = rng.normal(3.0, 0.5, size=32)
        dut, sim = make_processor(compute_mean=False)
        result = process_row(dut, sim, row, np.ones(32), np.zeros(32))
        assert result.mean == 0.0


class TestRowProcessorWaveform:
    def test_vcd_dump_of_one_row(self, rng, tmp_path):
        from repro.hdl import VcdWriter

        dut = HaanRowProcessorRtl(stats_width=4, norm_width=4)
        vcd_path = tmp_path / "haan_row.vcd"
        writer = VcdWriter(vcd_path)
        writer.declare_signals(dut.hierarchical_signals())
        sim = Simulator(dut, vcd=writer)
        dut.load_row(rng.normal(size=16), np.ones(16), np.zeros(16))
        sim.run_until(lambda s: dut.finished, max_cycles=2000)
        sim.finalize()
        text = vcd_path.read_text()
        assert "$enddefinitions" in text
        assert "haan_row" in text
        assert text.count("#") > 10
