"""Tests for the energy, bandwidth/roofline and timing models."""

from __future__ import annotations

import pytest

from repro.hardware.bandwidth import (
    U280_DDR4,
    U280_HBM,
    MemorySystem,
    datapath_throughput_ops,
    roofline_analysis,
    workload_arithmetic_ops,
    workload_traffic,
)
from repro.hardware.configs import HAAN_V1, HAAN_V2, AcceleratorConfig
from repro.hardware.energy import EnergyModel, operation_energy_pj
from repro.hardware.timing import TimingModel, adder_delay_ns, multiplier_delay_ns
from repro.hardware.workload import NormalizationWorkload
from repro.llm.config import NormKind
from repro.numerics.quantization import DataFormat


def make_workload(**overrides) -> NormalizationWorkload:
    defaults = dict(
        model_name="gpt2-1.5b",
        embedding_dim=1600,
        num_norm_layers=98,
        seq_len=256,
        batch_size=1,
        norm_kind=NormKind.LAYERNORM,
    )
    defaults.update(overrides)
    return NormalizationWorkload(**defaults)


class TestEnergyModel:
    def test_operation_energy_scales_with_format(self):
        assert operation_energy_pj("multiply", DataFormat.FP32) > operation_energy_pj(
            "multiply", DataFormat.FP16
        )
        assert operation_energy_pj("multiply", DataFormat.FP16) > operation_energy_pj(
            "multiply", DataFormat.INT8
        )

    def test_unknown_operation_rejected(self):
        with pytest.raises(KeyError):
            operation_energy_pj("divide", DataFormat.FP16)

    def test_estimate_breakdown_units(self):
        model = EnergyModel()
        report = model.estimate(HAAN_V1, make_workload(), latency_seconds=1e-3)
        assert set(report.per_unit_nj) == {
            "statistics",
            "invsqrt",
            "predictor",
            "normalization",
            "memory",
        }
        assert report.total_nj > 0
        assert 0.99 <= sum(report.share(u) for u in report.per_unit_nj) <= 1.01

    def test_skipping_reduces_energy(self):
        model = EnergyModel()
        base = model.estimate(HAAN_V1, make_workload())
        skipped = model.estimate(HAAN_V1, make_workload(num_skipped_layers=10))
        assert skipped.total_nj < base.total_nj

    def test_subsampling_reduces_statistics_energy(self):
        model = EnergyModel()
        base = model.estimate(HAAN_V1, make_workload())
        sub = model.estimate(HAAN_V1, make_workload(subsample_length=400))
        assert sub.per_unit_nj["statistics"] < base.per_unit_nj["statistics"]
        assert sub.per_unit_nj["normalization"] == pytest.approx(
            base.per_unit_nj["normalization"]
        )

    def test_rmsnorm_cheaper_than_layernorm(self):
        model = EnergyModel()
        layer = model.estimate(HAAN_V1, make_workload())
        rms = model.estimate(HAAN_V1, make_workload(norm_kind=NormKind.RMSNORM))
        assert rms.total_nj < layer.total_nj

    def test_savings_from_skipping_fraction(self):
        model = EnergyModel()
        saving = model.savings_from_skipping(
            HAAN_V1, make_workload(num_skipped_layers=10, subsample_length=800)
        )
        assert 0.0 < saving < 1.0

    def test_energy_delay_product_and_average_power(self):
        model = EnergyModel()
        report = model.estimate(HAAN_V1, make_workload(), latency_seconds=2e-3)
        assert report.energy_delay_product == pytest.approx(report.total_nj * 1e-9 * 2e-3)
        assert report.average_power_w == pytest.approx(report.total_nj * 1e-9 / 2e-3)

    def test_custom_base_energy_override(self):
        default = EnergyModel()
        doubled = EnergyModel(base_energies_pj={"multiply": 2.2})
        workload = make_workload()
        assert doubled.estimate(HAAN_V1, workload).total_nj > default.estimate(
            HAAN_V1, workload
        ).total_nj

    def test_int8_cheaper_than_fp32(self):
        model = EnergyModel()
        workload = make_workload()
        fp32 = HAAN_V1.with_overrides(name="fp32", data_format=DataFormat.FP32)
        int8 = HAAN_V1.with_overrides(name="int8", data_format=DataFormat.INT8)
        assert model.estimate(int8, workload).total_nj < model.estimate(fp32, workload).total_nj


class TestBandwidthModel:
    def test_memory_system_validation(self):
        with pytest.raises(ValueError):
            MemorySystem(name="bad", bandwidth_gbps=0.0)

    def test_traffic_scales_with_sequence_length(self):
        short_r, short_w = workload_traffic(HAAN_V1, make_workload(seq_len=128))
        long_r, long_w = workload_traffic(HAAN_V1, make_workload(seq_len=512))
        assert long_r == pytest.approx(4 * short_r)
        assert long_w == pytest.approx(4 * short_w)

    def test_subsampling_reduces_reads_not_writes(self):
        base_r, base_w = workload_traffic(HAAN_V1, make_workload())
        sub_r, sub_w = workload_traffic(HAAN_V1, make_workload(subsample_length=400))
        assert sub_r < base_r
        assert sub_w == pytest.approx(base_w)

    def test_int8_moves_fewer_bytes(self):
        fp32 = HAAN_V1.with_overrides(name="fp32", data_format=DataFormat.FP32)
        int8 = HAAN_V1.with_overrides(name="int8", data_format=DataFormat.INT8)
        workload = make_workload()
        assert sum(workload_traffic(int8, workload)) < sum(workload_traffic(fp32, workload))

    def test_normalization_is_memory_bound_on_ddr(self):
        report = roofline_analysis(HAAN_V1, make_workload(), memory=U280_DDR4)
        assert report.memory_bound

    def test_hbm_relieves_the_bottleneck(self):
        ddr = roofline_analysis(HAAN_V1, make_workload(), memory=U280_DDR4)
        hbm = roofline_analysis(HAAN_V1, make_workload(), memory=U280_HBM)
        assert hbm.memory_bound_throughput_ops > ddr.memory_bound_throughput_ops
        assert hbm.attainable_throughput_ops >= ddr.attainable_throughput_ops

    def test_arithmetic_intensity_low(self):
        report = roofline_analysis(HAAN_V1, make_workload())
        # Normalization performs only a few ops per byte moved.
        assert report.arithmetic_intensity < 10

    def test_wider_datapath_raises_compute_roof(self):
        assert datapath_throughput_ops(HAAN_V2) != datapath_throughput_ops(HAAN_V1)
        wide = HAAN_V1.with_overrides(name="wide", norm_width=512)
        assert datapath_throughput_ops(wide) > datapath_throughput_ops(HAAN_V1)

    def test_arithmetic_ops_positive_and_scale_with_layers(self):
        small = workload_arithmetic_ops(make_workload(num_norm_layers=49))
        large = workload_arithmetic_ops(make_workload(num_norm_layers=98))
        assert 0 < small < large

    def test_bandwidth_utilization_definition(self):
        report = roofline_analysis(HAAN_V1, make_workload(), memory=U280_DDR4)
        assert report.bandwidth_utilization == pytest.approx(
            report.compute_throughput_ops / report.memory_bound_throughput_ops
        )


class TestTimingModel:
    def test_component_delays_scale_with_width(self):
        assert adder_delay_ns(32) > adder_delay_ns(16)
        assert multiplier_delay_ns(32) > multiplier_delay_ns(16)

    def test_all_paper_configs_close_timing_at_100mhz(self):
        model = TimingModel()
        for config in (HAAN_V1, HAAN_V2):
            report = model.estimate(config)
            assert report.meets(100.0), config.name
            assert report.slack_ns_at_100mhz > 0

    def test_int8_has_more_frequency_headroom_than_fp32(self):
        model = TimingModel()
        fp32 = AcceleratorConfig(name="fp32", stats_width=128, norm_width=128, data_format=DataFormat.FP32)
        int8 = AcceleratorConfig(name="int8", stats_width=128, norm_width=128, data_format=DataFormat.INT8)
        assert model.frequency_headroom(int8) > model.frequency_headroom(fp32)

    def test_critical_unit_is_reported(self):
        report = TimingModel().estimate(HAAN_V1)
        assert report.critical_unit in report.unit_paths_ns
        assert report.unit_paths_ns[report.critical_unit] == report.critical_path_ns

    def test_max_frequency_consistent_with_path(self):
        report = TimingModel().estimate(HAAN_V1)
        assert report.max_frequency_mhz == pytest.approx(1e3 / report.critical_path_ns)

    def test_absurd_clock_fails_timing(self):
        report = TimingModel().estimate(HAAN_V1)
        assert not report.meets(2000.0)
