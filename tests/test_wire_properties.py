"""Property-based round-trip and robustness suite of the wire protocol.

The contracts under test:

* **tensor payloads** survive ``to_wire -> json -> from_wire -> to_array``
  for every supported dtype, both encodings, empty shapes and NaN/inf
  payloads (base64 bit-exactly, list value-exactly);
* **envelopes** survive the same loop regardless of JSON field order;
* **framing** is chunking-invariant (any split of the byte stream decodes
  to the same envelopes, in order) and fails *closed*: truncated or
  corrupted frames raise an :class:`ApiError` member -- they never hang,
  never crash with a non-taxonomy exception, and never resynchronize onto
  garbage;
* **version negotiation** picks ``min(client_max, server_max)`` across the
  whole (client range x server range) matrix, and disjoint ranges fail
  with a ``schema_version`` error naming both ranges.

Everything is seeded and deterministic: hypothesis runs derandomized and
the direct fuzz loops use fixed-seed generators.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.envelopes import (
    MIN_SCHEMA_VERSION,
    SCHEMA_VERSION,
    ApiError,
    BadSchemaError,
    ExecuteBulkRequest,
    ExecuteGroup,
    HelloRequest,
    NormalizeBulkRequest,
    NormalizeRequest,
    PayloadTooLargeError,
    SchemaVersionError,
    StreamChunkRequest,
    TensorPayload,
    TransportError,
    downgrade_binary_tensors,
    has_binary_tensors,
    negotiate_version,
    parse_hello_response,
    parse_request,
)
from repro.api.framing import (
    BINARY_MAGIC,
    FRAME_HEADER,
    FrameDecoder,
    encode_frame,
    frame_kind,
)
from repro.api.handler import ApiHandler
from repro.serving.registry import CalibrationRegistry
from repro.serving.service import NormalizationService

DTYPES = ("float64", "float32", "float16", "int64", "int32", "int8")


def _unreachable_loader(model_name, dataset):  # pragma: no cover
    raise AssertionError("protocol-level tests must not resolve models")


@pytest.fixture()
def handler():
    """A handler whose service is never asked to execute anything."""
    registry = CalibrationRegistry(loader=_unreachable_loader)
    with NormalizationService(registry=registry, threaded=False) as service:
        yield ApiHandler(service)


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------


@st.composite
def tensor_arrays(draw) -> np.ndarray:
    """Arrays over every supported dtype/shape, NaN/inf/empty included."""
    dtype = np.dtype(draw(st.sampled_from(DTYPES)))
    ndim = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(0, 4)) for _ in range(ndim))
    if dtype.kind == "f":
        elements = st.floats(
            allow_nan=True,
            allow_infinity=True,
            allow_subnormal=True,
            width=min(dtype.itemsize * 8, 64),
        )
    else:
        info = np.iinfo(dtype)
        elements = st.integers(int(info.min), int(info.max))
    flat = draw(
        st.lists(
            elements,
            min_size=int(np.prod(shape)),
            max_size=int(np.prod(shape)),
        )
    )
    return np.array(flat, dtype=dtype).reshape(shape)


def _shuffle_fields(wire: dict, rng: np.random.Generator) -> dict:
    """The same JSON object with a random key insertion order."""
    keys = list(wire)
    rng.shuffle(keys)
    return {key: wire[key] for key in keys}


def _json_loop(wire: dict) -> dict:
    return json.loads(json.dumps(wire))


# ---------------------------------------------------------------------------
# tensor payload round trips
# ---------------------------------------------------------------------------


class TestTensorPayloadProperties:
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(array=tensor_arrays())
    def test_base64_round_trip_is_bit_exact(self, array):
        wire = TensorPayload.from_array(array, "base64").to_wire()
        decoded = TensorPayload.from_wire(_json_loop(wire)).to_array()
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        # byte-level equality: NaN payloads and zero signs survive base64
        assert decoded.tobytes() == array.tobytes()

    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(array=tensor_arrays())
    def test_list_round_trip_is_value_exact(self, array):
        wire = TensorPayload.from_array(array, "list").to_wire()
        decoded = TensorPayload.from_wire(_json_loop(wire)).to_array()
        assert decoded.dtype == array.dtype
        assert decoded.shape == array.shape
        if array.dtype.kind == "f":
            assert np.array_equal(decoded, array, equal_nan=True)
            finite = np.isfinite(array)
            assert np.array_equal(np.signbit(decoded[finite]), np.signbit(array[finite]))
        else:
            assert np.array_equal(decoded, array)

    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(array=tensor_arrays(), seed=st.integers(0, 2**16))
    def test_field_order_is_irrelevant(self, array, seed):
        rng = np.random.default_rng(seed)
        wire = _shuffle_fields(TensorPayload.from_array(array).to_wire(), rng)
        decoded = TensorPayload.from_wire(_json_loop(wire)).to_array()
        assert decoded.tobytes() == array.tobytes()

    def test_corrupt_base64_data_raises_bad_schema(self):
        wire = TensorPayload.from_array(np.arange(4.0)).to_wire()
        wire["data"] = "!!not base64!!"
        with pytest.raises(BadSchemaError, match="base64"):
            TensorPayload.from_wire(wire).to_array()

    def test_corrupt_list_data_raises_bad_schema(self):
        wire = TensorPayload.from_array(np.arange(4.0), "list").to_wire()
        wire["data"] = [["ragged"], 1.0, None, 2.0]
        with pytest.raises(BadSchemaError):
            TensorPayload.from_wire(wire).to_array()


# ---------------------------------------------------------------------------
# envelope round trips under random field order
# ---------------------------------------------------------------------------


class TestEnvelopeProperties:
    def _requests(self, rng):
        tensor = TensorPayload.from_array(rng.normal(size=(2, 6)))
        tensors = tuple(
            TensorPayload.from_array(rng.normal(size=(rows, 6))) for rows in (1, 3, 2)
        )
        yield NormalizeRequest(model="m", tensor=tensor, backend="reference")
        yield NormalizeBulkRequest(model="m", tensors=tensors, accelerator="haan-v2")
        yield StreamChunkRequest(
            model="m", tensor=tensor, stream_id=7, seq=3, final=True
        )
        yield ExecuteBulkRequest(
            spec={"kind": "layernorm", "hidden_size": 6},
            groups=(
                ExecuteGroup(rows=tensor),
                ExecuteGroup(
                    rows=tensor,
                    segment_starts=TensorPayload.from_array(np.array([0, 1])),
                    anchor_isd=TensorPayload.from_array(np.array([1.0, np.nan])),
                ),
            ),
            backend="reference",
        )
        yield HelloRequest(min_schema_version=1, max_schema_version=2)

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(seed=st.integers(0, 2**16))
    def test_every_v2_request_survives_shuffled_json(self, seed):
        rng = np.random.default_rng(seed)
        for request in self._requests(rng):
            wire = _shuffle_fields(request.to_wire(), rng)
            assert parse_request(_json_loop(wire)) == request

    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(
        payload=st.dictionaries(
            st.sampled_from(
                [
                    "schema_version",
                    "op",
                    "request_id",
                    "model",
                    "tensor",
                    "tensors",
                    "ok",
                    "seq",
                    "stream_id",
                    "groups",
                    "spec",
                ]
            ),
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(-5, 5),
                st.text(max_size=8),
                st.lists(st.integers(0, 3), max_size=3),
                st.just(SCHEMA_VERSION),
                st.sampled_from(
                    ["normalize", "normalize_bulk", "stream", "execute_bulk", "hello"]
                ),
            ),
            max_size=8,
        )
    )
    def test_arbitrary_envelopes_parse_or_raise_api_error(self, payload):
        # The parser's whole failure surface is the ApiError taxonomy:
        # whatever JSON object arrives, it either decodes or raises a
        # taxonomy member -- nothing else escapes.
        try:
            parse_request(payload)
        except ApiError:
            pass

    def test_v2_ops_rejected_at_schema_version_1(self, rng):
        tensor = TensorPayload.from_array(rng.normal(size=(1, 4)))
        wire = NormalizeBulkRequest(model="m", tensors=(tensor,)).to_wire()
        wire["schema_version"] = 1
        with pytest.raises(BadSchemaError, match="schema_version >= 2"):
            parse_request(wire)
        wire = NormalizeRequest(model="m", tensor=tensor).to_wire()
        wire["schema_version"] = 1  # v1 ops still parse at version 1
        parse_request(wire)


# ---------------------------------------------------------------------------
# framing: chunking invariance, truncation, corruption
# ---------------------------------------------------------------------------


def _random_chunks(data: bytes, rng: np.random.Generator):
    cuts = sorted(
        int(c) for c in rng.integers(0, len(data) + 1, size=int(rng.integers(0, 6)))
    )
    bounds = [0] + cuts + [len(data)]
    return [data[a:b] for a, b in zip(bounds[:-1], bounds[1:])]


class TestFramingProperties:
    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(seed=st.integers(0, 2**16), count=st.integers(1, 5))
    def test_any_chunking_decodes_the_same_envelopes(self, seed, count):
        rng = np.random.default_rng(seed)
        envelopes = [
            {"schema_version": SCHEMA_VERSION, "op": "ping", "request_id": i, "pad": "x" * int(rng.integers(0, 50))}
            for i in range(count)
        ]
        stream = b"".join(encode_frame(envelope) for envelope in envelopes)
        decoder = FrameDecoder()
        decoded = []
        for chunk in _random_chunks(stream, rng):
            decoded.extend(decoder.feed(chunk))
        decoder.finish()  # ended on a frame boundary
        assert decoded == envelopes
        assert decoder.pending_bytes == 0

    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(seed=st.integers(0, 2**16))
    def test_truncated_streams_fail_closed(self, seed):
        rng = np.random.default_rng(seed)
        frame = encode_frame(
            {"schema_version": SCHEMA_VERSION, "op": "ping", "request_id": 1}
        )
        cut = int(rng.integers(1, len(frame)))  # strict prefix
        decoder = FrameDecoder()
        assert decoder.feed(frame[:cut]) == []
        with pytest.raises(TransportError, match="mid-frame"):
            decoder.finish()

    @settings(max_examples=150, deadline=None, derandomize=True)
    @given(seed=st.integers(0, 2**16), flips=st.integers(1, 8))
    def test_corrupted_frames_raise_api_error_never_escape(self, seed, flips):
        rng = np.random.default_rng(seed)
        request = NormalizeRequest(
            model="m", tensor=TensorPayload.from_array(rng.normal(size=(2, 3)))
        )
        frame = bytearray(encode_frame(request.to_wire()))
        for position in rng.integers(0, len(frame), size=flips):
            frame[int(position)] ^= int(rng.integers(1, 256))
        decoder = FrameDecoder(max_frame_bytes=1 << 20)
        try:
            envelopes = decoder.feed(bytes(frame))
            decoder.finish()
            for envelope in envelopes:
                parse_request(envelope)
        except ApiError:
            pass  # the only acceptable failure surface

    def test_oversized_announced_length_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        header = FRAME_HEADER.pack(1 << 30)
        with pytest.raises(PayloadTooLargeError) as excinfo:
            decoder.feed(header)
        # The rejection names both the offending length and the configured
        # cap, so operators can size max_frame_bytes from the message alone.
        message = str(excinfo.value)
        assert str(1 << 30) in message
        assert "max_frame_bytes cap of 64 bytes" in message

    def test_non_object_json_frame_rejected(self):
        body = json.dumps([1, 2, 3]).encode()
        frame = FRAME_HEADER.pack(len(body)) + body
        with pytest.raises(TransportError, match="JSON object"):
            FrameDecoder().feed(frame)

    def test_non_utf8_frame_rejected(self):
        body = b"\xff\xfe\x00garbage"
        frame = FRAME_HEADER.pack(len(body)) + body
        with pytest.raises(TransportError, match="not valid JSON"):
            FrameDecoder().feed(frame)

    def test_handler_answers_corrupt_envelopes_with_error_frames(self, handler):
        # The dispatch layer shares the fail-closed contract: junk dicts in,
        # exactly one error envelope out (request_id echoed when salvageable).
        rng = np.random.default_rng(5)
        for _ in range(50):
            keys = rng.choice(
                ["schema_version", "op", "request_id", "model", "tensor"],
                size=int(rng.integers(0, 5)),
                replace=False,
            )
            junk = {
                key: (None, 1, "x", [2], {"a": 1})[int(rng.integers(0, 5))]
                for key in keys
            }
            response = handler.handle(junk)
            assert response["ok"] is False
            assert response["error"]["code"] in (
                "bad_schema",
                "schema_version",
                "internal",
            )


# ---------------------------------------------------------------------------
# binary (v3) frames: round trips, downgrade, corruption, truncation
# ---------------------------------------------------------------------------


class TestBinaryFrameProperties:
    """The v3 zero-copy frame shares the JSON frame's fail-closed contract."""

    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(array=tensor_arrays(), seed=st.integers(0, 2**16))
    def test_binary_round_trip_through_chunked_frames_is_bit_exact(self, array, seed):
        # NaN/inf/empty/odd shapes all come from the shared strategy; the
        # frame is delivered in random chunks like a real TCP stream.
        rng = np.random.default_rng(seed)
        envelope = {
            "schema_version": SCHEMA_VERSION,
            "op": "normalize",
            "request_id": 7,
            "tensor": TensorPayload.from_array(array, "binary").to_wire(),
        }
        frame = encode_frame(envelope)
        assert frame[4:8] == BINARY_MAGIC
        decoder = FrameDecoder()
        decoded = []
        for chunk in _random_chunks(frame, rng):
            decoded.extend(decoder.feed(chunk))
        decoder.finish()
        assert len(decoded) == 1
        assert decoder.frames_binary == 1
        assert decoder.last_kind == "binary"
        out = TensorPayload.from_wire(decoded[0]["tensor"]).to_array()
        assert out.dtype == array.dtype
        assert out.shape == array.shape
        assert out.tobytes() == array.tobytes()

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(arrays=st.lists(tensor_arrays(), min_size=2, max_size=4))
    def test_many_tensors_share_one_frame(self, arrays):
        envelope = {
            "schema_version": SCHEMA_VERSION,
            "op": "normalize_bulk",
            "request_id": 1,
            "tensors": [TensorPayload.from_array(a, "binary").to_wire() for a in arrays],
        }
        (decoded,) = FrameDecoder().feed(encode_frame(envelope))
        for wire, original in zip(decoded["tensors"], arrays):
            assert TensorPayload.from_wire(wire).to_array().tobytes() == original.tobytes()

    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(array=tensor_arrays())
    def test_downgrade_to_base64_decodes_identically(self, array):
        # The negotiated-fallback path: a v3 envelope rewritten for a v2
        # peer must decode to the very same bytes, and the rewrite must be
        # copy-on-write (the original envelope still holds binary tensors).
        envelope = {
            "schema_version": SCHEMA_VERSION,
            "op": "normalize",
            "request_id": 1,
            "tensor": TensorPayload.from_array(array, "binary").to_wire(),
        }
        assert has_binary_tensors(envelope)
        downgraded = downgrade_binary_tensors(envelope)
        assert not has_binary_tensors(downgraded)
        assert has_binary_tensors(envelope)  # untouched original
        assert frame_kind(encode_frame(downgraded)[4:]) == "json"
        via_json = TensorPayload.from_wire(_json_loop(downgraded["tensor"])).to_array()
        assert via_json.tobytes() == array.tobytes()

    @settings(max_examples=200, deadline=None, derandomize=True)
    @given(seed=st.integers(0, 2**16), flips=st.integers(1, 8))
    def test_corrupted_binary_frames_fail_into_the_taxonomy(self, seed, flips):
        # Any byte-flip storm over a binary frame either still decodes (the
        # flip landed in tensor data) or raises an ApiError member -- never
        # a struct.error, UnicodeDecodeError, or numpy exception.
        rng = np.random.default_rng(seed)
        request = NormalizeRequest(
            model="m",
            tensor=TensorPayload.from_array(rng.normal(size=(3, 5)), "binary"),
        )
        frame = bytearray(encode_frame(request.to_wire()))
        for position in rng.integers(0, len(frame), size=flips):
            frame[int(position)] ^= int(rng.integers(1, 256))
        decoder = FrameDecoder(max_frame_bytes=1 << 20)
        try:
            envelopes = decoder.feed(bytes(frame))
            decoder.finish()
            for envelope in envelopes:
                parsed = parse_request(envelope)
                if hasattr(parsed, "tensor"):
                    parsed.tensor.to_array()
        except ApiError:
            pass  # the only acceptable failure surface

    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(seed=st.integers(0, 2**16))
    def test_truncated_binary_frames_fail_closed(self, seed):
        rng = np.random.default_rng(seed)
        frame = encode_frame(
            {
                "schema_version": SCHEMA_VERSION,
                "op": "normalize",
                "request_id": 1,
                "tensor": TensorPayload.from_array(
                    rng.normal(size=(2, 4)), "binary"
                ).to_wire(),
            }
        )
        cut = int(rng.integers(1, len(frame)))  # strict prefix
        decoder = FrameDecoder()
        assert decoder.feed(frame[:cut]) == []
        with pytest.raises(TransportError, match="mid-frame"):
            decoder.finish()

    def test_forged_buffer_indices_are_rejected(self):
        # A JSON frame smuggling a binary descriptor (no buffer table to
        # index into) must fail closed at from_wire, not at np.frombuffer.
        wire = TensorPayload.from_array(np.arange(4.0), "binary").to_wire()
        wire["data"] = 0  # what a binary preamble uses internally
        with pytest.raises(BadSchemaError):
            TensorPayload.from_wire(_json_loop(wire))

    def test_binary_decode_is_zero_copy_and_read_only(self):
        array = np.arange(12.0).reshape(3, 4)
        envelope = {
            "schema_version": SCHEMA_VERSION,
            "op": "normalize",
            "request_id": 1,
            "tensor": TensorPayload.from_array(array, "binary").to_wire(),
        }
        (decoded,) = FrameDecoder().feed(encode_frame(envelope))
        out = TensorPayload.from_wire(decoded["tensor"]).to_array()
        assert out.base is not None  # a view over the frame, not a copy
        assert not out.flags.writeable
        assert np.array_equal(out, array)

    def test_chaos_corrupt_rule_applies_to_binary_envelopes(self):
        # The client-side corrupt rule mangles envelopes *before* encoding,
        # so a binary-tensor request is corrupted exactly like a JSON one
        # and the server answers with a typed schema error.
        from repro.chaos.plan import FaultPlan, FaultRule
        from repro.chaos.transport import ChaosTransport

        class _Capture:
            def __init__(self):
                self.sent = None

            def request(self, payload):
                self.sent = payload
                return {"ok": False, "error": {"code": "bad_schema", "message": "x"}}

            def close(self):
                pass

        inner = _Capture()
        plan = FaultPlan(
            name="t", seed=7, rules=(FaultRule(kind="corrupt", probability=1.0),)
        )
        chaos = ChaosTransport(inner, plan)
        request = NormalizeRequest(
            model="m", tensor=TensorPayload.from_array(np.arange(4.0), "binary")
        ).to_wire()
        chaos.request(request)
        assert inner.sent["op"].startswith("corrupted[")
        assert has_binary_tensors(inner.sent)  # still a binary frame on the wire
        assert frame_kind(encode_frame(inner.sent)[4:]) == "binary"


# ---------------------------------------------------------------------------
# schema-version negotiation matrix
# ---------------------------------------------------------------------------


RANGES = [(1, 1), (1, 2), (2, 2), (2, 3), (3, 4)]


class TestVersionNegotiation:
    @pytest.mark.parametrize("client_range", RANGES)
    @pytest.mark.parametrize("server_range", RANGES)
    def test_negotiation_matrix(self, client_range, server_range):
        cmin, cmax = client_range
        smin, smax = server_range
        overlaps = max(cmin, smin) <= min(cmax, smax)
        if overlaps:
            assert negotiate_version(cmin, cmax, smin, smax) == min(cmax, smax)
        else:
            with pytest.raises(SchemaVersionError) as excinfo:
                negotiate_version(cmin, cmax, smin, smax)
            message = str(excinfo.value)
            assert f"client speaks {cmin}..{cmax}" in message
            assert f"server speaks {smin}..{smax}" in message

    @pytest.mark.parametrize("client_range", RANGES)
    @pytest.mark.parametrize("server_range", [(1, 2), (2, 3)])
    def test_hello_handshake_matrix_through_the_handler(
        self, handler, client_range, server_range
    ):
        handler.min_schema_version, handler.max_schema_version = server_range
        hello = HelloRequest(
            min_schema_version=client_range[0], max_schema_version=client_range[1]
        )
        response = handler.handle(hello.to_wire())
        overlaps = max(client_range[0], server_range[0]) <= min(
            client_range[1], server_range[1]
        )
        if overlaps:
            decoded = parse_hello_response(response)
            assert decoded.schema_version_chosen == min(client_range[1], server_range[1])
            assert (decoded.min_schema_version, decoded.max_schema_version) == server_range
        else:
            assert response["ok"] is False
            assert response["error"]["code"] == "schema_version"
            assert f"server speaks {server_range[0]}..{server_range[1]}" in (
                response["error"]["message"]
            )

    def test_empty_range_is_rejected(self):
        with pytest.raises(SchemaVersionError, match="empty"):
            negotiate_version(3, 2, 1, 2)

    def test_module_range_is_coherent(self):
        assert MIN_SCHEMA_VERSION <= SCHEMA_VERSION
        assert negotiate_version(
            MIN_SCHEMA_VERSION, SCHEMA_VERSION, MIN_SCHEMA_VERSION, SCHEMA_VERSION
        ) == SCHEMA_VERSION
