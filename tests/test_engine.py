"""Cross-backend golden-equivalence suite for :mod:`repro.engine`.

The engine contract: every registered backend executes the *same*
:class:`~repro.engine.spec.EngineSpec` and their outputs are
interchangeable -- ``reference`` and ``vectorized`` are **bit-identical**
(exact comparisons, never tolerances, NaN positions and zero signs
included) across the full PR-2 edge sweep (every storage format, both norm
kinds, both subsample policies, skipped and computed layers, empty stacks,
NaN/inf payloads), and ``simulated`` matches ``reference`` numerics while
additionally emitting hardware cost records.

Also covered: spec compilation / serialization round trips, the registry's
unknown-backend error (it must list the registry contents), layer-level
engine delegation and cache invalidation, and per-request backend
selection through the serving service with backend-tagged telemetry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HaanConfig
from repro.core.haan_norm import HaanNormalization
from repro.core.predictor import IsdPredictor
from repro.core.subsampling import SubsamplePolicy, SubsampleSettings
from repro.engine.backends import (
    NormBackend,
    NormCostRecord,
    ReferenceBackend,
    SimulatedBackend,
    VectorizedBackend,
)
from repro.engine.plan import compile_plan
from repro.engine.registry import (
    available_backends,
    build,
    create_backend,
    local_backends,
    register_backend,
)
from repro.engine.spec import EngineSpec, compile_spec, spec_for_layer
from repro.llm.config import NormKind
from repro.llm.normalization import LayerNorm, RMSNorm, make_norm
from repro.numerics.quantization import DataFormat
from repro.serving import BatcherConfig, NormalizationService

HIDDEN = 96


def assert_same_floats(actual, expected) -> None:
    """Exact float equality: values, NaN positions and zero signs."""
    actual = np.asarray(actual, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    assert actual.shape == expected.shape
    nan_a, nan_e = np.isnan(actual), np.isnan(expected)
    assert np.array_equal(nan_a, nan_e)
    assert np.array_equal(actual[~nan_a], expected[~nan_e])
    assert np.array_equal(np.signbit(actual[~nan_a]), np.signbit(expected[~nan_e]))


def assert_results_equal(fast, golden) -> None:
    """Exact equality of two ``(output, mean, isd)`` triples."""
    for a, b in zip(fast, golden):
        assert_same_floats(a, b)


def make_haan_layer(
    rng,
    hidden=HIDDEN,
    kind=NormKind.LAYERNORM,
    data_format=DataFormat.INT8,
    subsample=SubsampleSettings(length=24),
    skipped=False,
    use_hardware_inv_sqrt=False,
):
    base = make_norm(kind, hidden, layer_index=3, name="test.norm")
    base.load_affine(rng.normal(1.0, 0.1, hidden), rng.normal(0.0, 0.1, hidden))
    predictor = None
    if skipped:
        predictor = IsdPredictor(anchor_layer=1, last_layer=5, decay=-0.05, anchor_log_isd=0.2)
    return HaanNormalization(
        base,
        predictor=predictor,
        subsample=subsample,
        data_format=data_format,
        use_hardware_inv_sqrt=use_hardware_inv_sqrt,
    )


# ---------------------------------------------------------------------------
# spec compilation and serialization
# ---------------------------------------------------------------------------


class TestEngineSpec:
    def test_roundtrips_through_dict(self):
        spec = EngineSpec(
            kind="layernorm",
            hidden_size=32,
            storage="int8",
            subsample_length=8,
            subsample_policy="strided",
            skipped=True,
            layer_index=4,
            predictor_anchor_layer=2,
            predictor_last_layer=6,
            predictor_decay=-0.04,
            predictor_anchor_log_isd=0.3,
        )
        payload = spec.to_dict()
        assert all(
            value is None or isinstance(value, (str, int, float, bool))
            for value in payload.values()
        )
        assert EngineSpec.from_dict(payload) == spec

    def test_spec_for_reference_layer(self):
        layer = LayerNorm(hidden_size=16, layer_index=2, name="ref", eps=1e-6)
        spec = spec_for_layer(layer)
        assert spec.kind == "layernorm"
        assert spec.storage is None  # exact layers never round-trip storage
        assert not spec.skipped
        assert spec.subsample_length is None
        assert spec.eps == 1e-6

    def test_spec_for_haan_layer(self):
        layer = make_haan_layer(np.random.default_rng(0), skipped=True)
        spec = spec_for_layer(layer)
        assert spec.storage == "int8"
        assert spec.skipped
        assert spec.subsample_length == 24
        assert spec.predictor_anchor_layer == 1
        assert spec.predictor_decay == -0.05

    def test_compile_spec_from_haan_config(self):
        config = HaanConfig(
            skip_range=(2, 6), subsample_length=128, data_format=DataFormat.FP16
        )
        predictor = IsdPredictor(anchor_layer=2, last_layer=6, decay=-0.1, anchor_log_isd=0.0)
        skipped = compile_spec(
            config, NormKind.RMSNORM, hidden_size=64, layer_index=4, predictor=predictor
        )
        assert skipped.skipped and skipped.is_rms and skipped.storage == "fp16"
        computed = compile_spec(config, NormKind.RMSNORM, hidden_size=64, layer_index=1)
        assert not computed.skipped
        # layer at the anchor itself is computed (it anchors the prediction)
        anchor = compile_spec(
            config, NormKind.RMSNORM, hidden_size=64, layer_index=2, predictor=predictor
        )
        assert not anchor.skipped

    def test_compile_spec_skipped_requires_predictor(self):
        config = HaanConfig(skip_range=(2, 6))
        with pytest.raises(ValueError, match="predictor"):
            compile_spec(config, NormKind.LAYERNORM, hidden_size=8, layer_index=4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "batchnorm", "hidden_size": 8},
            {"kind": "layernorm", "hidden_size": 0},
            {"kind": "layernorm", "hidden_size": 8, "storage": "fp64"},
            {"kind": "layernorm", "hidden_size": 8, "subsample_length": 0},
            {"kind": "layernorm", "hidden_size": 8, "subsample_policy": "random"},
            {"kind": "layernorm", "hidden_size": 8, "skipped": True},
        ],
        ids=["kind", "hidden", "storage", "subsample", "policy", "skipped-no-predictor"],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EngineSpec(**kwargs)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_three_backends_registered(self):
        assert {"reference", "vectorized", "simulated"} <= set(available_backends())

    def test_unknown_backend_error_lists_registry(self):
        with pytest.raises(ValueError) as excinfo:
            create_backend("fpga-of-the-future")
        message = str(excinfo.value)
        for name in available_backends():
            assert name in message

    def test_build_constructs_every_backend_from_one_spec(self):
        # local_backends(): the remote backend is registered but needs a
        # live server address, so zero-config sweeps exclude it.
        spec = EngineSpec(kind="layernorm", hidden_size=8, storage="fp16")
        engines = {name: build(spec, backend=name) for name in local_backends()}
        assert isinstance(engines["reference"].backend, ReferenceBackend)
        assert isinstance(engines["vectorized"].backend, VectorizedBackend)
        assert isinstance(engines["simulated"].backend, SimulatedBackend)
        rows = np.random.default_rng(1).normal(size=(4, 8))
        golden = engines["reference"].run(rows)
        for name, engine in engines.items():
            assert_results_equal(engine.run(rows), golden)

    def test_build_accepts_backend_instance_and_plan(self):
        spec = EngineSpec(kind="rmsnorm", hidden_size=8)
        backend = VectorizedBackend()
        plan = compile_plan(spec)
        engine = build(plan, backend=backend)
        assert engine.backend is backend and engine.plan is plan

    def test_custom_backend_registration(self):
        class EchoBackend(NormBackend):
            name = "echo-test"

            def run(self, plan, rows, segment_starts=None, anchor_isd=None,
                    workspace=None, out=None):
                arr = plan.check_rows(rows)
                zeros = np.zeros(arr.shape[0])
                return arr, zeros, zeros

        register_backend("echo-test", EchoBackend)
        try:
            assert "echo-test" in available_backends()
            engine = build(EngineSpec(kind="layernorm", hidden_size=4), backend="echo-test")
            rows = np.ones((2, 4))
            out, _, _ = engine.run(rows)
            assert np.array_equal(out, rows)
        finally:
            from repro.engine.registry import _FACTORIES

            _FACTORIES.pop("echo-test", None)


# ---------------------------------------------------------------------------
# cross-backend golden equivalence (the PR-2 edge sweep)
# ---------------------------------------------------------------------------


STORAGE_FORMATS = list(DataFormat)


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("data_format", STORAGE_FORMATS, ids=lambda f: f.value)
    @pytest.mark.parametrize("kind", [NormKind.LAYERNORM, NormKind.RMSNORM])
    @pytest.mark.parametrize(
        "subsample",
        [
            None,
            SubsampleSettings(length=24),
            SubsampleSettings(length=24, policy=SubsamplePolicy.STRIDED),
        ],
        ids=["full", "truncate", "strided"],
    )
    def test_reference_vs_vectorized_bit_identical(self, data_format, kind, subsample):
        rng = np.random.default_rng(43)
        layer = make_haan_layer(rng, kind=kind, data_format=data_format, subsample=subsample)
        stacked = rng.normal(0.0, 2.0, size=(13, HIDDEN))
        starts = np.array([0, 4, 5, 11])
        fast = layer.engine_for("vectorized").run(stacked, starts)
        golden = layer.engine_for("reference").run(stacked, starts)
        assert_results_equal(fast, golden)

    @pytest.mark.parametrize("data_format", STORAGE_FORMATS, ids=lambda f: f.value)
    def test_skipped_layer_with_mixed_anchors(self, data_format):
        rng = np.random.default_rng(47)
        layer = make_haan_layer(rng, data_format=data_format, skipped=True)
        stacked = rng.normal(size=(6, HIDDEN))
        anchor = np.array([2.0, 2.0, np.nan, 0.5, 0.5, 0.5])
        starts = np.array([0, 2, 3])
        fast = layer.engine_for("vectorized").run(stacked, starts, anchor)
        golden = layer.engine_for("reference").run(stacked, starts, anchor)
        assert_results_equal(fast, golden)

    def test_hardware_inv_sqrt_refinement(self):
        rng = np.random.default_rng(53)
        layer = make_haan_layer(rng, use_hardware_inv_sqrt=True)
        stacked = rng.normal(size=(5, HIDDEN))
        fast = layer.engine_for("vectorized").run(stacked)
        golden = layer.engine_for("reference").run(stacked)
        assert_results_equal(fast, golden)

    @pytest.mark.parametrize("data_format", STORAGE_FORMATS, ids=lambda f: f.value)
    def test_nan_and_inf_payloads(self, data_format):
        rng = np.random.default_rng(59)
        layer = make_haan_layer(rng, data_format=data_format, subsample=None)
        stacked = rng.normal(size=(8, HIDDEN))
        stacked[1, 3] = np.nan
        stacked[4, 0] = np.inf
        stacked[6, -1] = -np.inf
        starts = np.array([0, 2, 5])
        fast = layer.engine_for("vectorized").run(stacked, starts)
        golden = layer.engine_for("reference").run(stacked, starts)
        assert_results_equal(fast, golden)

    @pytest.mark.parametrize("data_format", STORAGE_FORMATS, ids=lambda f: f.value)
    def test_empty_stack(self, data_format):
        layer = make_haan_layer(
            np.random.default_rng(61), data_format=data_format, subsample=None
        )
        empty = np.empty((0, HIDDEN))
        for backend in local_backends():
            out, mean, isd = layer.engine_for(backend).run(empty)
            assert out.shape == (0, HIDDEN)
            assert mean.shape == (0,)
            assert isd.shape == (0,)

    @pytest.mark.parametrize("cls", [LayerNorm, RMSNorm], ids=["layernorm", "rmsnorm"])
    def test_exact_reference_layers_storage_none(self, cls):
        """Plain layers compile to storage=None: no round trip anywhere."""
        rng = np.random.default_rng(67)
        layer = cls(hidden_size=HIDDEN, layer_index=0, name="exact")
        layer.load_affine(rng.normal(1.0, 0.1, HIDDEN), rng.normal(0.0, 0.1, HIDDEN))
        assert layer.plan.spec.storage is None
        payloads = [rng.normal(size=(n, HIDDEN)) for n in (1, 3, 2)]
        stacked = np.concatenate(payloads)
        starts = np.array([0, 1, 4])
        fast = layer.engine_for("vectorized").run(stacked, starts)
        golden = layer.engine_for("reference").run(stacked, starts)
        assert_results_equal(fast, golden)
        # ... and both equal the per-request __call__ path exactly.
        expected = np.concatenate([layer(p) for p in payloads])
        assert np.array_equal(fast[0], expected)

    def test_vectorized_matches_per_request_calls(self):
        rng = np.random.default_rng(71)
        layer = make_haan_layer(rng)
        payloads = [rng.normal(size=(n, HIDDEN)) for n in (1, 3, 2)]
        starts = np.array([0, 1, 4])
        out, _, _ = layer.engine_for("vectorized").run(np.concatenate(payloads), starts)
        expected = np.concatenate([layer(p) for p in payloads])
        assert np.array_equal(out, expected)


# ---------------------------------------------------------------------------
# simulated backend: reference numerics + cost records
# ---------------------------------------------------------------------------


class TestSimulatedBackend:
    def test_matches_reference_and_emits_costs(self):
        rng = np.random.default_rng(73)
        layer = make_haan_layer(rng)
        engine = layer.engine_for("simulated")
        stacked = rng.normal(size=(9, HIDDEN))
        starts = np.array([0, 4])
        result = engine.run(stacked, starts)
        assert_results_equal(result, layer.engine_for("reference").run(stacked, starts))
        record = engine.backend.last_record
        assert isinstance(record, NormCostRecord)
        assert record.num_rows == 9 and record.hidden_size == HIDDEN
        assert record.stats_cycles > 0 and record.isd_cycles > 0 and record.norm_cycles > 0
        assert record.total_cycles == (
            record.stats_cycles + record.isd_cycles + record.norm_cycles
        )
        assert record.latency_seconds > 0 and record.energy_nj > 0
        shares = record.stage_shares()
        assert shares["stats"] + shares["isd"] + shares["normalize"] == pytest.approx(1.0)

    def test_skipped_layer_costs_less_than_computed(self):
        rng = np.random.default_rng(79)
        computed = make_haan_layer(rng, subsample=None)
        skipped = make_haan_layer(rng, subsample=None, skipped=True)
        stacked = rng.normal(size=(16, HIDDEN))
        computed_engine = computed.engine_for("simulated")
        skipped_engine = skipped.engine_for("simulated")
        computed_engine.run(stacked)
        skipped_engine.run(stacked)
        assert (
            skipped_engine.backend.last_record.total_cycles
            < computed_engine.backend.last_record.total_cycles
        )
        assert skipped_engine.backend.last_record.skipped

    def test_record_accumulation_and_drain(self):
        rng = np.random.default_rng(83)
        layer = make_haan_layer(rng)
        engine = layer.engine_for("simulated")
        backend = engine.backend
        backend.pop_records()
        for _ in range(3):
            engine.run(rng.normal(size=(4, HIDDEN)))
        assert len(backend.records) == 3
        assert backend.total_cycles() == sum(r.total_cycles for r in backend.records)
        assert backend.total_energy_nj() > 0
        drained = backend.pop_records()
        assert len(drained) == 3 and len(backend.records) == 0
        # lifetime totals survive the drain
        assert backend.total_cycles() == sum(r.total_cycles for r in drained)
        assert backend.batches_recorded == 3

    def test_record_window_is_bounded(self):
        rng = np.random.default_rng(91)
        layer = make_haan_layer(rng, subsample=None)
        engine = layer.engine_for("simulated")
        backend = engine.backend
        backend.records = type(backend.records)(maxlen=2)
        for _ in range(5):
            engine.run(rng.normal(size=(2, HIDDEN)))
        assert len(backend.records) == 2  # window bounded...
        assert backend.batches_recorded == 5  # ...lifetime counters not

    def test_empty_stack_zero_cost(self):
        layer = make_haan_layer(np.random.default_rng(89), subsample=None)
        engine = layer.engine_for("simulated")
        engine.run(np.empty((0, HIDDEN)))
        record = engine.backend.last_record
        assert record.total_cycles == 0 and record.energy_nj == 0.0


# ---------------------------------------------------------------------------
# layer-level delegation
# ---------------------------------------------------------------------------


class TestLayerDelegation:
    def test_forward_batched_is_the_vectorized_engine(self):
        rng = np.random.default_rng(97)
        layer = make_haan_layer(rng)
        stacked = rng.normal(size=(7, HIDDEN))
        starts = np.array([0, 3])
        assert_results_equal(
            layer.forward_batched(stacked, starts),
            layer.engine_for("vectorized").run(stacked, starts),
        )
        assert_results_equal(
            layer.forward_batched_reference(stacked, starts),
            layer.engine_for("reference").run(stacked, starts),
        )

    def test_flags_follow_plan_after_batched_call(self):
        rng = np.random.default_rng(101)
        skipped = make_haan_layer(rng, skipped=True)
        assert not skipped._last_was_predicted()
        skipped.forward_batched(rng.normal(size=(3, HIDDEN)))
        assert skipped._last_was_predicted()
        computed = make_haan_layer(rng)
        computed.forward_batched(rng.normal(size=(3, HIDDEN)))
        assert not computed._last_was_predicted()
        assert computed._last_was_subsampled()

    def test_engines_are_cached_per_backend(self):
        layer = make_haan_layer(np.random.default_rng(103))
        assert layer.engine_for("vectorized") is layer.engine_for("vectorized")
        assert layer.engine_for("reference") is not layer.engine_for("vectorized")

    def test_load_affine_invalidates_compiled_plan(self):
        rng = np.random.default_rng(107)
        layer = make_haan_layer(rng)
        stacked = rng.normal(size=(4, HIDDEN))
        before = layer.forward_batched(stacked)[0].copy()
        old_plan = layer.plan
        layer.load_affine(np.full(HIDDEN, 2.0), np.zeros(HIDDEN))
        assert layer.plan is not old_plan
        after = layer.forward_batched(stacked)[0]
        assert not np.array_equal(before, after)
        # the recompiled plan matches a per-request call with the new affine
        assert np.array_equal(after, layer(stacked))

    def test_unknown_backend_via_layer_lists_registry(self):
        layer = make_haan_layer(np.random.default_rng(109))
        with pytest.raises(ValueError, match="vectorized"):
            layer.engine_for("warp-drive")


# ---------------------------------------------------------------------------
# serving integration: per-request backend selection
# ---------------------------------------------------------------------------


def _instant_loader(model_name, dataset):
    """Calibration-free artifact stub: one HAAN + one reference layer."""
    from repro.serving.registry import CalibrationArtifact

    rng = np.random.default_rng(11)
    base = LayerNorm(hidden_size=HIDDEN, layer_index=0, name="serve.norm")
    base.load_affine(rng.normal(1.0, 0.1, HIDDEN), rng.normal(0.0, 0.1, HIDDEN))
    haan = HaanNormalization(
        base,
        subsample=SubsampleSettings(length=16),
        data_format=DataFormat.INT8,
    )
    return CalibrationArtifact(
        model_name=model_name,
        dataset=dataset,
        model=None,
        config=HaanConfig(subsample_length=16, data_format=DataFormat.INT8),
        calibration=None,
        haan_layers=[haan],
        reference_layers=[base],
    )


class TestServingBackendSelection:
    def _service(self):
        from repro.serving import CalibrationRegistry

        return NormalizationService(
            registry=CalibrationRegistry(loader=_instant_loader),
            config=BatcherConfig(max_batch_size=8, max_wait=0.0),
            threaded=False,
        )

    def test_every_backend_serves_bit_identical_responses(self):
        rng = np.random.default_rng(13)
        payloads = [rng.normal(size=(2, HIDDEN)) for _ in range(4)]
        outputs = {}
        for backend in local_backends():
            with self._service() as service:
                responses = service.normalize_many(payloads, "tiny", backend=backend)
                outputs[backend] = np.concatenate([r.output for r in responses])
        for backend, output in outputs.items():
            assert np.array_equal(output, outputs["reference"]), backend

    def test_telemetry_tags_batches_by_backend(self):
        rng = np.random.default_rng(17)
        payloads = [rng.normal(size=(1, HIDDEN)) for _ in range(3)]
        with self._service() as service:
            service.normalize_many(payloads, "tiny", backend="vectorized")
            service.normalize_many(payloads, "tiny", backend="simulated")
            snap = service.telemetry.snapshot()
        assert snap["backends"]["vectorized"]["requests"] == 3
        assert snap["backends"]["simulated"]["requests"] == 3
        assert "backend[simulated]" in service.telemetry.format_table()

    def test_backends_never_share_a_micro_batch(self):
        rng = np.random.default_rng(19)
        payloads = [rng.normal(size=(1, HIDDEN)) for _ in range(4)]
        with self._service() as service:
            for backend in ("vectorized", "reference"):
                service.submit_many(payloads, "tiny", backend=backend)
            service.batcher.drain_all()
            snap = service.telemetry.snapshot()
        assert snap["backends"]["vectorized"]["batches"] == 1
        assert snap["backends"]["reference"]["batches"] == 1

    def test_unknown_backend_fails_at_submit_with_registry_listing(self):
        # PR 4 moved name validation to the front door: submit() itself
        # raises (listing the registry) instead of failing the future deep
        # inside the batch executor.
        with self._service() as service:
            with pytest.raises(ValueError, match="vectorized"):
                service.submit(np.ones(HIDDEN), "tiny", backend="abacus")
            assert service.telemetry.snapshot()["errors_total"] == 0


# ---------------------------------------------------------------------------
# the engine experiment
# ---------------------------------------------------------------------------


class TestEngineExperiment:
    def test_runs_over_registered_backends(self):
        from repro.eval.experiments import run_experiment

        result = run_experiment(
            "engine", hidden=32, rows_per_request=2, requests=3, repeats=1
        )
        swept = {row[0] for row in result.rows}
        assert swept == set(local_backends())
        # golden contract: every backend deviates by exactly zero
        assert all(row[3] == "0.0e+00" for row in result.rows)
        simulated = result.metadata["details"]["simulated:computed"]
        assert simulated["cost_record"] is not None
        assert simulated["stage_shares"]["stats"] > 0


# ---------------------------------------------------------------------------
# run_many edge cases (PR 6): empty batches, single-row groups, bad dtypes
# ---------------------------------------------------------------------------


class TestRunManyEdgeCases:
    def _engine(self, backend="vectorized"):
        return build(EngineSpec(kind="layernorm", hidden_size=8), backend=backend)

    def test_empty_batch_list_is_a_noop(self):
        for name in local_backends():
            assert self._engine(name).run_many([]) == []

    def test_single_row_groups_match_per_group_run(self):
        rng = np.random.default_rng(23)
        engine = self._engine()
        groups = [(rng.normal(size=(1, 8)), None, None) for _ in range(5)]
        bulk = engine.run_many(groups)
        assert len(bulk) == 5
        for (rows, _, _), triple in zip(groups, bulk):
            assert_results_equal(triple, engine.run(rows))

    @pytest.mark.parametrize(
        "bad_rows",
        [
            np.ones((2, 8), dtype=np.complex128),
            np.array([[1 + 2j] * 8, [3.0] * 8]),  # mixed real/complex upcasts
            np.array([[object()] * 8], dtype=object),
            np.array([["a"] * 8]),
        ],
        ids=["complex", "mixed-complex", "object", "string"],
    )
    def test_non_real_dtypes_rejected_with_typed_error(self, bad_rows):
        engine = self._engine()
        with pytest.raises(ValueError, match="real-numeric"):
            engine.run(bad_rows)
        with pytest.raises(ValueError, match="real-numeric"):
            engine.run_many([(bad_rows, None, None)])

    def test_integer_and_bool_rows_still_coerce(self):
        engine = self._engine()
        ints = np.arange(16, dtype=np.int32).reshape(2, 8)
        golden = engine.run(np.asarray(ints, dtype=np.float64))
        assert_results_equal(engine.run(ints), golden)
        bools = np.ones((1, 8), dtype=bool)
        assert engine.run(bools)[0].shape == (1, 8)
