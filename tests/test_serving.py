"""Tests of the batched normalization serving runtime.

The central contract is golden-model equivalence: every response produced
by the micro-batched path must be bit-identical (``np.array_equal``, no
tolerance) to running the same payload alone through the per-request
:class:`~repro.core.haan_norm.HaanNormalization` pipeline.  The remaining
tests cover scheduler ordering, the max-wait latency trigger, the
calibration registry's LRU behaviour and the telemetry aggregates.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.calibration import CalibrationSettings
from repro.core.haan_norm import HaanNormalization
from repro.core.predictor import IsdPredictor
from repro.core.subsampling import (
    SubsamplePolicy,
    SubsampleSettings,
    batched_subsampled_statistics,
    select_subsample,
    subsample_indices,
    subsampled_statistics,
)
from repro.llm.hooks import ActivationContext, scatter_isd, stack_anchor_isds
from repro.llm.normalization import LayerNorm, RMSNorm
from repro.numerics.quantization import DataFormat, segmented_round_trip, storage_round_trip
from repro.serving import (
    BatcherConfig,
    CalibrationRegistry,
    LatencyHistogram,
    NormalizationService,
    ServingTelemetry,
    default_artifact_loader,
)

HIDDEN = 64


def _base_layer(layer_index=5, rms=False, seed=0):
    rng = np.random.default_rng(seed)
    cls = RMSNorm if rms else LayerNorm
    return cls(
        hidden_size=HIDDEN,
        layer_index=layer_index,
        name=f"block.norm{layer_index}",
        gamma=1.0 + 0.1 * rng.standard_normal(HIDDEN),
        beta=0.05 * rng.standard_normal(HIDDEN),
    )


def _predictor():
    return IsdPredictor(anchor_layer=3, last_layer=8, decay=-0.05, anchor_log_isd=0.2)


def _tiny_loader(model_name, dataset):
    """Serving artifact for the tiny models with a fast calibration pass."""
    return default_artifact_loader(
        model_name,
        dataset,
        settings=CalibrationSettings(
            num_samples=4,
            max_seq_len=16,
            batch_size=2,
            window=2,
            min_start_fraction=0.3,
        ),
    )


@pytest.fixture(scope="module")
def registry():
    return CalibrationRegistry(loader=_tiny_loader)


@pytest.fixture()
def inline_service(registry):
    service = NormalizationService(
        registry=registry,
        config=BatcherConfig(max_batch_size=8, max_wait=0.0),
        threaded=False,
    )
    yield service
    service.close()


# ---------------------------------------------------------------------------
# Batched kernels: bit-identity against the per-request reference
# ---------------------------------------------------------------------------

class TestBatchedKernel:
    @pytest.mark.parametrize("data_format", list(DataFormat))
    @pytest.mark.parametrize("rms", [False, True])
    def test_forward_batched_bit_identical(self, data_format, rms, rng):
        """Stacked segments match N independent single-request forwards."""
        layer = HaanNormalization(
            _base_layer(rms=rms),
            predictor=None,
            subsample=SubsampleSettings(24),
            data_format=data_format,
        )
        payloads = [rng.normal(0.5, 2.0, size=(n, HIDDEN)) for n in (1, 3, 1, 2)]
        reference = np.concatenate([layer(p) for p in payloads])
        starts = np.cumsum([0] + [p.shape[0] for p in payloads])[:-1]
        out, _, _ = layer.forward_batched(np.concatenate(payloads), starts)
        assert np.array_equal(out, reference)

    def test_int8_requires_per_segment_scales(self, rng):
        """A whole-stack INT8 round trip is NOT bit-identical -- the per-
        segment path exists precisely because quantization couples rows."""
        layer = HaanNormalization(_base_layer(), data_format=DataFormat.INT8)
        small = rng.normal(0.0, 0.1, size=(2, HIDDEN))
        large = rng.normal(0.0, 50.0, size=(2, HIDDEN))
        stacked = np.concatenate([small, large])
        per_segment = segmented_round_trip(stacked, np.array([0, 2]), DataFormat.INT8)
        whole_stack = storage_round_trip(stacked, DataFormat.INT8)
        assert not np.array_equal(per_segment, whole_stack)
        reference = np.concatenate([layer(small), layer(large)])
        out, _, _ = layer.forward_batched(stacked, np.array([0, 2]))
        assert np.array_equal(out, reference)

    def test_skipped_layer_with_mixed_anchors(self, rng):
        """Rows with context anchors use equation (3); rows without fall
        back to the calibration scalar -- exactly like the single path."""
        layer = HaanNormalization(
            _base_layer(layer_index=5),
            predictor=_predictor(),
            subsample=SubsampleSettings(16),
        )
        counts = [2, 1, 3]
        contexts = [ActivationContext(), None, ActivationContext()]
        contexts[0].store_isd(3, np.array([1.1, 1.3]))
        contexts[2].store_isd(3, np.array([0.9, 1.0, 1.2]))
        payloads = [rng.normal(size=(n, HIDDEN)) for n in counts]
        reference = np.concatenate(
            [layer(p, c) for p, c in zip(payloads, contexts)]
        )
        anchor = stack_anchor_isds(contexts, 3, counts)
        starts = np.cumsum([0] + counts)[:-1]
        out, _, isd = layer.forward_batched(np.concatenate(payloads), starts, anchor)
        assert np.array_equal(out, reference)
        scatter_isd(contexts, 5, isd, counts)
        assert contexts[0].isd_of(5).shape == (2,)

    def test_reference_layer_forward_batched(self, rng):
        layer = _base_layer()
        payloads = [rng.normal(size=(n, HIDDEN)) for n in (2, 3)]
        reference = np.concatenate([layer(p) for p in payloads])
        out, _, _ = layer.forward_batched(np.concatenate(payloads))
        assert np.array_equal(out, reference)

    def test_batched_subsampled_statistics_matches_per_segment(self, rng):
        settings = SubsampleSettings(16, SubsamplePolicy.STRIDED)
        segments = [rng.normal(size=(n, HIDDEN)) for n in (2, 4)]
        mean, isd = batched_subsampled_statistics(
            np.concatenate(segments), np.array([2, 4]), settings
        )
        ref = [subsampled_statistics(s, settings) for s in segments]
        assert np.array_equal(mean, np.concatenate([r[0] for r in ref]))
        assert np.array_equal(isd, np.concatenate([r[1] for r in ref]))
        with pytest.raises(ValueError):
            batched_subsampled_statistics(
                np.concatenate(segments), np.array([2, 5]), settings
            )

    def test_subsample_indices_match_selection(self, rng):
        """The index helper must pick exactly the columns select_subsample reads."""
        rows = rng.normal(size=(3, HIDDEN))
        for policy in SubsamplePolicy:
            settings = SubsampleSettings(10, policy)
            indices = subsample_indices(HIDDEN, settings)
            assert indices.size == 10
            assert np.array_equal(rows[:, indices], select_subsample(rows, settings))


# ---------------------------------------------------------------------------
# Service: golden-model comparison through the full scheduler
# ---------------------------------------------------------------------------

class TestServiceGolden:
    def test_batched_service_bit_identical_to_single_requests(
        self, registry, inline_service, rng
    ):
        artifact = registry.get("tiny")
        for layer_index in range(artifact.num_layers):
            payloads = [rng.normal(size=(HIDDEN,)) for _ in range(13)]
            responses = inline_service.normalize_many(
                payloads, "tiny", layer_index=layer_index
            )
            layer = artifact.layer(layer_index)
            for payload, response in zip(payloads, responses):
                assert np.array_equal(response.output, layer(payload))
                assert response.output.shape == payload.shape

    def test_multi_row_payloads_and_reference_path(self, registry, inline_service, rng):
        artifact = registry.get("tiny")
        payloads = [rng.normal(size=(n, HIDDEN)) for n in (1, 4, 2, 8, 1)]
        responses = inline_service.normalize_many(
            payloads, "tiny", layer_index=0, reference=True
        )
        reference_layer = artifact.layer(0, reference=True)
        for payload, response in zip(payloads, responses):
            assert np.array_equal(response.output, reference_layer(payload))
        assert not isinstance(reference_layer, HaanNormalization)

    def test_stream_shares_context_across_chunks(self, registry, rng):
        """A stream's anchor-layer chunk feeds the skipped layer's predictor."""
        artifact = registry.get("tiny")
        anchor, last = artifact.config.skip_range
        skipped = min(anchor + 1, last)
        service = NormalizationService(
            registry=registry,
            config=BatcherConfig(max_batch_size=4, max_wait=0.0),
            threaded=False,
        )
        chunk = rng.normal(size=(3, HIDDEN))
        context = ActivationContext()
        list(service.stream([chunk], "tiny", layer_index=anchor, context=context))
        batched = service.normalize(
            chunk, "tiny", layer_index=skipped, context=context
        )
        ref_context = ActivationContext()
        artifact.layer(anchor)(chunk, ref_context)
        reference = artifact.layer(skipped)(chunk, ref_context)
        assert np.array_equal(batched.output, reference)
        assert batched.was_predicted
        service.close()

    def test_empty_payload_rejected_at_submission(self, inline_service):
        """A zero-row payload must never reach a micro-batch (it would
        corrupt the INT8 segment bookkeeping for co-batched requests)."""
        with pytest.raises(ValueError, match="non-empty"):
            inline_service.submit(np.empty((0, HIDDEN)), "tiny")
        with pytest.raises(ValueError, match="non-empty"):
            inline_service.submit(np.empty((0,)), "tiny")

    def test_wrong_width_payload_fails_only_that_request(self, inline_service, rng):
        futures = inline_service.submit_many(
            [rng.normal(size=(HIDDEN,)), rng.normal(size=(HIDDEN + 1,))], "tiny"
        )
        inline_service.batcher.drain_all()
        assert futures[0].result().output.shape == (HIDDEN,)
        with pytest.raises(ValueError, match="does not match hidden size"):
            futures[1].result()


class TestSubmitManyEdgeCases:
    """PR-6 hardening: empty bursts, single-row batches, bad dtypes."""

    def test_empty_burst_returns_no_futures(self, inline_service):
        assert inline_service.submit_many([], "tiny") == []
        assert inline_service.telemetry.snapshot()["requests_total"] == 0

    def test_single_row_batches_keep_vector_shape(self, inline_service, rng):
        payloads = [rng.normal(size=(HIDDEN,)) for _ in range(4)]
        responses = inline_service.normalize_many(payloads, "tiny")
        assert [r.output.shape for r in responses] == [(HIDDEN,)] * 4
        one_row = inline_service.normalize(rng.normal(size=(1, HIDDEN)), "tiny")
        assert one_row.output.shape == (1, HIDDEN)

    def test_mixed_dtype_payloads_rejected_before_enqueue(self, inline_service, rng):
        complex_payload = rng.normal(size=(2, HIDDEN)) + 1j
        with pytest.raises(ValueError, match="real-numeric"):
            inline_service.submit(complex_payload, "tiny")
        with pytest.raises(ValueError, match="real-numeric"):
            inline_service.submit_many(
                [rng.normal(size=(HIDDEN,)), complex_payload], "tiny"
            )
        with pytest.raises(ValueError, match="real-numeric"):
            inline_service.submit(np.array([["norm"] * HIDDEN]), "tiny")
        # The rejection happens at the front door: nothing was enqueued.
        assert inline_service.telemetry.snapshot()["requests_total"] == 0
        assert inline_service.telemetry.snapshot()["errors_total"] == 0


# ---------------------------------------------------------------------------
# Scheduler: ordering, coalescing and the latency trigger
# ---------------------------------------------------------------------------

class TestMicroBatcher:
    def test_fifo_order_within_bucket(self, registry, rng):
        service = NormalizationService(
            registry=registry,
            config=BatcherConfig(max_batch_size=3, max_wait=0.0),
            threaded=False,
        )
        payloads = [rng.normal(size=(HIDDEN,)) for _ in range(7)]
        futures = service.submit_many(payloads, "tiny", layer_index=0)
        executed = service.batcher.drain_once()
        assert executed == 3
        # Exactly the three oldest requests ran, in submission order.
        assert [f.done() for f in futures] == [True] * 3 + [False] * 4
        sizes = [f.result().batch_size for f in futures[:3]]
        assert sizes == [3, 3, 3]
        service.batcher.drain_all()
        ids = [f.result().request_id for f in futures]
        assert ids == sorted(ids)
        service.close()

    def test_size_bucketing_separates_small_and_large(self, registry, rng):
        service = NormalizationService(
            registry=registry,
            config=BatcherConfig(max_batch_size=8, max_wait=0.0),
            threaded=False,
        )
        small = service.submit(rng.normal(size=(HIDDEN,)), "tiny")
        large = service.submit(rng.normal(size=(32, HIDDEN)), "tiny")
        service.batcher.drain_all()
        # Different size classes never share a micro-batch.
        assert small.result().batch_size == 1
        assert large.result().batch_size == 1
        service.close()

    def test_max_batch_rows_caps_coalescing(self, registry, rng):
        service = NormalizationService(
            registry=registry,
            config=BatcherConfig(max_batch_size=8, max_wait=0.0, max_batch_rows=10),
            threaded=False,
        )
        futures = service.submit_many(
            [rng.normal(size=(4, HIDDEN)) for _ in range(4)], "tiny"
        )
        service.batcher.drain_once()
        assert [f.done() for f in futures] == [True, True, False, False]
        service.batcher.drain_all()
        service.close()

    def test_full_bucket_releases_ahead_of_older_partial_bucket(self, registry, rng):
        """The size trigger fires for any full bucket, even when an older,
        still-filling bucket would otherwise hold the queue until max_wait."""
        service = NormalizationService(
            registry=registry,
            config=BatcherConfig(max_batch_size=4, max_wait=30.0),
            threaded=False,
        )
        straggler = service.submit(rng.normal(size=(HIDDEN,)), "tiny", layer_index=1)
        full = service.submit_many(
            [rng.normal(size=(HIDDEN,)) for _ in range(4)], "tiny", layer_index=0
        )
        executed = service.batcher.drain_once(force=False)
        assert executed == 4
        assert all(f.done() for f in full) and not straggler.done()
        service.batcher.drain_all()
        service.close()

    def test_responses_do_not_alias_the_batch(self, registry, inline_service, rng):
        """Mutating one response must never corrupt a co-batched response."""
        payloads = [rng.normal(size=(HIDDEN,)) for _ in range(4)]
        responses = inline_service.normalize_many(payloads, "tiny", layer_index=0)
        expected = responses[1].output.copy()
        responses[0].output[:] = 0.0  # outputs are caller-owned copies
        assert np.array_equal(responses[1].output, expected)
        with pytest.raises(ValueError):  # statistics are frozen views
            responses[0].isd[:] = -1.0
        assert responses[1].batch_size == 4

    def test_max_wait_timeout_releases_partial_batch(self, registry, rng):
        """The latency trigger: a lone request must not wait for a full batch."""
        service = NormalizationService(
            registry=registry,
            config=BatcherConfig(max_batch_size=1024, max_wait=0.05),
        )
        try:
            start = time.perf_counter()
            response = service.normalize(rng.normal(size=(HIDDEN,)), "tiny")
            elapsed = time.perf_counter() - start
            assert response.batch_size == 1
            # Released by the timeout, not stuck until a size trigger.
            assert 0.01 <= elapsed < 5.0
            assert response.queue_wait >= 0.0
        finally:
            service.close()

    def test_size_trigger_fires_before_max_wait(self, registry, rng):
        """A full bucket releases immediately even under a long max_wait."""
        service = NormalizationService(
            registry=registry,
            config=BatcherConfig(max_batch_size=4, max_wait=30.0),
        )
        try:
            payloads = [rng.normal(size=(HIDDEN,)) for _ in range(4)]
            start = time.perf_counter()
            responses = service.normalize_many(payloads, "tiny")
            elapsed = time.perf_counter() - start
            assert elapsed < 5.0
            assert all(r.batch_size == 4 for r in responses)
        finally:
            service.close()

    def test_submit_after_close_is_rejected(self, registry, rng):
        """A request racing shutdown must fail loudly, never hang."""
        service = NormalizationService(
            registry=registry,
            config=BatcherConfig(max_batch_size=4, max_wait=0.001),
        )
        service.normalize(rng.normal(size=(HIDDEN,)), "tiny")
        service.close()
        with pytest.raises(RuntimeError, match="stopped"):
            service.submit(rng.normal(size=(HIDDEN,)), "tiny")

    def test_threaded_concurrent_submitters(self, registry, rng):
        service = NormalizationService(
            registry=registry,
            config=BatcherConfig(max_batch_size=16, max_wait=0.001),
        )
        artifact = registry.get("tiny")
        layer = artifact.layer(0)
        errors = []

        def client(seed):
            local = np.random.default_rng(seed)
            for _ in range(10):
                payload = local.normal(size=(HIDDEN,))
                response = service.normalize(payload, "tiny", layer_index=0)
                if not np.array_equal(response.output, layer(payload)):
                    errors.append(seed)

        threads = [threading.Thread(target=client, args=(s,)) for s in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.close()
        assert not errors
        assert service.telemetry.requests_total.value == 40


# ---------------------------------------------------------------------------
# Calibration registry
# ---------------------------------------------------------------------------

class TestCalibrationRegistry:
    def test_artifact_cached_and_hit_counted(self):
        calls = []

        def loader(model, dataset):
            calls.append((model, dataset))
            return _tiny_loader(model, dataset)

        registry = CalibrationRegistry(loader=loader, capacity=2)
        first = registry.get("tiny")
        second = registry.get("tiny")
        assert first is second
        assert calls == [("tiny", "default")]
        assert registry.stats.hits == 1 and registry.stats.misses == 1

    def test_lru_eviction_order(self):
        def loader(model, dataset):
            return object()  # artifact contents irrelevant to eviction

        registry = CalibrationRegistry(loader=loader, capacity=2)
        a = registry.get("a")
        registry.get("b")
        registry.get("a")  # refresh a; b is now least recently used
        registry.get("c")  # evicts b
        assert ("a", "default") in registry and ("c", "default") in registry
        assert ("b", "default") not in registry
        assert registry.stats.evictions == 1
        assert registry.get("a") is a

    def test_distinct_datasets_are_distinct_entries(self):
        registry = CalibrationRegistry(loader=lambda m, d: (m, d), capacity=4)
        assert registry.get("tiny", "wiki") != registry.get("tiny", "ptb")
        assert len(registry) == 2

    def test_loader_failure_propagates_and_is_not_cached(self):
        attempts = []

        def loader(model, dataset):
            attempts.append(model)
            raise RuntimeError("calibration corpus unavailable")

        registry = CalibrationRegistry(loader=loader)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                registry.get("tiny")
        assert len(attempts) == 2 and len(registry) == 0


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------

class TestTelemetry:
    def test_histogram_percentiles_bound_the_data(self):
        hist = LatencyHistogram()
        values = [1e-5, 2e-5, 5e-5, 1e-4, 1e-3, 1e-2]
        for value in values:
            hist.observe(value)
        assert hist.count == 6
        assert hist.percentile(50) >= 2e-5
        assert hist.percentile(99) >= 1e-2 * 0.99
        assert hist.percentile(100) >= max(values) * 0.99
        np.testing.assert_allclose(hist.mean, np.mean(values))

    def test_observe_many_matches_observe(self):
        loop, bulk = LatencyHistogram(), LatencyHistogram()
        values = np.abs(np.random.default_rng(0).normal(1e-3, 1e-3, size=200)) + 1e-7
        for value in values:
            loop.observe(value)
        bulk.observe_many(values)
        assert np.array_equal(loop.counts, bulk.counts)
        assert loop.count == bulk.count

    def test_service_telemetry_rates(self, registry, rng):
        telemetry = ServingTelemetry()
        service = NormalizationService(
            registry=registry,
            config=BatcherConfig(max_batch_size=4, max_wait=0.0),
            telemetry=telemetry,
            threaded=False,
        )
        artifact = registry.get("tiny")
        anchor, last = artifact.config.skip_range
        skipped = min(anchor + 1, last)
        service.normalize_many(
            [rng.normal(size=(HIDDEN,)) for _ in range(8)], "tiny", layer_index=0
        )
        service.normalize_many(
            [rng.normal(size=(HIDDEN,)) for _ in range(8)], "tiny", layer_index=skipped
        )
        snap = telemetry.snapshot()
        assert snap["requests_total"] == 16
        assert snap["batches_total"] == 4
        assert snap["mean_batch_size"] == 4.0
        assert telemetry.skip_rate == 0.5  # the skipped-layer half
        assert telemetry.subsample_rate >= 0.5  # computed half subsamples
        assert snap["requests_per_second"] > 0
        assert "queue wait" in telemetry.format_table()
        service.close()

    def test_error_counted(self, registry):
        telemetry = ServingTelemetry()
        service = NormalizationService(
            registry=CalibrationRegistry(
                loader=lambda m, d: (_ for _ in ()).throw(RuntimeError("boom"))
            ),
            config=BatcherConfig(max_batch_size=2, max_wait=0.0),
            telemetry=telemetry,
            threaded=False,
        )
        future = service.submit(np.zeros(HIDDEN), "tiny")
        service.batcher.drain_all()
        with pytest.raises(RuntimeError):
            future.result()
        assert telemetry.errors_total.value == 1
        service.close()
