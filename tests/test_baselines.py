"""Tests of the DFX / SOLE / MHAA / GPU baseline models and the paper's comparisons."""

import pytest

from repro.core.config import paper_config_for
from repro.hardware.accelerator import HaanAccelerator
from repro.hardware.baselines import (
    DfxBaseline,
    GpuBaseline,
    MhaaBaseline,
    SoleBaseline,
    all_baselines,
)
from repro.hardware.configs import HAAN_V1
from repro.hardware.workload import NormalizationWorkload


def _gpt2_workload(seq_len=128):
    config = paper_config_for("gpt2-1.5b").with_overrides(skip_range=(85, 95), subsample_length=800)
    return NormalizationWorkload.from_model_name("gpt2-1.5b", seq_len=seq_len, haan_config=config)


def _opt_workload(seq_len=128):
    return NormalizationWorkload.from_model_name(
        "opt-2.7b", seq_len=seq_len, haan_config=paper_config_for("opt-2.7b")
    )


class TestBaselineMechanics:
    def test_all_baselines_registered(self):
        baselines = all_baselines()
        assert set(baselines) == {"DFX", "SOLE", "MHAA", "GPU"}

    def test_baselines_ignore_haan_optimizations(self):
        dfx = DfxBaseline()
        optimized = _gpt2_workload()
        plain = optimized.without_optimizations()
        assert dfx.workload_latency(optimized).latency_seconds == pytest.approx(
            dfx.workload_latency(plain).latency_seconds
        )

    def test_latency_scales_with_sequence_length(self):
        for baseline in all_baselines().values():
            short = baseline.workload_latency(_gpt2_workload(128)).latency_seconds
            long = baseline.workload_latency(_gpt2_workload(1024)).latency_seconds
            assert long > short

    def test_fixed_function_cycles_per_row(self):
        sole = SoleBaseline()
        workload = _gpt2_workload().without_optimizations()
        assert sole.cycles_per_row(workload) == 2 * -(-1600 // 200) + 2

    def test_gpu_overhead_amortises(self):
        gpu = GpuBaseline()
        per_row_short = gpu.per_row_seconds(_gpt2_workload(16).without_optimizations())
        per_row_long = gpu.per_row_seconds(_gpt2_workload(1024).without_optimizations())
        assert per_row_short > per_row_long

    def test_invalid_gpu_parameters_rejected(self):
        with pytest.raises(ValueError):
            GpuBaseline(effective_rate_elems_per_s=0.0)

    def test_power_attributes(self):
        assert DfxBaseline().nominal_power_w > SoleBaseline().nominal_power_w
        assert MhaaBaseline().power_watts(_gpt2_workload()) == pytest.approx(5.1)


class TestPaperComparisons:
    """The who-wins / by-what-factor shapes of Figures 8 and 9."""

    def test_gpt2_latency_ordering(self):
        haan = HaanAccelerator(HAAN_V1).workload_latency(_gpt2_workload()).latency_seconds
        latencies = {
            name: b.workload_latency(_gpt2_workload()).latency_seconds
            for name, b in all_baselines().items()
        }
        assert haan < latencies["SOLE"] < latencies["MHAA"] < latencies["GPU"] < latencies["DFX"]

    def test_gpt2_factors_match_paper_band(self):
        """Paper: ~11.7x vs DFX, ~10.5x vs GPU, ~1.25x vs SOLE, ~2.42x vs MHAA."""
        workload = _gpt2_workload()
        haan = HaanAccelerator(HAAN_V1).workload_latency(workload).latency_seconds
        ratio = {
            name: b.workload_latency(workload).latency_seconds / haan
            for name, b in all_baselines().items()
        }
        assert 9.0 <= ratio["DFX"] <= 14.0
        assert 8.0 <= ratio["GPU"] <= 13.0
        assert 1.1 <= ratio["SOLE"] <= 1.8
        assert 2.0 <= ratio["MHAA"] <= 3.0

    def test_opt_factors_match_paper_band(self):
        workload = _opt_workload()
        haan = HaanAccelerator(HAAN_V1).workload_latency(workload).latency_seconds
        ratio = {
            name: b.workload_latency(workload).latency_seconds / haan
            for name, b in all_baselines().items()
        }
        assert ratio["DFX"] > 9.0
        assert ratio["GPU"] > 8.0
        assert 1.1 <= ratio["SOLE"] <= 2.0
        assert 2.0 <= ratio["MHAA"] <= 3.2

    def test_power_reduction_vs_dfx_exceeds_60_percent(self):
        workload = _gpt2_workload()
        haan_power = HaanAccelerator(HAAN_V1).power(workload).total_w
        dfx_power = DfxBaseline().power_watts(workload)
        assert 1.0 - haan_power / dfx_power > 0.60

    def test_haan_power_below_sole_and_mhaa(self):
        workload = _gpt2_workload()
        haan_power = HaanAccelerator(HAAN_V1).power(workload).total_w
        assert haan_power < SoleBaseline().power_watts(workload)
        assert haan_power < MhaaBaseline().power_watts(workload)
