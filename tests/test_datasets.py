"""Tests of the synthetic corpora and multiple-choice item generators."""

import pytest

from repro.llm.datasets import (
    CorpusConfig,
    SyntheticCorpus,
    TASK_SHORT_NAMES,
    available_tasks,
    calibration_texts,
    generate_choice_items,
    perplexity_texts,
)


class TestCorpus:
    def test_documents_are_deterministic(self):
        a = SyntheticCorpus(CorpusConfig(seed=5)).documents(4)
        b = SyntheticCorpus(CorpusConfig(seed=5)).documents(4)
        assert a == b

    def test_different_seeds_differ(self):
        a = SyntheticCorpus(CorpusConfig(seed=5)).documents(2)
        b = SyntheticCorpus(CorpusConfig(seed=6)).documents(2)
        assert a != b

    def test_document_count(self):
        docs = SyntheticCorpus().documents(7)
        assert len(docs) == 7

    def test_documents_are_nonempty_text(self):
        for doc in SyntheticCorpus().documents(3):
            assert isinstance(doc, str)
            assert len(doc.split()) > 5

    def test_calibration_texts_count_matches_paper_default(self):
        assert len(calibration_texts()) == 100

    def test_perplexity_texts(self):
        assert len(perplexity_texts(8)) == 8


class TestTasks:
    def test_five_tasks_available(self):
        tasks = available_tasks()
        assert len(tasks) == 5
        assert set(tasks) == set(TASK_SHORT_NAMES)

    def test_choice_counts_per_task(self):
        assert len(generate_choice_items("winogrande", 3)[0].choices) == 2
        assert len(generate_choice_items("hellaswag", 3)[0].choices) == 4

    def test_items_deterministic(self):
        a = generate_choice_items("piqa", 5)
        b = generate_choice_items("piqa", 5)
        assert [i.context for i in a] == [i.context for i in b]

    def test_seed_offset_changes_items(self):
        a = generate_choice_items("piqa", 5)
        b = generate_choice_items("piqa", 5, seed_offset=1)
        assert [i.context for i in a] != [i.context for i in b]

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            generate_choice_items("mmlu", 3)

    def test_item_ids_sequential(self):
        items = generate_choice_items("arc_easy", 4)
        assert [i.item_id for i in items] == [0, 1, 2, 3]
