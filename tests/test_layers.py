"""Tests of the transformer building blocks."""

import numpy as np
import pytest

from repro.llm.layers import (
    AttentionWeights,
    Embedding,
    FeedForward,
    Linear,
    MLPWeights,
    MultiHeadAttention,
    causal_mask,
    gelu,
    log_softmax,
    softmax,
)


class TestActivations:
    def test_gelu_limits(self):
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
        assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)
        assert gelu(np.array([0.0]))[0] == 0.0

    def test_gelu_monotone_on_positives(self):
        x = np.linspace(0, 5, 50)
        assert np.all(np.diff(gelu(x)) > 0)

    def test_softmax_sums_to_one(self, rng):
        probs = softmax(rng.normal(size=(4, 7)))
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_stable_for_large_inputs(self):
        probs = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.all(np.isfinite(probs))

    def test_log_softmax_consistent_with_softmax(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(np.exp(log_softmax(x)), softmax(x), atol=1e-9)

    def test_causal_mask_shape_and_content(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert mask[0, 1] == -np.inf
        assert mask[3, 0] == 0.0


class TestLinearAndEmbedding:
    def test_linear_matches_matmul(self, rng):
        w = rng.normal(size=(8, 4))
        b = rng.normal(size=4)
        layer = Linear(w, b)
        x = rng.normal(size=(3, 8))
        np.testing.assert_allclose(layer(x), x @ w + b)

    def test_linear_shape_validation(self, rng):
        with pytest.raises(ValueError):
            Linear(rng.normal(size=(8,)))
        with pytest.raises(ValueError):
            Linear(rng.normal(size=(8, 4)), bias=np.zeros(5))

    def test_embedding_lookup(self, rng):
        table = rng.normal(size=(10, 4))
        emb = Embedding(table)
        out = emb(np.array([[1, 2], [3, 4]]))
        np.testing.assert_allclose(out[0, 0], table[1])
        assert out.shape == (2, 2, 4)

    def test_embedding_out_of_range_rejected(self, rng):
        emb = Embedding(rng.normal(size=(10, 4)))
        with pytest.raises(ValueError):
            emb(np.array([10]))


def _make_attention(rng, hidden=16, heads=4):
    def lin():
        return Linear(rng.normal(size=(hidden, hidden)) / np.sqrt(hidden))

    return MultiHeadAttention(AttentionWeights(wq=lin(), wk=lin(), wv=lin(), wo=lin()), num_heads=heads)


class TestAttention:
    def test_output_shape(self, rng):
        attn = _make_attention(rng)
        x = rng.normal(size=(2, 6, 16))
        assert attn(x).shape == (2, 6, 16)

    def test_causality(self, rng):
        """Changing a later token must not affect earlier outputs."""
        attn = _make_attention(rng)
        x = rng.normal(size=(1, 6, 16))
        base = attn(x)
        modified = x.copy()
        modified[0, 5] += 10.0
        out = attn(modified)
        np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-9)
        assert not np.allclose(out[0, 5], base[0, 5])

    def test_head_dim_divisibility_enforced(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(
                AttentionWeights(
                    wq=Linear(rng.normal(size=(15, 15))),
                    wk=Linear(rng.normal(size=(15, 15))),
                    wv=Linear(rng.normal(size=(15, 15))),
                    wo=Linear(rng.normal(size=(15, 15))),
                ),
                num_heads=4,
            )


class TestFeedForward:
    def test_output_shape_and_formula(self, rng):
        w_in = Linear(rng.normal(size=(8, 16)))
        w_out = Linear(rng.normal(size=(16, 8)))
        mlp = FeedForward(MLPWeights(w_in=w_in, w_out=w_out))
        x = rng.normal(size=(2, 3, 8))
        np.testing.assert_allclose(mlp(x), w_out(gelu(w_in(x))))
