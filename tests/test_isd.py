"""Tests of ISD computation, profiling and the Figure 2 phenomenon."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isd import (
    IsdProfile,
    compute_isd,
    linear_fit,
    pearson_correlation,
    profile_model_isd,
)
from repro.llm.config import NormKind
from repro.llm.datasets import calibration_texts


class TestComputeIsd:
    def test_layernorm_isd_matches_variance(self, rng):
        rows = rng.normal(0, 2.0, size=(5, 128))
        isd = compute_isd(rows, NormKind.LAYERNORM)
        expected = 1.0 / np.sqrt(rows.var(axis=1) + 1e-5)
        np.testing.assert_allclose(isd, expected)

    def test_rmsnorm_isd_uses_mean_square(self, rng):
        rows = rng.normal(3.0, 1.0, size=(5, 128))
        isd = compute_isd(rows, NormKind.RMSNORM)
        expected = 1.0 / np.sqrt(np.mean(rows**2, axis=1) + 1e-5)
        np.testing.assert_allclose(isd, expected)

    def test_1d_input_accepted(self, rng):
        assert compute_isd(rng.normal(size=64)).shape == (1,)

    def test_scaling_input_scales_isd_inversely(self, rng):
        rows = rng.normal(size=(3, 256))
        ratio = compute_isd(rows * 2.0) / compute_isd(rows)
        np.testing.assert_allclose(ratio, 0.5, atol=1e-3)


class TestPearson:
    def test_perfect_negative_correlation(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_perfect_positive_correlation(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 3 * x + 1) == pytest.approx(1.0)

    def test_degenerate_inputs_return_zero(self):
        assert pearson_correlation([1.0], [2.0]) == 0.0
        assert pearson_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=3, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_correlation_bounded(self, values):
        r = pearson_correlation(np.arange(len(values)), values)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestLinearFit:
    def test_recovers_exact_line(self):
        x = np.arange(20.0)
        slope, intercept = linear_fit(x, 0.5 * x - 3.0)
        assert slope == pytest.approx(0.5)
        assert intercept == pytest.approx(-3.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [2.0])


class TestIsdProfile:
    @pytest.fixture(scope="class")
    def profile(self, tiny_model):
        texts = calibration_texts(6, seed=11)
        return profile_model_isd(tiny_model, texts, max_seq_len=20, batch_size=3)

    def test_shape(self, profile, tiny_model):
        assert profile.num_layers == tiny_model.num_norm_layers
        assert profile.num_tokens > 0
        assert profile.isd_matrix.shape == (profile.num_tokens, profile.num_layers)

    def test_isd_decays_with_depth(self, profile):
        log_isd = profile.mean_log_isd()
        assert log_isd[-2] < log_isd[0]

    def test_tail_is_negatively_correlated_with_depth(self, profile):
        assert profile.tail_linearity(0.5) < -0.8

    def test_decay_slope_negative(self, profile):
        assert profile.decay_slope(2, profile.num_layers - 1) < 0

    def test_per_token_curve(self, profile):
        curve = profile.log_isd_of_token(0)
        assert curve.shape == (profile.num_layers,)

    def test_invalid_tail_fraction_rejected(self, profile):
        with pytest.raises(ValueError):
            profile.tail_linearity(0.0)

    def test_from_trace_constructor(self, tiny_model, small_token_batch):
        trace = tiny_model.collect_statistics([small_token_batch])
        profile = IsdProfile.from_trace(trace)
        assert profile.num_layers == tiny_model.num_norm_layers
