"""RTL datapath units checked against their functional golden models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.rtl import (
    AccumulatorRtl,
    AdderTreeRtl,
    Fp2FxRtl,
    Fx2FpRtl,
    InvSqrtRtl,
    NormUnitRtl,
    StatsCalculatorRtl,
)
from repro.hardware.units.adder_tree import AdderTree
from repro.hardware.units.sqrt_inverter import SquareRootInverter
from repro.hdl import Module, Monitor, Simulator, StreamDriver
from repro.numerics.fixedpoint import FixedPointFormat
from repro.numerics.floating import FP32, to_bits

STATS_FMT = FixedPointFormat.statistics()


def run_beats(dut_factory, beats, monitor_signals, cycles_extra=20):
    """Build a tiny testbench: drive beats into the DUT, monitor outputs."""
    top = Module("tb")
    dut = dut_factory()
    top.dut = dut
    top.driver = StreamDriver("driver", dut.in_codes if hasattr(dut, "in_codes") else dut.in_lanes,
                              dut.in_valid, beats)
    monitors = {}
    for name, (data, qualifier) in monitor_signals(dut).items():
        monitor = Monitor(f"mon_{name}", data, qualifier)
        setattr(top, f"mon_{name}", monitor)
        monitors[name] = monitor
    sim = Simulator(top)
    sim.run(len(beats) + cycles_extra)
    return dut, monitors


class TestAdderTreeRtl:
    def test_structure_matches_functional_tree(self):
        for width in (1, 2, 3, 4, 7, 16, 64):
            rtl = AdderTreeRtl("tree", width=width)
            functional = AdderTree(width)
            assert rtl.depth == functional.depth

    def test_single_beat_sum(self):
        beats = [list(range(1, 9))]
        dut, monitors = run_beats(
            lambda: AdderTreeRtl("tree", width=8),
            beats,
            lambda d: {"sum": (d.out_sum, d.out_valid)},
        )
        assert monitors["sum"].scalar_samples() == [sum(range(1, 9))]

    def test_streamed_beats_emerge_in_order(self):
        beats = [[1, 2, 3, 4], [10, 20, 30, 40], [-5, 5, -5, 5]]
        dut, monitors = run_beats(
            lambda: AdderTreeRtl("tree", width=4),
            beats,
            lambda d: {"sum": (d.out_sum, d.out_valid)},
        )
        assert monitors["sum"].scalar_samples() == [10, 100, 0]

    def test_latency_equals_depth(self):
        dut = AdderTreeRtl("tree", width=8)
        top = Module("tb")
        top.dut = dut
        top.driver = StreamDriver("driver", dut.in_lanes, dut.in_valid, [[1] * 8])
        top.monitor = Monitor("monitor", dut.out_sum, dut.out_valid)
        sim = Simulator(top)
        sim.run(dut.depth + 3)
        assert top.monitor.sample_cycles == [dut.latency]

    def test_width_one_tree(self):
        beats = [[7], [9]]
        dut, monitors = run_beats(
            lambda: AdderTreeRtl("tree", width=1),
            beats,
            lambda d: {"sum": (d.out_sum, d.out_valid)},
        )
        assert monitors["sum"].scalar_samples() == [7, 9]

    def test_odd_width_tree(self):
        beats = [[1, 2, 3, 4, 5]]
        dut, monitors = run_beats(
            lambda: AdderTreeRtl("tree", width=5),
            beats,
            lambda d: {"sum": (d.out_sum, d.out_valid)},
        )
        assert monitors["sum"].scalar_samples() == [15]

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            AdderTreeRtl("tree", width=0)

    @given(
        lanes=st.lists(st.integers(min_value=-(2**20), max_value=2**20), min_size=2, max_size=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_integer_sum(self, lanes):
        width = len(lanes)
        dut, monitors = run_beats(
            lambda: AdderTreeRtl("tree", width=width),
            [lanes],
            lambda d: {"sum": (d.out_sum, d.out_valid)},
        )
        assert monitors["sum"].scalar_samples() == [sum(lanes)]


class TestAccumulatorRtl:
    def _build(self):
        top = Module("tb")
        acc = AccumulatorRtl("acc")
        top.acc = acc
        return top, acc

    def test_accumulates_valid_beats(self):
        top, acc = self._build()
        sim = Simulator(top)
        acc.clear.drive(0)
        for value in (100, 200, 300):
            acc.in_value.drive(value)
            acc.in_valid.drive(1)
            sim.step()
        acc.in_valid.drive(0)
        sim.step()
        assert acc.total.value == 600
        assert acc.beats_accumulated == 3

    def test_clear_resets_total(self):
        top, acc = self._build()
        sim = Simulator(top)
        acc.in_value.drive(50)
        acc.in_valid.drive(1)
        acc.clear.drive(0)
        sim.run(2)
        acc.clear.drive(1)
        sim.step()
        assert acc.total.value == 0
        assert acc.beats_accumulated == 0

    def test_output_saturates_to_format(self):
        top, acc = self._build()
        sim = Simulator(top)
        huge = STATS_FMT.max_code * 4
        acc.clear.drive(0)
        acc.in_value.drive(huge)
        acc.in_valid.drive(1)
        sim.step()
        acc.in_valid.drive(0)
        sim.step()
        assert acc.out_code.value == STATS_FMT.max_code


class TestConvertersRtl:
    def test_fp2fx_round_trip(self):
        values = np.array([0.5, -1.25, 3.75, 0.0])
        bits = to_bits(values, FP32)
        top = Module("tb")
        dut = Fp2FxRtl("fp2fx", lanes=4, float_format=FP32, fixed_format=STATS_FMT)
        top.dut = dut
        top.driver = StreamDriver("driver", dut.in_bits, dut.in_valid, [bits])
        top.monitor = Monitor("monitor", dut.out_codes, dut.out_valid)
        Simulator(top).run(4)
        assert top.monitor.num_samples == 1
        decoded = STATS_FMT.decode(top.monitor.samples[0])
        np.testing.assert_allclose(decoded, values, atol=STATS_FMT.scale)

    def test_fp2fx_bypass_passes_codes(self):
        codes = [1, -2, 3, -4]
        top = Module("tb")
        dut = Fp2FxRtl("fp2fx", lanes=4, bypass=True)
        top.dut = dut
        top.driver = StreamDriver("driver", dut.in_bits, dut.in_valid, [codes])
        top.monitor = Monitor("monitor", dut.out_codes, dut.out_valid)
        Simulator(top).run(4)
        assert list(top.monitor.samples[0]) == [1, -2, 3, -4]

    def test_fp2fx_counts_elements(self):
        top = Module("tb")
        dut = Fp2FxRtl("fp2fx", lanes=2)
        top.dut = dut
        top.driver = StreamDriver(
            "driver", dut.in_bits, dut.in_valid, [[0, 0], [0, 0], [0, 0]]
        )
        Simulator(top).run(6)
        assert dut.elements_converted.value == 6

    def test_fx2fp_round_trip(self):
        values = np.array([0.125, -2.5])
        codes = STATS_FMT.encode(values)
        top = Module("tb")
        dut = Fx2FpRtl("fx2fp", lanes=2, float_format=FP32, fixed_format=STATS_FMT)
        top.dut = dut
        top.driver = StreamDriver("driver", dut.in_codes, dut.in_valid, [codes])
        top.monitor = Monitor("monitor", dut.out_bits, dut.out_valid)
        Simulator(top).run(4)
        assert top.monitor.num_samples == 1
        np.testing.assert_allclose(dut.decoded_output(), values, rtol=1e-6)

    def test_latency_is_one_cycle(self):
        top = Module("tb")
        dut = Fp2FxRtl("fp2fx", lanes=1)
        top.dut = dut
        top.driver = StreamDriver("driver", dut.in_bits, dut.in_valid, [[0]])
        top.monitor = Monitor("monitor", dut.out_codes, dut.out_valid)
        Simulator(top).run(4)
        assert top.monitor.sample_cycles == [1]


class TestInvSqrtRtl:
    def _run(self, variances, newton_format=None):
        top = Module("tb")
        dut = InvSqrtRtl("invsqrt")
        top.dut = dut
        codes = [[int(STATS_FMT.encode(v))] for v in variances]
        top.driver = StreamDriver("driver", dut.in_code, dut.in_valid, codes)
        top.monitor = Monitor("monitor", dut.out_code, dut.out_valid)
        Simulator(top).run(len(codes) + dut.latency + 4)
        outputs = [float(dut.newton_format.decode(np.array(s[0]))) for s in top.monitor.samples]
        return dut, top.monitor, outputs

    def test_latency_is_six_cycles(self):
        dut, monitor, _ = self._run([1.0])
        assert monitor.sample_cycles == [dut.latency]

    def test_matches_functional_golden_model(self):
        variances = [0.25, 1.0, 4.0, 0.01, 16.0, 2.5]
        golden = SquareRootInverter().compute(np.array(variances))
        _, _, outputs = self._run(variances)
        np.testing.assert_allclose(outputs, golden, rtol=2e-3, atol=1e-4)

    def test_close_to_exact_inverse_sqrt(self):
        variances = [0.5, 2.0, 8.0]
        _, _, outputs = self._run(variances)
        exact = 1.0 / np.sqrt(np.array(variances))
        np.testing.assert_allclose(outputs, exact, rtol=5e-3)

    def test_pipelined_throughput_one_per_cycle(self):
        variances = [1.0, 2.0, 3.0, 4.0]
        dut, monitor, _ = self._run(variances)
        cycles = monitor.sample_cycles
        assert len(cycles) == len(variances)
        assert all(b - a == 1 for a, b in zip(cycles, cycles[1:]))

    def test_activity_counter(self):
        dut, _, _ = self._run([1.0, 2.0, 3.0])
        assert dut.values_processed.value == 3

    @given(variance=st.floats(min_value=1e-3, max_value=200.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_relative_error_bounded(self, variance):
        # Variances are bounded by the Q9.23 Newton format range (+/-256),
        # the same operating envelope the functional golden model assumes.
        _, _, outputs = self._run([variance])
        exact = 1.0 / np.sqrt(variance)
        assert abs(outputs[0] - exact) / exact < 0.01


class StatsHarness(Module):
    """Feeds a full row into the statistics calculator with last/count."""

    def __init__(self, dut: StatsCalculatorRtl, row_codes: np.ndarray, effective: int):
        super().__init__("stats_tb")
        self.dut = dut
        self._codes = row_codes
        self._effective = effective
        self._beats = int(np.ceil(effective / dut.width)) if effective else 0
        self._beat = 0

    def propagate(self) -> None:
        width = self.dut.width
        self.dut.count.drive(self._effective)
        if self._beat < self._beats:
            start = self._beat * width
            stop = min(start + width, self._effective)
            lanes = np.zeros(width, dtype=np.int64)
            lanes[: stop - start] = self._codes[start:stop]
            self.dut.in_codes.drive(lanes)
            self.dut.in_valid.drive(1)
            self.dut.in_last.drive(1 if self._beat == self._beats - 1 else 0)
        else:
            self.dut.in_valid.drive(0)
            self.dut.in_last.drive(0)

    def clock_edge(self) -> None:
        if self._beat < self._beats:
            self._beat += 1


def run_stats(row, width=8, compute_mean=True, subsample=None):
    row = np.asarray(row, dtype=np.float64)
    effective = row.size if subsample is None else min(subsample, row.size)
    dut = StatsCalculatorRtl("stats", width=width, compute_mean=compute_mean)
    codes = STATS_FMT.encode(row)
    harness = StatsHarness(dut, codes, effective)
    top = Module("tb")
    top.harness = harness
    sim = Simulator(top)
    sim.run_until(lambda s: dut.out_valid.value == 1, max_cycles=500)
    return dut


class TestStatsCalculatorRtl:
    def test_mean_and_variance_match_numpy(self, rng):
        row = rng.normal(0.0, 1.0, size=64)
        dut = run_stats(row, width=8)
        assert dut.decoded_mean() == pytest.approx(float(row.mean()), abs=1e-3)
        assert dut.decoded_variance() == pytest.approx(float(row.var()) + dut.eps, abs=5e-3)

    def test_rms_mode_reports_zero_mean(self, rng):
        row = rng.normal(1.0, 0.5, size=32)
        dut = run_stats(row, width=8, compute_mean=False)
        assert dut.decoded_mean() == 0.0
        expected = float(np.mean(row * row)) + dut.eps
        assert dut.decoded_variance() == pytest.approx(expected, abs=5e-3)

    def test_subsampled_statistics_use_prefix(self, rng):
        row = rng.normal(0.0, 2.0, size=64)
        subsample = 16
        dut = run_stats(row, width=8, subsample=subsample)
        prefix = row[:subsample]
        assert dut.decoded_mean() == pytest.approx(float(prefix.mean()), abs=1e-3)
        assert dut.decoded_variance() == pytest.approx(float(prefix.var()) + dut.eps, abs=5e-3)

    def test_valid_pulse_timing_matches_cycle_model(self, rng):
        row = rng.normal(size=24)
        width = 8
        dut = StatsCalculatorRtl("stats", width=width)
        harness = StatsHarness(dut, STATS_FMT.encode(row), row.size)
        top = Module("tb")
        top.harness = harness
        sim = Simulator(top)
        cycles = sim.run_until(lambda s: dut.out_valid.value == 1, max_cycles=100)
        assert cycles == dut.cycles_for_row(row.size)

    def test_variance_never_negative(self, rng):
        row = np.full(16, 3.0)
        dut = run_stats(row, width=4)
        assert dut.decoded_variance() >= dut.eps / 2

    def test_matches_functional_calculator(self, rng):
        from repro.hardware.units.stats_calculator import InputStatisticsCalculator
        from repro.numerics.quantization import DataFormat

        row = rng.normal(0.0, 1.5, size=48)
        functional = InputStatisticsCalculator(width=8, data_format=DataFormat.FP32)
        golden = functional.compute(row[None, :])
        dut = run_stats(row, width=8)
        assert dut.decoded_mean() == pytest.approx(float(golden.mean[0]), abs=2e-3)
        assert dut.decoded_variance() == pytest.approx(float(golden.variance[0]), rel=2e-3, abs=2e-3)

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            StatsCalculatorRtl("stats", width=0)


class NormHarness(Module):
    """Streams a row through the normalization unit with fixed mean/ISD."""

    def __init__(self, dut: NormUnitRtl, row, gamma, beta, mean, isd):
        super().__init__("norm_tb")
        self.dut = dut
        fmt = dut.fixed_format
        self._row = fmt.encode(np.asarray(row, dtype=np.float64))
        self._gamma = fmt.encode(np.asarray(gamma, dtype=np.float64))
        self._beta = fmt.encode(np.asarray(beta, dtype=np.float64))
        self._mean_code = int(fmt.encode(mean))
        self._isd_code = int(dut.isd_format.encode(isd))
        self._length = len(row)
        self._beats = dut.beats_for(self._length)
        self._beat = 0
        self.collected = []

    def propagate(self) -> None:
        width = self.dut.width
        self.dut.mean_code.drive(self._mean_code)
        self.dut.isd_code.drive(self._isd_code)
        if self._beat < self._beats:
            start = self._beat * width
            stop = min(start + width, self._length)
            lanes = np.zeros(width, dtype=np.int64)
            gamma = np.zeros(width, dtype=np.int64)
            beta = np.zeros(width, dtype=np.int64)
            lanes[: stop - start] = self._row[start:stop]
            gamma[: stop - start] = self._gamma[start:stop]
            beta[: stop - start] = self._beta[start:stop]
            self.dut.in_codes.drive(lanes)
            self.dut.alpha_codes.drive(gamma)
            self.dut.beta_codes.drive(beta)
            self.dut.in_valid.drive(1)
        else:
            self.dut.in_valid.drive(0)

    def clock_edge(self) -> None:
        if self.dut.out_valid.value:
            self.collected.append(self.dut.out_codes.values)
        if self._beat < self._beats:
            self._beat += 1


def run_norm(row, gamma, beta, mean, isd, width=8):
    dut = NormUnitRtl("norm", width=width)
    harness = NormHarness(dut, row, gamma, beta, mean, isd)
    top = Module("tb")
    top.harness = harness
    sim = Simulator(top)
    sim.run(harness._beats + dut.latency + 4)
    codes = np.concatenate(harness.collected)[: len(row)]
    return dut.fixed_format.decode(codes)


class TestNormUnitRtl:
    def test_matches_reference_layernorm_row(self, rng):
        row = rng.normal(0.0, 1.0, size=32)
        gamma = rng.normal(1.0, 0.1, size=32)
        beta = rng.normal(0.0, 0.1, size=32)
        mean = float(row.mean())
        isd = float(1.0 / np.sqrt(row.var() + 1e-5))
        out = run_norm(row, gamma, beta, mean, isd)
        expected = gamma * (row - mean) * isd + beta
        np.testing.assert_allclose(out, expected, atol=5e-3)

    def test_identity_affine(self, rng):
        row = rng.normal(size=16)
        out = run_norm(row, np.ones(16), np.zeros(16), 0.0, 1.0)
        np.testing.assert_allclose(out, row, atol=5e-3)

    def test_matches_functional_norm_unit(self, rng):
        from repro.hardware.units.norm_unit import NormalizationUnit
        from repro.numerics.quantization import DataFormat

        row = rng.normal(0.0, 2.0, size=24)
        gamma = np.ones(24)
        beta = np.zeros(24)
        mean = float(row.mean())
        isd = float(1.0 / np.sqrt(row.var() + 1e-5))
        functional = NormalizationUnit(width=8, data_format=DataFormat.FP32)
        golden = functional.normalize(row[None, :], np.array([mean]), np.array([isd]), gamma, beta)
        out = run_norm(row, gamma, beta, mean, isd)
        np.testing.assert_allclose(out, golden[0], atol=5e-3)

    def test_latency_is_two_cycles(self, rng):
        dut = NormUnitRtl("norm", width=4)
        harness = NormHarness(dut, np.ones(4), np.ones(4), np.zeros(4), 0.0, 1.0)
        monitor = Monitor("monitor", dut.out_codes, dut.out_valid)
        top = Module("tb")
        top.harness = harness
        top.monitor = monitor
        Simulator(top).run(6)
        assert monitor.sample_cycles == [dut.latency]

    def test_elements_processed_counter(self, rng):
        row = rng.normal(size=32)
        dut = NormUnitRtl("norm", width=8)
        harness = NormHarness(dut, row, np.ones(32), np.zeros(32), 0.0, 1.0)
        top = Module("tb")
        top.harness = harness
        Simulator(top).run(10)
        assert dut.elements_processed.value == 32

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            NormUnitRtl("norm", width=0)
