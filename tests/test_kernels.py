"""Golden-equivalence suite: vectorized kernels vs the scalar references.

Every kernel in :mod:`repro.numerics.kernels` must be **bit-identical** to
the retained reference implementation it replaces.  These tests therefore
never use tolerances for codec / fixed-point comparisons: raw codes are
compared with exact integer equality and decoded/normalized values with
exact float equality (NaN positions and signs included).

Coverage follows the kernel inventory:

* minifloat encode/decode -- exhaustive over **all** codes of every format
  (256 for the FP8 formats, 65536 for bfloat16), plus rounding-tie
  midpoints, subnormals, NaN/inf edge codes, signed zeros and overflow.
* fixed-point multiply/shift/sum -- randomized products across format
  pairs including negative shifts and the chunked wide-format sum.
* rounding modes -- all four modes against the pre-kernel formula.
* rowwise statistics and the fused normalization -- every HAAN
  configuration axis (storage format x norm kind x subsample policy x
  skipped/computed x hardware inv-sqrt) against
  ``forward_batched_reference``, with empty and one-element-row stacks.
* the serving workspace -- buffer reuse never changes results.
* the telemetry latency reservoir -- bounded memory, exact window.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.haan_norm import HaanNormalization
from repro.core.predictor import IsdPredictor
from repro.core.subsampling import SubsamplePolicy, SubsampleSettings, subsampled_statistics
from repro.llm.config import NormKind
from repro.llm.normalization import LayerNorm, RMSNorm, make_norm
from repro.numerics import kernels
from repro.numerics.fixedpoint import FixedPointFormat, FixedPointValue
from repro.numerics.minifloat import BFLOAT16, E4M3, E5M2
from repro.numerics.quantization import DataFormat, segmented_round_trip
from repro.serving.telemetry import LatencyReservoir

FORMATS = [E4M3, E5M2, BFLOAT16]


def assert_same_floats(actual: np.ndarray, expected: np.ndarray) -> None:
    """Exact float equality: values, NaN positions and zero signs."""
    actual = np.asarray(actual, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    assert actual.shape == expected.shape
    nan_a, nan_e = np.isnan(actual), np.isnan(expected)
    assert np.array_equal(nan_a, nan_e)
    assert np.array_equal(actual[~nan_a], expected[~nan_e])
    assert np.array_equal(np.signbit(actual[~nan_a]), np.signbit(expected[~nan_e]))


# ---------------------------------------------------------------------------
# minifloat codec
# ---------------------------------------------------------------------------


class TestMinifloatKernels:
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_decode_exhaustive_all_codes(self, fmt):
        codes = np.arange(fmt.num_codes)
        assert_same_floats(fmt.decode(codes), fmt.decode_reference(codes))

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_encode_all_representable_values(self, fmt):
        values = fmt.all_values()
        finite = values[np.isfinite(values)]
        assert np.array_equal(fmt.encode(finite), fmt.encode_reference(finite))

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_encode_rounding_tie_midpoints(self, fmt):
        values = fmt.all_values()
        finite = np.sort(values[np.isfinite(values)])
        midpoints = (finite[:-1] + finite[1:]) / 2.0
        assert np.array_equal(fmt.encode(midpoints), fmt.encode_reference(midpoints))

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_encode_special_and_edge_values(self, fmt):
        edges = np.array(
            [
                0.0,
                -0.0,
                np.nan,
                np.inf,
                -np.inf,
                fmt.max_finite,
                -fmt.max_finite,
                np.nextafter(fmt.max_finite, np.inf),
                fmt.max_finite * 2.0,
                fmt.min_normal,
                -fmt.min_normal,
                fmt.min_subnormal,
                fmt.min_subnormal / 2.0,
                -fmt.min_subnormal / 3.0,
                fmt.min_subnormal * 1.5,
            ]
        )
        assert np.array_equal(fmt.encode(edges), fmt.encode_reference(edges))

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_encode_randomized_sweep(self, fmt):
        rng = np.random.default_rng(2024)
        values = np.concatenate(
            [
                rng.normal(0.0, fmt.max_finite / 3.0, 4000),
                rng.normal(0.0, 1.0, 4000),
                rng.normal(0.0, fmt.min_normal, 4000),
                rng.uniform(-fmt.min_subnormal * 8, fmt.min_subnormal * 8, 2000),
            ]
        )
        assert np.array_equal(fmt.encode(values), fmt.encode_reference(values))

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_round_trip_idempotent(self, fmt):
        values = fmt.all_values()
        finite = values[np.isfinite(values)]
        assert_same_floats(fmt.round_trip(finite), finite)

    def test_encode_preserves_shape_and_scalar(self):
        codes = E4M3.encode([[1.0, -2.5], [0.25, 448.0]])
        assert codes.shape == (2, 2)
        assert int(E4M3.encode(1.0)) == E4M3._encode_scalar(1.0)

    def test_all_values_cached_and_read_only(self):
        first = E5M2.all_values()
        assert first is E5M2.all_values()  # cached object, not recomputed
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0] = 1.0


# ---------------------------------------------------------------------------
# fixed point
# ---------------------------------------------------------------------------


class TestFixedPointKernels:
    PAIRS = [
        ((8, 24), (8, 24), (16, 16)),  # positive shift
        ((16, 16), (16, 16), (16, 16)),
        ((12, 20), (9, 23), (12, 20)),
        ((8, 2), (8, 2), (4, 8)),  # negative shift (left realignment)
        ((2, 1), (2, 1), (2, 2)),  # zero shift
    ]

    @pytest.mark.parametrize("fa,fb,fo", PAIRS)
    def test_multiply_matches_reference(self, fa, fb, fo):
        rng = np.random.default_rng(7)
        fmt_a, fmt_b, fmt_o = (FixedPointFormat(*f) for f in (fa, fb, fo))
        a = FixedPointValue(fmt_a, rng.integers(fmt_a.min_code, fmt_a.max_code + 1, 2048))
        b = FixedPointValue(fmt_b, rng.integers(fmt_b.min_code, fmt_b.max_code + 1, 2048))
        fast = a.multiply(b, fmt_o)
        golden = a.multiply_reference(b, fmt_o)
        assert np.array_equal(fast.codes, golden.codes)

    def test_multiply_extreme_codes(self):
        fmt = FixedPointFormat(16, 16)
        extremes = np.array([fmt.min_code, fmt.min_code, fmt.max_code, fmt.max_code, 0, -1, 1])
        other = np.array([fmt.min_code, fmt.max_code, fmt.max_code, fmt.min_code, 1, -1, -1])
        a = FixedPointValue(fmt, extremes)
        b = FixedPointValue(fmt, other)
        assert np.array_equal(a.multiply(b).codes, a.multiply_reference(b).codes)

    def test_multiply_scalar_and_mean_still_exact(self):
        fmt = FixedPointFormat.accumulator()
        value = FixedPointValue.from_real(fmt, np.linspace(-5.0, 5.0, 33))
        assert value.mean().to_real() == pytest.approx(np.mean(fmt.quantize(np.linspace(-5.0, 5.0, 33))), abs=fmt.scale * 2)

    def test_sum_matches_reference(self):
        rng = np.random.default_rng(11)
        fmt = FixedPointFormat(16, 16)
        value = FixedPointValue(fmt, rng.integers(fmt.min_code, fmt.max_code + 1, 4096))
        assert np.array_equal(value.sum().codes, value.sum_reference().codes)

    def test_sum_saturates_like_reference(self):
        fmt = FixedPointFormat(4, 4)
        value = FixedPointValue(fmt, np.full(1000, fmt.max_code))
        assert np.array_equal(value.sum().codes, value.sum_reference().codes)
        assert int(value.sum().codes) == fmt.max_code

    def test_sum_wide_format_chunked_path(self):
        # Worst-case bound n * 2**(total_bits-1) exceeds int64: the kernel
        # must fall back to chunked exact accumulation, never overflow.
        rng = np.random.default_rng(13)
        fmt = FixedPointFormat(40, 22, saturate=True)
        codes = rng.integers(fmt.min_code // 2, fmt.max_code // 2, 50_000)
        value = FixedPointValue(fmt, codes)
        assert kernels.exact_code_sum(codes, fmt.total_bits) == int(np.sum(codes, dtype=object))
        assert np.array_equal(value.sum().codes, value.sum_reference().codes)

    def test_exact_code_sum_empty(self):
        assert kernels.exact_code_sum(np.array([], dtype=np.int64), 32) == 0


# ---------------------------------------------------------------------------
# rowwise statistics
# ---------------------------------------------------------------------------


class TestRowwiseStatistics:
    @pytest.mark.parametrize("shape", [(1, 1), (3, 7), (16, 129), (64, 64)])
    def test_variance_matches_ndarray_var(self, shape):
        rng = np.random.default_rng(17)
        x = rng.normal(size=shape) * rng.lognormal(0, 2, size=shape)
        assert np.array_equal(kernels.rowwise_variance(x), x.var(axis=1))

    def test_variance_on_strided_views(self):
        rng = np.random.default_rng(19)
        x = rng.normal(size=(8, 256))
        for view in (x[:, ::3], x[:, ::7][:, :20], x[:, 1::2]):
            assert np.array_equal(kernels.rowwise_variance(view), view.var(axis=1))

    def test_mean_square_matches_reference(self):
        rng = np.random.default_rng(23)
        x = rng.normal(size=(12, 96))
        assert np.array_equal(
            kernels.rowwise_mean_square(x), np.mean(np.square(x), axis=1)
        )

    def test_inv_sqrt_stat_matches_formula(self):
        rng = np.random.default_rng(29)
        var = rng.uniform(0.0, 4.0, 256)
        eps = 1e-5
        expected = 1.0 / np.sqrt(var + eps)
        assert np.array_equal(kernels.inv_sqrt_stat(var.copy(), eps), expected)

    def test_normalize_affine_matches_chain(self):
        rng = np.random.default_rng(31)
        rows = rng.normal(size=(9, 33))
        mean = rows.mean(axis=1)
        isd = 1.0 / rows.std(axis=1)
        gamma = rng.normal(size=33)
        beta = rng.normal(size=33)
        expected = (rows - mean[:, None]) * isd[:, None] * gamma[None, :] + beta[None, :]
        assert np.array_equal(
            kernels.normalize_affine(rows, mean, isd, gamma, beta), expected
        )

    def test_normalize_affine_out_does_not_touch_input(self):
        rng = np.random.default_rng(37)
        rows = rng.normal(size=(4, 8))
        snapshot = rows.copy()
        out = np.empty_like(rows)
        result = kernels.normalize_affine(
            rows, rows.mean(axis=1), np.ones(4), np.ones(8), np.zeros(8), out=out
        )
        assert result is out
        assert np.array_equal(rows, snapshot)

    def test_subsampled_statistics_workspace_identical(self):
        rng = np.random.default_rng(41)
        rows = rng.normal(size=(10, 128))
        settings = SubsampleSettings(length=32, policy=SubsamplePolicy.STRIDED)
        ws = kernels.KernelWorkspace()
        for kind in (NormKind.LAYERNORM, NormKind.RMSNORM):
            base_mean, base_isd = subsampled_statistics(rows, settings, kind=kind)
            ws_mean, ws_isd = subsampled_statistics(rows, settings, kind=kind, workspace=ws)
            assert np.array_equal(base_mean, ws_mean)
            assert np.array_equal(base_isd, ws_isd)


# ---------------------------------------------------------------------------
# fused HAAN normalization
# ---------------------------------------------------------------------------


def make_haan_layer(
    rng,
    hidden=96,
    kind=NormKind.LAYERNORM,
    data_format=DataFormat.INT8,
    subsample=SubsampleSettings(length=24),
    skipped=False,
    use_hardware_inv_sqrt=False,
):
    base = make_norm(kind, hidden, layer_index=3, name="test.norm")
    base.load_affine(rng.normal(1.0, 0.1, hidden), rng.normal(0.0, 0.1, hidden))
    predictor = None
    if skipped:
        predictor = IsdPredictor(
            anchor_layer=1, last_layer=5, decay=-0.05, anchor_log_isd=0.2
        )
    return HaanNormalization(
        base,
        predictor=predictor,
        subsample=subsample,
        data_format=data_format,
        use_hardware_inv_sqrt=use_hardware_inv_sqrt,
    )


class TestFusedNormalization:
    @pytest.mark.parametrize("data_format", list(DataFormat), ids=lambda f: f.value)
    @pytest.mark.parametrize("kind", [NormKind.LAYERNORM, NormKind.RMSNORM])
    @pytest.mark.parametrize(
        "subsample",
        [None, SubsampleSettings(length=24), SubsampleSettings(length=24, policy=SubsamplePolicy.STRIDED)],
        ids=["full", "truncate", "strided"],
    )
    def test_fused_matches_reference(self, data_format, kind, subsample):
        rng = np.random.default_rng(43)
        layer = make_haan_layer(rng, kind=kind, data_format=data_format, subsample=subsample)
        stacked = rng.normal(0.0, 2.0, size=(13, 96))
        starts = np.array([0, 4, 5, 11])
        fused = layer.forward_batched(stacked, starts)
        reference = layer.forward_batched_reference(stacked, starts)
        for fast, golden in zip(fused, reference):
            assert np.array_equal(fast, golden)

    def test_fused_skipped_layer_matches_reference(self):
        rng = np.random.default_rng(47)
        layer = make_haan_layer(rng, skipped=True)
        stacked = rng.normal(size=(6, 96))
        anchor = np.array([2.0, 2.0, np.nan, 0.5, 0.5, 0.5])
        starts = np.array([0, 2, 3])
        fused = layer.forward_batched(stacked, starts, anchor)
        reference = layer.forward_batched_reference(stacked, starts, anchor)
        for fast, golden in zip(fused, reference):
            assert np.array_equal(fast, golden)
        assert layer._last_was_predicted()

    def test_fused_hardware_inv_sqrt_matches_reference(self):
        rng = np.random.default_rng(53)
        layer = make_haan_layer(rng, use_hardware_inv_sqrt=True)
        stacked = rng.normal(size=(5, 96))
        fused = layer.forward_batched(stacked)
        reference = layer.forward_batched_reference(stacked)
        for fast, golden in zip(fused, reference):
            assert np.array_equal(fast, golden)

    def test_fused_matches_per_request_calls(self):
        rng = np.random.default_rng(59)
        layer = make_haan_layer(rng)
        payloads = [rng.normal(size=(n, 96)) for n in (1, 3, 2)]
        starts = np.array([0, 1, 4])
        out, _, _ = layer.forward_batched(np.concatenate(payloads), starts)
        expected = np.concatenate([layer(p) for p in payloads])
        assert np.array_equal(out, expected)

    def test_fused_single_row_and_one_element_rows(self):
        rng = np.random.default_rng(61)
        # hidden == 1: variance collapses to 0, ISD to 1/sqrt(eps).
        base = LayerNorm(hidden_size=1, layer_index=0, name="tiny")
        layer = HaanNormalization(base, subsample=SubsampleSettings(length=4))
        rows = rng.normal(size=(3, 1))
        fused = layer.forward_batched(rows)
        reference = layer.forward_batched_reference(rows)
        for fast, golden in zip(fused, reference):
            assert np.array_equal(fast, golden)

    def test_fused_empty_stack(self):
        layer = make_haan_layer(np.random.default_rng(67), subsample=None)
        empty = np.empty((0, 96))
        out, mean, isd = layer.forward_batched(empty)
        assert out.shape == (0, 96)
        assert mean.shape == (0,)
        assert isd.shape == (0,)

    def test_fused_workspace_reuse_is_stable(self):
        rng = np.random.default_rng(71)
        layer = make_haan_layer(rng)
        ws = kernels.KernelWorkspace()
        for rows in (17, 4, 17, 32):
            stacked = rng.normal(size=(rows, 96))
            pooled = layer.forward_batched(stacked, workspace=ws)
            fresh = layer.forward_batched(stacked)
            for fast, golden in zip(pooled, fresh):
                assert np.array_equal(fast, golden)

    def test_fused_out_buffer_is_used(self):
        rng = np.random.default_rng(73)
        layer = make_haan_layer(rng)
        stacked = rng.normal(size=(7, 96))
        out = np.empty((7, 96))
        result, _, _ = layer.forward_batched(stacked, out=out)
        assert result is out

    def test_fused_does_not_mutate_input(self):
        rng = np.random.default_rng(79)
        layer = make_haan_layer(rng)
        stacked = rng.normal(size=(7, 96))
        snapshot = stacked.copy()
        layer.forward_batched(stacked, workspace=kernels.KernelWorkspace())
        assert np.array_equal(stacked, snapshot)

    def test_fused_validates_segments_like_reference(self):
        rng = np.random.default_rng(83)
        layer = make_haan_layer(rng)
        stacked = rng.normal(size=(6, 96))
        with pytest.raises(ValueError):
            layer.forward_batched(stacked, np.array([1, 3]))
        with pytest.raises(ValueError):
            layer.forward_batched(stacked, np.array([0, 9]))

    def test_reference_base_layer_out_and_workspace(self):
        rng = np.random.default_rng(89)
        layer = RMSNorm(hidden_size=32, layer_index=0, name="ref")
        rows = rng.normal(size=(5, 32))
        out = np.empty((5, 32))
        pooled, mean, isd = layer.forward_batched(rows, workspace=kernels.KernelWorkspace(), out=out)
        assert pooled is out
        direct = layer(rows)
        assert np.array_equal(pooled, direct)

    @pytest.mark.parametrize("data_format", list(DataFormat), ids=lambda f: f.value)
    def test_segmented_round_trip_out_param(self, data_format):
        rng = np.random.default_rng(97)
        stacked = rng.normal(size=(9, 40))
        starts = np.array([0, 3, 4])
        baseline = segmented_round_trip(stacked, starts, data_format)
        out = np.empty_like(stacked)
        pooled = segmented_round_trip(stacked, starts, data_format, out=out)
        assert pooled is out
        assert np.array_equal(baseline, pooled)

    def test_segmented_round_trip_out_param_empty(self):
        empty = np.empty((0, 16))
        out = np.empty((0, 16))
        assert segmented_round_trip(empty, None, DataFormat.INT8, out=out) is out


# ---------------------------------------------------------------------------
# workspace
# ---------------------------------------------------------------------------


class TestKernelWorkspace:
    def test_buffers_are_reused_at_steady_state(self):
        ws = kernels.KernelWorkspace()
        a = ws.matrix("x", 100, 64)
        b = ws.matrix("x", 90, 64)
        assert a.base is b.base  # same pooled capacity buffer
        assert b.shape == (90, 64)

    def test_buffers_grow_to_power_of_two(self):
        ws = kernels.KernelWorkspace()
        ws.matrix("x", 100, 64)
        grown = ws.matrix("x", 300, 64)
        assert grown.base.shape[0] == 512
        again = ws.matrix("x", 100, 64)
        assert again.base is grown.base

    def test_distinct_names_and_dtypes_do_not_collide(self):
        ws = kernels.KernelWorkspace()
        a = ws.matrix("a", 16, 8)
        b = ws.matrix("b", 16, 8)
        c = ws.matrix("a", 16, 8, dtype=np.float32)
        assert a.base is not b.base
        assert c.dtype == np.float32
        v = ws.vector("a", 16)
        assert v.shape == (16,)

    def test_nbytes_and_clear(self):
        ws = kernels.KernelWorkspace()
        ws.matrix("x", 64, 64)
        assert ws.nbytes > 0
        ws.clear()
        assert ws.nbytes == 0


# ---------------------------------------------------------------------------
# telemetry latency reservoir
# ---------------------------------------------------------------------------


class TestLatencyReservoir:
    def test_memory_is_bounded(self):
        reservoir = LatencyReservoir(capacity=16)
        for i in range(10_000):
            reservoir.observe(float(i))
        assert reservoir.count == 16
        assert reservoir.capacity == 16
        # Only the newest window survives.
        assert np.array_equal(np.sort(reservoir.values()), np.arange(9984.0, 10_000.0))

    def test_observe_many_wraps_ring(self):
        reservoir = LatencyReservoir(capacity=8)
        reservoir.observe_many(np.arange(5.0))
        reservoir.observe_many(np.arange(5.0, 11.0))  # wraps past the end
        assert reservoir.count == 8
        assert np.array_equal(np.sort(reservoir.values()), np.arange(3.0, 11.0))

    def test_observe_many_larger_than_capacity(self):
        reservoir = LatencyReservoir(capacity=4)
        reservoir.observe_many(np.arange(100.0))
        assert np.array_equal(np.sort(reservoir.values()), np.arange(96.0, 100.0))

    def test_exact_percentiles(self):
        reservoir = LatencyReservoir(capacity=128)
        samples = np.linspace(0.001, 0.128, 128)
        reservoir.observe_many(samples)
        assert reservoir.percentile(50) == pytest.approx(np.percentile(samples, 50))
        assert reservoir.percentile(99) == pytest.approx(np.percentile(samples, 99))
        snap = reservoir.snapshot()
        assert snap["count"] == 128
        assert snap["max"] == pytest.approx(0.128)

    def test_empty_reservoir(self):
        reservoir = LatencyReservoir()
        assert reservoir.percentile(99) == 0.0
        assert reservoir.snapshot()["count"] == 0
