"""Tests of the subsampled statistics estimation (equation (4))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subsampling import (
    SubsamplePolicy,
    SubsampleSettings,
    estimation_error,
    select_subsample,
    subsampled_statistics,
)
from repro.llm.config import NormKind


class TestSelection:
    def test_truncation_takes_leading_elements(self):
        rows = np.arange(20.0).reshape(2, 10)
        sub = select_subsample(rows, SubsampleSettings(length=4))
        np.testing.assert_array_equal(sub, [[0, 1, 2, 3], [10, 11, 12, 13]])

    def test_strided_policy_spans_the_vector(self):
        rows = np.arange(16.0).reshape(1, 16)
        sub = select_subsample(rows, SubsampleSettings(length=4, policy=SubsamplePolicy.STRIDED))
        assert sub.shape == (1, 4)
        assert sub[0, -1] > 8  # reaches into the second half

    def test_length_larger_than_vector_is_clamped(self):
        rows = np.ones((2, 8))
        sub = select_subsample(rows, SubsampleSettings(length=100))
        assert sub.shape == (2, 8)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            SubsampleSettings(length=0)

    def test_1d_input_rejected(self):
        with pytest.raises(ValueError):
            select_subsample(np.ones(8), SubsampleSettings(length=2))


class TestStatistics:
    def test_full_length_matches_exact(self, rng):
        rows = rng.normal(2.0, 3.0, size=(6, 64))
        mean, isd = subsampled_statistics(rows, SubsampleSettings(length=64))
        np.testing.assert_allclose(mean, rows.mean(axis=1))
        np.testing.assert_allclose(isd, 1.0 / np.sqrt(rows.var(axis=1) + 1e-5))

    def test_rmsnorm_mean_is_zero(self, rng):
        rows = rng.normal(size=(4, 32))
        mean, isd = subsampled_statistics(rows, SubsampleSettings(length=8), kind=NormKind.RMSNORM)
        np.testing.assert_array_equal(mean, 0.0)
        assert np.all(isd > 0)

    def test_full_mean_option(self, rng):
        rows = rng.normal(1.0, 1.0, size=(4, 64))
        mean, _ = subsampled_statistics(
            rows, SubsampleSettings(length=8), subsample_mean=False
        )
        np.testing.assert_allclose(mean, rows.mean(axis=1))

    def test_estimate_approaches_truth_with_more_samples(self, rng):
        rows = rng.normal(0, 2.0, size=(64, 512))
        errors = []
        for length in (8, 32, 128, 512):
            err, _ = estimation_error(rows, SubsampleSettings(length=length))
            errors.append(err)
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] == pytest.approx(0.0, abs=1e-12)

    def test_error_scales_roughly_inverse_sqrt(self, rng):
        rows = rng.normal(0, 1.0, size=(256, 1024))
        err_small, _ = estimation_error(rows, SubsampleSettings(length=16))
        err_large, _ = estimation_error(rows, SubsampleSettings(length=256))
        # 16x more samples -> ~4x lower error (allow generous tolerance).
        assert err_small / err_large > 2.0

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_isd_always_positive_and_finite(self, length):
        rng = np.random.default_rng(length)
        rows = rng.normal(size=(3, 64))
        _, isd = subsampled_statistics(rows, SubsampleSettings(length=length))
        assert np.all(np.isfinite(isd)) and np.all(isd > 0)
