"""Tests of the end-to-end HAAN calibration and installation pipeline."""

import numpy as np
import pytest

from repro.core.calibration import (
    CalibrationSettings,
    apply_haan,
    build_haan_model,
    build_predictor_for_range,
    calibrate_model,
    restore_reference_norms,
)
from repro.core.config import HaanConfig
from repro.core.haan_norm import HaanNormalization
from repro.llm.datasets import calibration_texts
from repro.llm.model import TransformerModel
from repro.numerics.quantization import DataFormat


class TestCalibration:
    def test_calibration_result_fields(self, tiny_calibration, tiny_model):
        start, end = tiny_calibration.skip_range
        assert 0 <= start < end < tiny_model.num_norm_layers
        assert tiny_calibration.decay < 0
        assert tiny_calibration.predictor.covers(start + 1)
        assert tiny_calibration.max_prediction_error() >= 0

    def test_calibration_is_deterministic(self):
        model_a = TransformerModel.from_name("tiny")
        model_b = TransformerModel.from_name("tiny")
        texts = calibration_texts(4, seed=5)
        settings = CalibrationSettings(window=3, max_seq_len=16, min_start_fraction=0.3)
        a = calibrate_model(model_a, texts=texts, settings=settings)
        b = calibrate_model(model_b, texts=texts, settings=settings)
        assert a.skip_range == b.skip_range
        assert a.decay == pytest.approx(b.decay)

    def test_min_start_honoured(self, tiny_model):
        texts = calibration_texts(4, seed=5)
        settings = CalibrationSettings(window=3, max_seq_len=16, min_start_fraction=0.6)
        result = calibrate_model(tiny_model, texts=texts, settings=settings)
        assert result.skip_range[0] >= settings.min_start(tiny_model.num_norm_layers)

    def test_build_predictor_for_custom_range(self, tiny_calibration):
        predictor = build_predictor_for_range(tiny_calibration.profile, (2, 5))
        assert predictor.skip_range == (2, 5)
        with pytest.raises(ValueError):
            build_predictor_for_range(tiny_calibration.profile, (5, 200))


class TestApplyHaan:
    def test_all_layers_replaced(self, tiny_calibration):
        model = TransformerModel.from_name("tiny")
        config = HaanConfig(
            skip_range=tiny_calibration.skip_range,
            subsample_length=model.config.hidden_size // 4,
            data_format=DataFormat.FP16,
        )
        installed = apply_haan(model, config, predictor=tiny_calibration.predictor)
        assert len(installed) == model.num_norm_layers
        assert all(isinstance(layer, HaanNormalization) for layer in model.norm_layers)
        skipped = [layer for layer in installed if layer.is_skipped]
        assert len(skipped) == config.num_skipped_layers()

    def test_skipping_requires_predictor(self):
        model = TransformerModel.from_name("tiny")
        with pytest.raises(ValueError):
            apply_haan(model, HaanConfig(skip_range=(2, 4)))

    def test_outputs_stay_close_to_reference(self, tiny_calibration, small_token_batch):
        reference = TransformerModel.from_name("tiny")
        ref_logits = reference.forward(small_token_batch)
        model = TransformerModel.from_name("tiny")
        config = HaanConfig(
            skip_range=tiny_calibration.skip_range,
            subsample_length=model.config.hidden_size // 2,
            data_format=DataFormat.FP16,
        )
        apply_haan(model, config, predictor=tiny_calibration.predictor)
        haan_logits = model.forward(small_token_batch)
        # HAAN perturbs the logits only mildly: the top-1 prediction of the
        # last position should rarely change on the tiny model.
        ref_top = np.argmax(ref_logits[:, -1, :], axis=-1)
        haan_top = np.argmax(haan_logits[:, -1, :], axis=-1)
        assert np.mean(ref_top == haan_top) >= 0.75

    def test_restore_reference_norms(self, tiny_calibration, small_token_batch):
        model = TransformerModel.from_name("tiny")
        originals = list(model.norm_layers)
        before = model.forward(small_token_batch)
        config = HaanConfig(skip_range=tiny_calibration.skip_range, subsample_length=128)
        apply_haan(model, config, predictor=tiny_calibration.predictor)
        restore_reference_norms(model, originals)
        after = model.forward(small_token_batch)
        np.testing.assert_array_equal(before, after)

    def test_restore_with_wrong_count_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            restore_reference_norms(tiny_model, [])


class TestBuildHaanModel:
    def test_default_configuration_from_algorithm(self):
        model, calibration, config = build_haan_model(
            "tiny", settings=CalibrationSettings(window=3, max_seq_len=16, num_samples=4)
        )
        assert config.skip_range == calibration.skip_range
        assert isinstance(model.norm_layer(0), HaanNormalization)

    def test_explicit_config_with_custom_range(self):
        config = HaanConfig(skip_range=(4, 6), subsample_length=64)
        model, calibration, used = build_haan_model(
            "tiny",
            config=config,
            settings=CalibrationSettings(window=3, max_seq_len=16, num_samples=4),
        )
        assert used.skip_range == (4, 6)
        assert model.norm_layer(5).is_skipped
