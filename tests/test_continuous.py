"""Tests of the continuous batching scheduler and the PR-10 bugfix sweep.

Covered contracts, all on deterministic injectable clocks:

* ``ResponseFuture.result(timeout)`` regression: a setter landing between
  the timed-out ``Event.wait`` and the raise must not surface a spurious
  ``TimeoutError`` (the request *did* complete in time);
* ``add_done_callback`` fires exactly once, before or after resolution,
  on success and on failure -- the hook the asyncio server core bridges
  scheduler futures through;
* :class:`ContinuousBatcher`: engine-tick release (no ``max_wait`` stall),
  earliest-deadline-first bucket selection, aging-bound starvation
  freedom under a sustained hot-bucket flood, and deadline-expired
  requests shed with a typed ``DeadlineExceededError`` before execution;
* the eval CLI measures experiment duration on the monotonic
  ``perf_counter``, immune to wall-clock (NTP/DST) steps;
* drained server shutdown joins every thread it started (no leaked
  accept-loop / worker / metrics threads).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api.envelopes import DeadlineExceededError
from repro.serving.batcher import BatcherConfig, MicroBatcher, PendingRequest, ResponseFuture
from repro.serving.continuous import ContinuousBatcher
from repro.serving.request import NormRequest, RequestKey

HIDDEN = 16
KEY_A = RequestKey(model="m", layer_index=0)
KEY_B = RequestKey(model="m", layer_index=1)


def _request(key=KEY_A, rows=1, deadline_ms=None):
    return NormRequest(
        key=key, payload=np.ones((rows, HIDDEN)), deadline_ms=deadline_ms
    )


class _Clock:
    """Deterministic injectable clock."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def _resolve_all(key, batch, rows):
    for pending in batch:
        pending.set_result(pending.request.request_id)


# ---------------------------------------------------------------------------
# ResponseFuture: spurious-timeout race + done callbacks
# ---------------------------------------------------------------------------


class _RacingEvent:
    """An Event whose wait() loses the race: the setter lands during the
    wait, but wait() still reports a timeout -- the exact interleaving of
    the regression."""

    def __init__(self, future, value):
        self._future = future
        self._value = value

    def wait(self, timeout=None) -> bool:
        self._future.set_result(self._value)
        return False  # timed out... but the result landed first

    def set(self) -> None:
        pass


class TestResponseFuture:
    def test_setter_racing_timed_out_wait_is_not_a_timeout(self):
        future = ResponseFuture()
        future._event = _RacingEvent(future, "landed")
        # Before the fix this raised TimeoutError despite the result being
        # set -- the re-check of _done after the failed wait is the fix.
        assert future.result(timeout=0.01) == "landed"

    def test_setter_racing_timed_out_wait_delivers_exceptions_too(self):
        future = ResponseFuture()

        class _RacingErrorEvent:
            def wait(self, timeout=None):
                future.set_exception(ValueError("late failure"))
                return False

            def set(self):
                pass

        future._event = _RacingErrorEvent()
        with pytest.raises(ValueError, match="late failure"):
            future.result(timeout=0.01)

    def test_genuinely_unresolved_future_still_times_out(self):
        future = ResponseFuture()
        with pytest.raises(TimeoutError):
            future.result(timeout=0.005)

    def test_callback_registered_before_resolution_fires_once(self):
        future = ResponseFuture()
        calls = []
        future.add_done_callback(calls.append)
        assert calls == []
        future.set_result(7)
        assert calls == [future]
        assert future.result(0) == 7

    def test_callback_registered_after_resolution_fires_immediately(self):
        future = ResponseFuture()
        future.set_result(7)
        calls = []
        future.add_done_callback(calls.append)
        assert calls == [future]

    def test_callback_fires_on_failure(self):
        future = ResponseFuture()
        calls = []
        future.add_done_callback(calls.append)
        future.set_exception(RuntimeError("boom"))
        assert calls == [future]
        assert isinstance(future.exception(), RuntimeError)

    def test_many_callbacks_all_fire_in_order(self):
        future = ResponseFuture()
        calls = []
        future.add_done_callback(lambda f: calls.append("a"))
        future.add_done_callback(lambda f: calls.append("b"))
        future.set_result(None)
        future.add_done_callback(lambda f: calls.append("c"))
        assert calls == ["a", "b", "c"]

    def test_threaded_waiters_see_racy_results(self):
        # Stress the real interleaving: many waiter/setter pairs with a
        # timeout sized to collide with the set.
        for _ in range(50):
            future = ResponseFuture()
            results = []

            def wait(future=future, results=results):
                try:
                    results.append(future.result(timeout=0.002))
                except TimeoutError:
                    results.append("timeout")

            waiter = threading.Thread(target=wait)
            waiter.start()
            time.sleep(0.0015)
            future.set_result("ok")
            waiter.join()
            # Either outcome is legal (the set may land after the full
            # timeout) but a timeout report requires the result to be
            # genuinely unavailable at raise time... which it never is
            # here after join: re-reading must succeed.
            assert future.result(0) == "ok"


class TestPendingRequestDeadline:
    def test_deadline_at_anchored_to_enqueue_clock(self):
        pending = PendingRequest(_request(deadline_ms=50.0), enqueued_at=10.0)
        assert pending.deadline_at == pytest.approx(10.05)

    def test_no_deadline_means_none(self):
        pending = PendingRequest(_request(), enqueued_at=10.0)
        assert pending.deadline_at is None


# ---------------------------------------------------------------------------
# ContinuousBatcher scheduling
# ---------------------------------------------------------------------------


class TestContinuousRelease:
    def test_releases_immediately_without_max_wait_stall(self):
        clock = _Clock()
        config = BatcherConfig(max_batch_size=32, max_wait=0.5)
        micro = MicroBatcher(_resolve_all, config, clock=clock)
        continuous = ContinuousBatcher(_resolve_all, config, clock=clock)
        micro.submit(_request())
        continuous.submit(_request())
        # The micro-batcher's latency trigger stalls an unforced drain for
        # the full max_wait; the continuous scheduler's trigger is the
        # engine tick itself.
        assert micro.drain_once(force=False) == 0
        assert continuous.drain_once(force=False) == 1

    def test_batches_fill_up_to_caps_from_one_bucket(self):
        clock = _Clock()
        batches = []
        batcher = ContinuousBatcher(
            lambda key, batch, rows: (
                batches.append(len(batch)),
                _resolve_all(key, batch, rows),
            ),
            BatcherConfig(max_batch_size=4),
            clock=clock,
        )
        batcher.submit_many([_request() for _ in range(10)])
        assert batcher.drain_all() == 10
        assert batches == [4, 4, 2]

    def test_worker_thread_drains_submissions(self):
        batcher = ContinuousBatcher(_resolve_all, BatcherConfig())
        batcher.start()
        try:
            futures = batcher.submit_many([_request() for _ in range(8)])
            results = [future.result(timeout=5.0) for future in futures]
            assert len(results) == 8
        finally:
            batcher.stop()

    def test_stop_flushes_queued_requests(self):
        batcher = ContinuousBatcher(_resolve_all, BatcherConfig(), clock=_Clock())
        futures = batcher.submit_many([_request() for _ in range(3)])
        batcher.stop()
        assert all(future.done() for future in futures)


class TestContinuousDeadlines:
    def test_earliest_deadline_bucket_wins_the_tick(self):
        clock = _Clock()
        order = []
        batcher = ContinuousBatcher(
            lambda key, batch, rows: (
                order.append(key.layer_index),
                _resolve_all(key, batch, rows),
            ),
            BatcherConfig(),
            clock=clock,
        )
        batcher.submit(_request(key=KEY_A, deadline_ms=100.0))  # older, lax
        clock.now = 0.001
        batcher.submit(_request(key=KEY_B, deadline_ms=5.0))  # newer, tight
        batcher.drain_all()
        assert order == [1, 0]  # tight deadline first despite arriving later

    def test_expired_request_shed_typed_before_execution(self):
        clock = _Clock()
        executed = []
        batcher = ContinuousBatcher(
            lambda key, batch, rows: (
                executed.extend(batch),
                _resolve_all(key, batch, rows),
            ),
            BatcherConfig(),
            clock=clock,
        )
        future = batcher.submit(_request(deadline_ms=5.0))
        clock.now = 0.006  # budget blown while queued
        assert batcher.drain_all() == 0
        assert executed == []
        assert batcher.requests_shed == 1
        with pytest.raises(DeadlineExceededError):
            future.result(0)

    def test_expired_members_shed_live_members_execute(self):
        clock = _Clock()
        batcher = ContinuousBatcher(_resolve_all, BatcherConfig(), clock=clock)
        doomed = batcher.submit(_request(deadline_ms=5.0))
        live = batcher.submit(_request(deadline_ms=5000.0))
        plain = batcher.submit(_request())
        clock.now = 0.006
        assert batcher.drain_all() == 2
        with pytest.raises(DeadlineExceededError):
            doomed.result(0)
        assert live.result(0) is not None
        assert plain.result(0) is not None
        assert batcher.requests_shed == 1

    def test_shed_error_names_the_budget(self):
        clock = _Clock()
        batcher = ContinuousBatcher(_resolve_all, BatcherConfig(), clock=clock)
        future = batcher.submit(_request(deadline_ms=7.5))
        clock.now = 1.0
        batcher.drain_all()
        error = future.exception()
        assert isinstance(error, DeadlineExceededError)
        assert error.code == "deadline_exceeded"
        assert "7.5" in str(error)

    def test_stop_sheds_expired_and_flushes_live(self):
        clock = _Clock()
        batcher = ContinuousBatcher(_resolve_all, BatcherConfig(), clock=clock)
        doomed = batcher.submit(_request(deadline_ms=1.0))
        live = batcher.submit(_request())
        clock.now = 0.5
        batcher.stop()
        with pytest.raises(DeadlineExceededError):
            doomed.result(0)
        assert live.done() and live.exception() is None


class TestStarvationFreedom:
    def test_aging_bounds_queueing_under_sustained_hot_flood(self):
        """An old deadline-less request is released within aging_window even
        while tighter-deadline traffic keeps flooding a hotter bucket."""
        clock = _Clock()
        aging = 0.020
        executed_at = {}

        def execute(key, batch, rows):
            for pending in batch:
                executed_at[pending.request.request_id] = clock.now
            _resolve_all(key, batch, rows)

        batcher = ContinuousBatcher(
            execute, BatcherConfig(max_batch_size=1), clock=clock,
            aging_window=aging,
        )
        old = batcher.submit(_request(key=KEY_A))
        old_id = old.request.request_id
        # Sustained flood: every millisecond a fresh hot request with a
        # tight deadline lands in bucket B, and the engine ticks once.
        tick = 0.001
        for step in range(1, 40):
            clock.now = step * tick
            batcher.submit(_request(key=KEY_B, deadline_ms=5.0))
            batcher.drain_once(force=False)
            if old.done():
                break
        assert old.done(), "old request starved through the whole flood"
        # Starvation bound: released within aging_window (+one tick of
        # slack for the tick that first sees the aged urgency win).
        assert executed_at[old_id] <= aging + tick + 1e-9
        # And the flood really was preempting before that: hot requests
        # executed ahead of the old one.
        hot_before = [t for rid, t in executed_at.items()
                      if rid != old_id and t < executed_at[old_id]]
        assert hot_before, "flood never preempted: the test exercised nothing"

    def test_hot_bucket_wins_before_the_aging_bound(self):
        clock = _Clock()
        order = []
        batcher = ContinuousBatcher(
            lambda key, batch, rows: (
                order.append(key.layer_index),
                _resolve_all(key, batch, rows),
            ),
            BatcherConfig(max_batch_size=1),
            clock=clock,
            aging_window=0.020,
        )
        batcher.submit(_request(key=KEY_A))
        clock.now = 0.001
        batcher.submit(_request(key=KEY_B, deadline_ms=5.0))
        batcher.drain_once(force=False)  # hot urgency 0.006 < aged 0.020
        assert order == [1]

    def test_snapshot_reports_scheduler_counters(self):
        clock = _Clock()
        batcher = ContinuousBatcher(_resolve_all, BatcherConfig(), clock=clock)
        batcher.submit_many([_request(), _request(key=KEY_B)])
        snapshot = batcher.snapshot()
        assert snapshot["policy"] == "continuous"
        assert snapshot["pending"] == 2
        assert snapshot["buckets"] == 2
        batcher.drain_all()
        snapshot = batcher.snapshot()
        assert snapshot["pending"] == 0
        assert snapshot["requests_executed"] == 2

    def test_rejects_non_positive_aging_window(self):
        with pytest.raises(ValueError):
            ContinuousBatcher(_resolve_all, aging_window=0.0)


class TestServiceSchedulerSelection:
    def test_unknown_scheduler_rejected(self):
        from repro.serving.service import NormalizationService

        with pytest.raises(ValueError, match="unknown scheduler"):
            NormalizationService(threaded=False, scheduler="wishful")

    def test_continuous_service_serves_bit_identically_to_micro(self, rng):
        from repro.serving.registry import CalibrationRegistry
        from repro.serving.service import NormalizationService

        from test_api import _instant_loader

        payload = rng.normal(0.0, 1.5, size=(5, 48))
        outputs = {}
        for scheduler in ("micro", "continuous"):
            with NormalizationService(
                registry=CalibrationRegistry(loader=_instant_loader),
                threaded=False,
                scheduler=scheduler,
            ) as service:
                outputs[scheduler] = service.normalize(payload, "tiny").output
        np.testing.assert_array_equal(outputs["micro"], outputs["continuous"])

    def test_continuous_scheduler_exposes_telemetry_section(self):
        from repro.serving.registry import CalibrationRegistry
        from repro.serving.service import NormalizationService

        from test_api import _instant_loader

        with NormalizationService(
            registry=CalibrationRegistry(loader=_instant_loader),
            threaded=False,
            scheduler="continuous",
        ) as service:
            service.normalize(np.ones((2, 48)), "tiny")
            snapshot = service.telemetry.snapshot()
            scheduler = snapshot["scheduler"]
            assert scheduler["policy"] == "continuous"
            assert scheduler["requests_executed"] >= 1


# ---------------------------------------------------------------------------
# eval CLI: monotonic duration measurement
# ---------------------------------------------------------------------------


class TestEvalCliClock:
    def test_duration_uses_perf_counter_not_wall_clock(self, monkeypatch, capsys):
        import repro.eval.cli as eval_cli

        class _Result:
            @staticmethod
            def formatted():
                return "stub result"

        monkeypatch.setattr(eval_cli, "run_experiment", lambda *a, **k: _Result())
        monkeypatch.setattr(
            eval_cli, "available_experiments", lambda: ["stub"]
        )

        perf = iter([100.0, 101.5])

        class _SteppedTime:
            @staticmethod
            def perf_counter():
                return next(perf)

            @staticmethod
            def time():  # wall clock jumps BACKWARDS (NTP step) mid-run
                raise AssertionError(
                    "eval CLI must not measure durations with time.time()"
                )

        monkeypatch.setattr(eval_cli, "time", _SteppedTime)
        assert eval_cli.main(["stub"]) == 0
        out = capsys.readouterr().out
        assert "(completed in 1.5s)" in out


# ---------------------------------------------------------------------------
# shutdown thread hygiene
# ---------------------------------------------------------------------------


def _live_haan_threads():
    return {
        t
        for t in threading.enumerate()
        if t.is_alive() and t.name.startswith("haan-")
    }


def _assert_no_new_haan_threads(before, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        leaked = _live_haan_threads() - before
        if not leaked:
            return
        time.sleep(0.02)
    raise AssertionError(f"leaked threads after close: {sorted(t.name for t in leaked)}")


class TestNoLeakedThreads:
    def test_threaded_server_drained_close_joins_everything(self):
        from repro.api.client import NormClient
        from repro.api.server import NormServer
        from repro.serving.registry import CalibrationRegistry
        from repro.serving.service import NormalizationService

        from test_api import _instant_loader

        before = _live_haan_threads()
        registry = CalibrationRegistry(loader=_instant_loader)
        service = NormalizationService(registry=registry)
        server = NormServer(service).start()
        with NormClient.connect(server.host, server.port) as client:
            client.normalize(np.ones((2, 48)), "tiny")
        server.close(drain_timeout=2.0)
        service.close()
        _assert_no_new_haan_threads(before)

    def test_async_server_drained_close_joins_everything(self):
        from repro.api.aserver import AsyncNormServer
        from repro.api.client import NormClient
        from repro.serving.registry import CalibrationRegistry
        from repro.serving.service import NormalizationService

        from test_api import _instant_loader

        before = _live_haan_threads()
        registry = CalibrationRegistry(loader=_instant_loader)
        service = NormalizationService(registry=registry, scheduler="continuous")
        server = AsyncNormServer(service).start()
        with NormClient.connect(server.host, server.port) as client:
            client.normalize(np.ones((2, 48)), "tiny")
        server.close(drain_timeout=2.0)
        service.close()
        _assert_no_new_haan_threads(before)

    def test_metrics_server_close_joins_its_thread(self):
        from repro.tenancy import MetricsServer

        before = _live_haan_threads()
        metrics = MetricsServer(lambda: "# metrics\n", port=0).start()
        metrics.close()
        _assert_no_new_haan_threads(before)
