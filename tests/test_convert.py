"""Tests of the FP2FX / FX2FP converter units."""

import numpy as np
import pytest

from repro.numerics.convert import FP2FXConverter, FX2FPConverter
from repro.numerics.fixedpoint import FixedPointFormat, FixedPointValue
from repro.numerics.floating import FP16, FP32


class TestFP2FX:
    def test_convert_preserves_values(self):
        unit = FP2FXConverter(float_format=FP32)
        values = np.array([0.5, -1.25, 3.0])
        out = unit.convert(values)
        np.testing.assert_allclose(out.to_real(), values, atol=1e-4)

    def test_fp16_input_rounds_first(self):
        unit = FP2FXConverter(float_format=FP16, fixed_format=FixedPointFormat(16, 16))
        value = 1.0 + 1e-5
        out = unit.convert(value)
        assert out.to_real()[()] == pytest.approx(1.0, abs=1e-3)

    def test_activity_counters(self):
        unit = FP2FXConverter()
        unit.convert(np.zeros(10))
        unit.convert(np.zeros(5))
        assert unit.stats.converted_elements == 15
        assert unit.stats.invocations == 2
        unit.stats.reset()
        assert unit.stats.total_elements == 0

    def test_bypass_for_int8_inputs(self):
        unit = FP2FXConverter(fixed_format=FixedPointFormat(16, 16))
        codes = np.array([5, -3, 127])
        out = unit.bypass(codes)
        np.testing.assert_allclose(out.to_real(), codes)
        assert unit.stats.bypassed_elements == 3
        assert unit.stats.converted_elements == 0


class TestFX2FP:
    def test_convert_round_trips(self):
        fmt = FixedPointFormat(16, 16)
        unit = FX2FPConverter(float_format=FP32)
        value = FixedPointValue.from_real(fmt, [0.75, -2.5])
        np.testing.assert_allclose(unit.convert(value), [0.75, -2.5], atol=1e-4)
        assert unit.stats.converted_elements == 2

    def test_bypass_returns_fixed_point_values(self):
        fmt = FixedPointFormat(16, 16)
        unit = FX2FPConverter()
        value = FixedPointValue.from_real(fmt, [1.5])
        np.testing.assert_allclose(unit.bypass(value), [1.5])
        assert unit.stats.bypassed_elements == 1
        assert unit.stats.converted_elements == 0

    def test_fp16_output_precision(self):
        fmt = FixedPointFormat(4, 20)
        unit = FX2FPConverter(float_format=FP16)
        value = FixedPointValue.from_real(fmt, [1.0 + 2**-12])
        assert unit.convert(value)[0] == pytest.approx(1.0, abs=1e-3)
