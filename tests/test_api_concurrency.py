"""Concurrency and pipelining stress tests of the client/server API.

The contracts under test:

* **regression**: the v1 ``SocketTransport`` (one shared socket, no
  locking, no demultiplexing) hands a caller *whichever* response frame
  arrives next -- reproduced here over a raw socket and shown to
  cross-talk deterministically -- while the pooled transport routes every
  response to its requester by ``request_id``;
* **stress**: N threads sharing one pooled :class:`NormClient` against a
  live :class:`NormServer` each get responses bit-identical to the local
  reference engine, with zero cross-talk between interleaved requests;
* **out-of-order**: a server answering pipelined requests in reverse
  order still resolves every pending reply correctly;
* **restart**: killing the server mid-flight fails pending requests with
  :class:`TransportError` (never a hang, never a wrong payload) and the
  same client transparently reconnects to a restarted server on the same
  port.
"""

from __future__ import annotations

import select
import socket
import threading
import time

import numpy as np
import pytest

from repro.api.client import NormClient
from repro.api.envelopes import (
    SCHEMA_VERSION,
    PingRequest,
    TransportError,
)
from repro.api.framing import FrameDecoder, recv_frame, send_frame
from repro.api.server import NormServer
from repro.api.transport import SocketTransport
from repro.core.config import HaanConfig
from repro.core.haan_norm import HaanNormalization
from repro.core.subsampling import SubsampleSettings
from repro.llm.normalization import LayerNorm
from repro.numerics.quantization import DataFormat
from repro.serving.registry import CalibrationArtifact, CalibrationRegistry
from repro.serving.service import NormalizationService

HIDDEN = 32


def _instant_loader(model_name, dataset):
    """Calibration-free artifact: one computed HAAN layer + its reference."""
    rng = np.random.default_rng(17)
    base = LayerNorm(hidden_size=HIDDEN, layer_index=0, name="conc.norm0")
    base.load_affine(rng.normal(1.0, 0.1, HIDDEN), rng.normal(0.0, 0.1, HIDDEN))
    haan = HaanNormalization(
        base, subsample=SubsampleSettings(length=8), data_format=DataFormat.INT8
    )
    return CalibrationArtifact(
        model_name=model_name,
        dataset=dataset,
        model=None,
        config=HaanConfig(subsample_length=8, data_format=DataFormat.INT8),
        calibration=None,
        haan_layers=[haan],
        reference_layers=[base],
    )


@pytest.fixture()
def registry():
    return CalibrationRegistry(loader=_instant_loader)


@pytest.fixture()
def golden_engine(registry):
    return registry.get("tiny", "default").layer(0).engine_for("reference")


@pytest.fixture()
def live_server(registry):
    svc = NormalizationService(registry=registry)
    server = NormServer(svc, workers=8, max_inflight=64).start()
    yield server
    server.close()
    svc.close()


def _payload(thread: int, index: int, rows: int = 2) -> np.ndarray:
    """A payload unique to (thread, index): cross-talk cannot go unnoticed."""
    rng = np.random.default_rng(1000 * thread + index)
    return rng.normal(float(thread), 1.0, size=(rows, HIDDEN))


# ---------------------------------------------------------------------------
# regression: the v1 shared-socket transport cross-talks; the pool does not
# ---------------------------------------------------------------------------


class TestSharedSocketRegression:
    def test_v1_shared_socket_transport_cross_talks(self, live_server):
        """Reproduce the PR-4 defect deterministically.

        The old ``SocketTransport.request`` was ``send_frame`` then
        ``recv_frame`` on one shared socket with no locking and no
        request-id matching.  Two callers A and B interleaving on it:
        A sends, A's response arrives, then B sends and B reads -- B gets
        **A's** response.  This is exactly the old code path, minus the
        threads (the interleaving is forced, so the failure is
        deterministic, not a race that sometimes passes).
        """
        with socket.create_connection((live_server.host, live_server.port)) as sock:
            request_a = PingRequest()
            send_frame(sock, request_a.to_wire())
            # Wait until A's response bytes are buffered client-side, as
            # would happen whenever caller A is descheduled before reading.
            ready, _, _ = select.select([sock], [], [], 5.0)
            assert ready, "server never answered request A"
            time.sleep(0.05)  # let the whole frame land
            request_b = PingRequest()
            send_frame(sock, request_b.to_wire())
            response_for_b = recv_frame(sock)  # old code path for caller B
        assert response_for_b["request_id"] == request_a.request_id
        assert response_for_b["request_id"] != request_b.request_id

    def test_pooled_transport_routes_by_request_id(self, live_server):
        """The same forced interleaving through the pooled transport."""
        transport = SocketTransport(live_server.host, live_server.port)
        try:
            request_a = PingRequest()
            reply_a = transport.submit(request_a.to_wire())
            deadline = time.monotonic() + 5.0
            while not reply_a.done():  # A's response has arrived and parked
                assert time.monotonic() < deadline
                time.sleep(0.01)
            request_b = PingRequest()
            reply_b = transport.submit(request_b.to_wire())
            assert reply_b.result(5.0)["request_id"] == request_b.request_id
            assert reply_a.result(5.0)["request_id"] == request_a.request_id
        finally:
            transport.close()


# ---------------------------------------------------------------------------
# stress: threads sharing one pooled client
# ---------------------------------------------------------------------------


class TestPooledClientStress:
    THREADS = 8
    REQUESTS = 12

    def test_threads_share_one_client_bit_equality(self, live_server, golden_engine):
        client = NormClient.connect(live_server.host, live_server.port, pool_size=3)
        failures = []
        barrier = threading.Barrier(self.THREADS)

        def worker(thread_id: int) -> None:
            try:
                barrier.wait(timeout=10.0)
                for index in range(self.REQUESTS):
                    payload = _payload(thread_id, index)
                    result = client.normalize(payload, "tiny")
                    expected = golden_engine.run(payload)[0]
                    if not np.array_equal(result.output, expected):
                        failures.append(
                            f"thread {thread_id} request {index}: cross-talk or "
                            f"corruption (outputs differ)"
                        )
                        return
            except Exception as error:  # noqa: BLE001 -- collected for the assert
                failures.append(f"thread {thread_id}: {type(error).__name__}: {error}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        try:
            assert not failures, failures
            assert all(not thread.is_alive() for thread in threads)
        finally:
            client.close()

    def test_mixed_bulk_stream_and_single_traffic(self, live_server, golden_engine):
        """Interleaved op kinds on one client stay request-accurate."""
        client = NormClient.connect(live_server.host, live_server.port, pool_size=2)
        failures = []

        def single(thread_id):
            for index in range(6):
                payload = _payload(thread_id, index)
                result = client.normalize(payload, "tiny")
                if not np.array_equal(result.output, golden_engine.run(payload)[0]):
                    failures.append(f"single[{thread_id}/{index}] mismatch")

        def bulk(thread_id):
            payloads = [_payload(thread_id, i) for i in range(5)]
            for result, payload in zip(
                client.normalize_bulk(payloads, "tiny"), payloads
            ):
                if not np.array_equal(result.output, golden_engine.run(payload)[0]):
                    failures.append(f"bulk[{thread_id}] mismatch")

        def stream(thread_id):
            chunks = [_payload(thread_id, i) for i in range(5)]
            for result, chunk in zip(
                client.stream(chunks, "tiny", depth=3), chunks
            ):
                if not np.array_equal(result.output, golden_engine.run(chunk)[0]):
                    failures.append(f"stream[{thread_id}] mismatch")

        threads = [
            threading.Thread(target=fn, args=(i,))
            for i, fn in enumerate((single, bulk, stream, single, bulk, stream))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        client.close()
        assert not failures, failures

    def test_pipelined_depth_preserves_payload_order(self, live_server, golden_engine):
        payloads = [_payload(0, index) for index in range(16)]
        with NormClient.connect(live_server.host, live_server.port) as client:
            results = client.normalize_many(payloads, "tiny", depth=8)
        for payload, result in zip(payloads, results):
            assert np.array_equal(result.output, golden_engine.run(payload)[0])

    def test_pool_never_exceeds_pool_size_under_concurrent_dials(self, live_server):
        """Racing first-callers must not blow past the connection bound."""
        transport = SocketTransport(live_server.host, live_server.port, pool_size=2)
        errors = []
        barrier = threading.Barrier(8)

        def worker():
            try:
                barrier.wait(timeout=10.0)
                for _ in range(4):
                    request = PingRequest()
                    assert (
                        transport.submit(request.to_wire()).result(10.0)["request_id"]
                        == request.request_id
                    )
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        try:
            assert not errors, errors
            assert len(transport._connections) <= 2
            assert transport.stats()["connections"] <= 2
        finally:
            transport.close()

    def test_pool_stats_reflect_connections(self, live_server):
        client = NormClient.connect(live_server.host, live_server.port, pool_size=2)
        try:
            client.ping()
            stats = client.transport.stats()
            assert 1 <= stats["connections"] <= 2
            assert stats["negotiated_version"] == SCHEMA_VERSION
            assert stats["in_flight"] == 0
        finally:
            client.close()
        with pytest.raises(TransportError, match="closed"):
            client.ping()


# ---------------------------------------------------------------------------
# out-of-order responses (scripted server)
# ---------------------------------------------------------------------------


class TestOutOfOrderResponses:
    def test_reversed_responses_resolve_the_right_replies(self):
        """A server answering in reverse order still satisfies every reply."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        count = 3

        def stub_server():
            conn, _ = listener.accept()
            decoder = FrameDecoder()
            frames = []
            while len(frames) < count:
                frames.extend(decoder.feed(conn.recv(65536)))
            for request in reversed(frames):  # deterministic out-of-order
                send_frame(
                    conn,
                    {
                        "schema_version": SCHEMA_VERSION,
                        "op": "ping",
                        "ok": True,
                        "request_id": request["request_id"],
                        "backends": [],
                        "models": None,
                    },
                )
            conn.close()

        thread = threading.Thread(target=stub_server, daemon=True)
        thread.start()
        transport = SocketTransport("127.0.0.1", port, negotiate=False)
        try:
            requests = [PingRequest() for _ in range(count)]
            replies = [transport.submit(request.to_wire()) for request in requests]
            for request, reply in zip(requests, replies):
                assert reply.result(5.0)["request_id"] == request.request_id
        finally:
            transport.close()
            listener.close()
            thread.join(timeout=5.0)


class TestTransportFailureModes:
    def _stub(self, script):
        """One-connection stub server running ``script(conn, frames)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def serve():
            conn, _ = listener.accept()
            try:
                script(conn)
            finally:
                conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return listener, thread

    def test_unroutable_error_frame_poisons_all_pending(self):
        """A request_id-less error frame fails everything in flight."""
        from repro.api.envelopes import ErrorResponse, PayloadTooLargeError

        def script(conn):
            decoder = FrameDecoder()
            frames = []
            while len(frames) < 2:
                frames.extend(decoder.feed(conn.recv(65536)))
            # what a real server sends when the stream is unsynchronizable
            send_frame(conn, ErrorResponse(code="payload_too_large", message="too big").to_wire())

        listener, thread = self._stub(script)
        transport = SocketTransport("127.0.0.1", listener.getsockname()[1], negotiate=False)
        try:
            replies = [transport.submit(PingRequest().to_wire()) for _ in range(2)]
            for reply in replies:
                with pytest.raises(PayloadTooLargeError, match="too big"):
                    reply.result(5.0)
        finally:
            transport.close()
            listener.close()
            thread.join(timeout=5.0)

    def test_per_request_deadline_raises_transport_error(self):
        """A silent server trips the per-request deadline, never a hang."""

        def script(conn):
            decoder = FrameDecoder()
            while True:
                data = conn.recv(65536)
                if not data:
                    return
                decoder.feed(data)  # read and ignore: never answer

        listener, thread = self._stub(script)
        transport = SocketTransport(
            "127.0.0.1", listener.getsockname()[1], timeout=0.2, negotiate=False
        )
        try:
            start = time.monotonic()
            with pytest.raises(TransportError, match="failed after reconnect"):
                transport.request(PingRequest().to_wire())
            assert time.monotonic() - start < 5.0
        finally:
            transport.close()
            listener.close()
            thread.join(timeout=5.0)

    def test_pipelined_path_inherits_transport_deadline(self):
        """normalize_many(depth>1) without an explicit timeout must not hang."""
        from repro.api.client import NormClient

        def script(conn):
            decoder = FrameDecoder()
            while True:
                data = conn.recv(65536)
                if not data:
                    return
                decoder.feed(data)  # swallow everything, never answer

        listener, thread = self._stub(script)
        transport = SocketTransport(
            "127.0.0.1", listener.getsockname()[1], timeout=0.2, negotiate=False
        )
        client = NormClient(transport)
        try:
            start = time.monotonic()
            with pytest.raises(TransportError):
                client.normalize_many(
                    [np.zeros((1, HIDDEN))] * 3, "tiny", depth=3
                )
            assert time.monotonic() - start < 5.0
        finally:
            client.close()
            listener.close()
            thread.join(timeout=5.0)

    def test_legacy_peer_without_hello_op_downgrades_to_client_min(self):
        """A pre-hello server's 'unknown op' reply is the downgrade signal."""

        def script(conn):
            decoder = FrameDecoder()

            def read_one():
                while True:
                    frames = decoder.feed(conn.recv(65536))
                    if frames:
                        return frames[0]

            # frame 0 is the hello: answer like a v1 build (no hello op)
            hello = read_one()
            assert hello["op"] == "hello"
            assert hello["schema_version"] == 1  # parseable by a v1 peer
            send_frame(
                conn,
                {
                    "schema_version": 1,
                    "op": "error",
                    "ok": False,
                    "request_id": hello["request_id"],
                    "error": {"code": "bad_schema", "message": "unknown op 'hello'"},
                },
            )
            # the first real request must arrive stamped v1
            request = read_one()
            assert request["schema_version"] == 1
            send_frame(
                conn,
                {
                    "schema_version": 1,
                    "op": "ping",
                    "ok": True,
                    "request_id": request["request_id"],
                    "backends": [],
                    "models": None,
                },
            )

        listener, thread = self._stub(script)
        transport = SocketTransport("127.0.0.1", listener.getsockname()[1])
        try:
            response = transport.request(PingRequest().to_wire())
            assert response["request_id"] is not None
            assert transport.negotiated_version == 1
            assert transport.server_schema_range == (1, 1)
        finally:
            transport.close()
            listener.close()
            thread.join(timeout=5.0)

    def test_timed_out_requests_leave_no_pending_registration(self):
        """Abandoned requests are withdrawn from the in-flight map."""

        def script(conn):
            decoder = FrameDecoder()
            while True:
                data = conn.recv(65536)
                if not data:
                    return
                decoder.feed(data)  # never answer

        listener, thread = self._stub(script)
        transport = SocketTransport(
            "127.0.0.1", listener.getsockname()[1], timeout=0.2, negotiate=False
        )
        try:
            for _ in range(3):
                with pytest.raises(TransportError):
                    transport.request(PingRequest().to_wire())
            assert transport.stats()["in_flight"] == 0
        finally:
            transport.close()
            listener.close()
            thread.join(timeout=5.0)

    def test_socket_level_version_negotiation_rejects_disjoint_ranges(
        self, live_server
    ):
        """A client from the future fails the hello with both ranges named."""
        from repro.api.envelopes import SchemaVersionError

        transport = SocketTransport(
            live_server.host,
            live_server.port,
            schema_versions=(SCHEMA_VERSION + 1, SCHEMA_VERSION + 2),
        )
        try:
            with pytest.raises(SchemaVersionError) as excinfo:
                transport.request(PingRequest().to_wire())
            message = str(excinfo.value)
            assert f"client speaks {SCHEMA_VERSION + 1}..{SCHEMA_VERSION + 2}" in message
            assert f"server speaks 1..{SCHEMA_VERSION}" in message
        finally:
            transport.close()

    def test_socket_level_negotiation_downgrades_within_range(self, live_server):
        """A v1-only client downgrades: envelopes go out stamped version 1."""
        transport = SocketTransport(
            live_server.host, live_server.port, schema_versions=(1, 1)
        )
        try:
            response = transport.request(PingRequest().to_wire())
            assert transport.negotiated_version == 1
            assert response["schema_version"] == 1  # server echoed the version
            assert transport.server_schema_range == (1, SCHEMA_VERSION)
        finally:
            transport.close()


# ---------------------------------------------------------------------------
# server restart mid-flight
# ---------------------------------------------------------------------------


class TestServerRestartMidFlight:
    def test_pending_requests_fail_clean_and_client_reconnects(
        self, registry, golden_engine
    ):
        svc = NormalizationService(registry=registry)
        server = NormServer(svc, workers=4).start()
        port = server.port
        client = NormClient.connect(server.host, port, pool_size=2)
        try:
            warmup = _payload(9, 0)
            assert np.array_equal(
                client.normalize(warmup, "tiny").output, golden_engine.run(warmup)[0]
            )
            payloads = [_payload(7, index) for index in range(8)]
            handles = [client.submit_normalize(p, "tiny") for p in payloads]
            server.close()  # mid-flight: some handles may be unanswered
            svc.close()
            outcomes = {"ok": 0, "failed": 0}
            for payload, handle in zip(payloads, handles):
                try:
                    result = handle.result(10.0)
                except TransportError:
                    outcomes["failed"] += 1  # clean failure, never a hang
                else:
                    # answered before the shutdown: must still be *correct*
                    assert np.array_equal(
                        result.output, golden_engine.run(payload)[0]
                    )
                    outcomes["ok"] += 1
            assert outcomes["ok"] + outcomes["failed"] == len(payloads)

            # The same client object recovers against a restarted server on
            # the same port (transparent redial through the pool).
            svc2 = NormalizationService(registry=registry)
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    server2 = NormServer(svc2, port=port, workers=4).start()
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            try:
                after = _payload(9, 1)
                assert np.array_equal(
                    client.normalize(after, "tiny").output,
                    golden_engine.run(after)[0],
                )
                assert client.transport.stats()["reconnects"] >= 1
                # the redial re-ran the hello against the restarted server
                assert client.negotiated_version() == SCHEMA_VERSION
            finally:
                server2.close()
                svc2.close()
        finally:
            client.close()
