"""Tests of the deterministic word-level tokenizer."""

import pytest

from repro.llm.tokenizer import Tokenizer


class TestTokenizer:
    def test_deterministic_across_instances(self):
        a = Tokenizer(vocab_size=512)
        b = Tokenizer(vocab_size=512)
        text = "the model computes the layer norm"
        assert a.encode(text) == b.encode(text)

    def test_ids_within_vocab(self):
        tok = Tokenizer(vocab_size=100)
        ids = tok.encode("some words mapping into a small vocabulary range")
        assert all(0 <= i < 100 for i in ids)

    def test_bos_prepended(self):
        tok = Tokenizer()
        assert tok.encode("hello")[0] == tok.bos_id
        assert tok.encode("hello", add_bos=False)[0] != tok.bos_id

    def test_same_word_same_id(self):
        tok = Tokenizer()
        ids = tok.encode("norm norm norm", add_bos=False)
        assert len(set(ids)) == 1

    def test_case_insensitive(self):
        tok = Tokenizer()
        assert tok.token_id("Layer") == tok.token_id("layer")

    def test_max_len_truncates(self):
        tok = Tokenizer()
        ids = tok.encode("one two three four five six", max_len=3)
        assert len(ids) == 3

    def test_encode_batch_pads_to_common_length(self):
        tok = Tokenizer()
        batch = tok.encode_batch(["a short one", "a much longer sentence with many words"], max_len=10)
        assert all(len(row) == 10 for row in batch)
        assert batch[0][-1] == tok.pad_id

    def test_empty_word_maps_to_unk(self):
        tok = Tokenizer()
        assert tok.token_id("") == tok.unk_id

    def test_punctuation_tokenized(self):
        tok = Tokenizer()
        words = tok.tokenize_words("hello, world.")
        assert "," in words and "." in words

    def test_decode_skips_padding(self):
        tok = Tokenizer()
        text = tok.decode([tok.pad_id, tok.bos_id, 57])
        assert "pad" not in text
        assert "<bos>" in text

    def test_vocab_too_small_rejected(self):
        with pytest.raises(ValueError):
            Tokenizer(vocab_size=2)
