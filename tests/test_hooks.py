"""Tests of the activation context and statistics traces."""

import numpy as np
import pytest

from repro.llm.hooks import ActivationContext, NormLayerRecord, StatisticsTrace


def _record(layer_index, num_tokens=4, scale=1.0):
    isd = np.full(num_tokens, scale)
    return NormLayerRecord(
        layer_index=layer_index,
        layer_name=f"layer{layer_index}",
        mean=np.zeros(num_tokens),
        isd=isd,
        input_variance=1.0 / isd**2,
    )


class TestActivationContext:
    def test_isd_storage_and_retrieval(self):
        context = ActivationContext()
        context.store_isd(3, np.array([1.0, 2.0]))
        np.testing.assert_array_equal(context.isd_of(3), [1.0, 2.0])
        assert context.isd_of(4) is None
        assert context.known_layers == [3]

    def test_records_only_kept_when_enabled(self):
        silent = ActivationContext(record_statistics=False)
        silent.record(_record(0))
        assert silent.records == []
        recording = ActivationContext(record_statistics=True)
        recording.record(_record(0))
        assert len(recording.records) == 1

    def test_log_isd_property(self):
        record = _record(0, scale=np.e)
        np.testing.assert_allclose(record.log_isd, 1.0)


class TestStatisticsTrace:
    def test_absorb_and_matrix(self):
        trace = StatisticsTrace(num_layers=2, layer_names=["a", "b"])
        context = ActivationContext(record_statistics=True)
        context.record(_record(0, num_tokens=3, scale=2.0))
        context.record(_record(1, num_tokens=3, scale=1.0))
        trace.absorb(context)
        matrix = trace.isd_matrix()
        assert matrix.shape == (3, 2)
        np.testing.assert_allclose(matrix[:, 0], 2.0)
        assert trace.num_tokens == 3

    def test_mismatched_token_counts_rejected(self):
        trace = StatisticsTrace(num_layers=2, layer_names=["a", "b"])
        context = ActivationContext(record_statistics=True)
        context.record(_record(0, num_tokens=3))
        context.record(_record(1, num_tokens=4))
        trace.absorb(context)
        with pytest.raises(ValueError):
            trace.isd_matrix()

    def test_mean_log_isd(self):
        trace = StatisticsTrace(num_layers=1, layer_names=["a"])
        context = ActivationContext(record_statistics=True)
        context.record(_record(0, num_tokens=5, scale=np.e))
        trace.absorb(context)
        np.testing.assert_allclose(trace.mean_log_isd(), [1.0])

    def test_empty_trace(self):
        trace = StatisticsTrace(num_layers=3, layer_names=["a", "b", "c"])
        assert trace.num_tokens == 0
        assert trace.isd_matrix().shape == (0, 3)
        np.testing.assert_array_equal(trace.mean_log_isd(), np.zeros(3))
