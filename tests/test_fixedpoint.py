"""Unit and property tests of the fixed-point arithmetic model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.fixedpoint import (
    FixedPointFormat,
    FixedPointOverflowError,
    FixedPointValue,
)


class TestFixedPointFormat:
    def test_basic_properties(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=8)
        assert fmt.total_bits == 16
        assert fmt.scale == pytest.approx(1 / 256)
        assert fmt.max_code == 2**15 - 1
        assert fmt.min_code == -(2**15)
        assert fmt.describe() == "Q8.8"

    def test_max_and_min_value(self):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=4)
        assert fmt.max_value == pytest.approx((2**7 - 1) / 16)
        assert fmt.min_value == pytest.approx(-(2**7) / 16)

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=0, fraction_bits=4)
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=4, fraction_bits=-1)
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=40, fraction_bits=40)

    def test_encode_decode_exact_values(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=8)
        values = np.array([0.0, 1.0, -1.0, 0.5, -0.25, 3.75])
        np.testing.assert_allclose(fmt.decode(fmt.encode(values)), values)

    def test_encode_rounds_to_nearest(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=2)
        assert fmt.quantize(0.2) == pytest.approx(0.25)
        assert fmt.quantize(0.1) == pytest.approx(0.0)

    def test_saturation_clamps(self):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=4)
        assert fmt.quantize(1000.0) == pytest.approx(fmt.max_value)
        assert fmt.quantize(-1000.0) == pytest.approx(fmt.min_value)

    def test_overflow_raises_when_saturation_disabled(self):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=4, saturate=False)
        with pytest.raises(FixedPointOverflowError):
            fmt.encode(1000.0)

    def test_nan_maps_to_zero(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=8)
        assert fmt.quantize(np.nan) == 0.0

    def test_int8_factory(self):
        fmt = FixedPointFormat.int8()
        assert fmt.total_bits == 8
        assert fmt.fraction_bits == 0
        assert fmt.max_code == 127

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_quantization_error_bounded_by_half_lsb(self, value):
        fmt = FixedPointFormat(integer_bits=9, fraction_bits=16)
        quantized = fmt.quantize(value)
        assert abs(quantized - value) <= fmt.scale / 2 + 1e-12

    @given(st.lists(st.floats(min_value=-7, max_value=7, allow_nan=False), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_roundtrip_is_idempotent(self, values):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=12)
        once = fmt.quantize(values)
        twice = fmt.quantize(once)
        np.testing.assert_allclose(once, twice)


class TestFixedPointValue:
    def test_addition_exact(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=8)
        a = FixedPointValue.from_real(fmt, [1.5, -2.0])
        b = FixedPointValue.from_real(fmt, [0.25, 1.0])
        np.testing.assert_allclose(a.add(b).to_real(), [1.75, -1.0])

    def test_subtraction_exact(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=8)
        a = FixedPointValue.from_real(fmt, [1.5, -2.0])
        b = FixedPointValue.from_real(fmt, [0.25, 1.0])
        np.testing.assert_allclose(a.subtract(b).to_real(), [1.25, -3.0])

    def test_addition_saturates(self):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=4)
        a = FixedPointValue.from_real(fmt, [7.9])
        result = a.add(a)
        assert result.to_real()[0] == pytest.approx(fmt.max_value)

    def test_format_mismatch_rejected(self):
        a = FixedPointValue.from_real(FixedPointFormat(8, 8), [1.0])
        b = FixedPointValue.from_real(FixedPointFormat(8, 4), [1.0])
        with pytest.raises(ValueError):
            a.add(b)

    def test_multiplication_matches_real_product(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=16)
        a = FixedPointValue.from_real(fmt, [1.5, -2.25, 0.125])
        b = FixedPointValue.from_real(fmt, [2.0, 3.0, -8.0])
        np.testing.assert_allclose(a.multiply(b).to_real(), [3.0, -6.75, -1.0], atol=1e-4)

    def test_multiply_scalar(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=16)
        a = FixedPointValue.from_real(fmt, [2.0, 4.0])
        np.testing.assert_allclose(a.multiply_scalar(0.5).to_real(), [1.0, 2.0], atol=1e-4)

    def test_shift_right_halves(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=8)
        a = FixedPointValue.from_real(fmt, [4.0])
        assert a.shift_right(1).to_real()[0] == pytest.approx(2.0)

    def test_shift_left_saturates(self):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=4)
        a = FixedPointValue.from_real(fmt, [6.0])
        assert a.shift_left(4).to_real()[0] == pytest.approx(fmt.max_value)

    def test_negate(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=8)
        a = FixedPointValue.from_real(fmt, [1.5, -2.0])
        np.testing.assert_allclose(a.negate().to_real(), [-1.5, 2.0])

    def test_cast_realigns_binary_point(self):
        src = FixedPointFormat(integer_bits=8, fraction_bits=8)
        dst = FixedPointFormat(integer_bits=8, fraction_bits=4)
        a = FixedPointValue.from_real(src, [1.5])
        assert a.cast(dst).to_real()[0] == pytest.approx(1.5)

    def test_sum_matches_numpy(self, rng):
        fmt = FixedPointFormat(integer_bits=16, fraction_bits=16)
        data = rng.normal(size=64)
        value = FixedPointValue.from_real(fmt, data)
        assert value.sum().to_real() == pytest.approx(np.sum(fmt.quantize(data)), abs=1e-3)

    def test_mean_matches_numpy(self, rng):
        fmt = FixedPointFormat(integer_bits=16, fraction_bits=16)
        data = rng.normal(size=32)
        value = FixedPointValue.from_real(fmt, data)
        assert value.mean().to_real() == pytest.approx(np.mean(data), abs=1e-3)

    def test_zeros_constructor(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=8)
        z = FixedPointValue.zeros(fmt, (3, 2))
        assert z.shape == (3, 2)
        assert np.all(z.to_real() == 0)

    @given(
        st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=1, max_size=16),
        st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=1, max_size=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_addition_commutes(self, xs, ys):
        size = min(len(xs), len(ys))
        fmt = FixedPointFormat(integer_bits=12, fraction_bits=12)
        a = FixedPointValue.from_real(fmt, xs[:size])
        b = FixedPointValue.from_real(fmt, ys[:size])
        np.testing.assert_array_equal(a.add(b).codes, b.add(a).codes)
