"""Tests of the HAAN algorithm configuration objects."""

import pytest

from repro.core.config import HaanConfig, PAPER_MODEL_SETTINGS, paper_config_for
from repro.numerics.quantization import DataFormat


class TestHaanConfig:
    def test_disabled_config(self):
        config = HaanConfig.disabled()
        assert not config.skipping_enabled
        assert not config.subsampling_enabled
        assert config.num_skipped_layers() == 0

    def test_skip_membership_is_half_open(self):
        config = HaanConfig(skip_range=(10, 14))
        assert not config.is_skipped(10)  # anchor layer is computed
        assert config.is_skipped(11)
        assert config.is_skipped(14)
        assert not config.is_skipped(15)
        assert config.num_skipped_layers() == 4

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            HaanConfig(skip_range=(5, 3))
        with pytest.raises(ValueError):
            HaanConfig(skip_range=(-1, 3))
        with pytest.raises(ValueError):
            HaanConfig(subsample_length=0)
        with pytest.raises(ValueError):
            HaanConfig(newton_iterations=-1)

    def test_with_overrides(self):
        config = HaanConfig(subsample_length=256)
        updated = config.with_overrides(data_format=DataFormat.INT8)
        assert updated.data_format is DataFormat.INT8
        assert updated.subsample_length == 256
        assert config.data_format is DataFormat.FP32


class TestPaperSettings:
    def test_three_models_covered(self):
        assert set(PAPER_MODEL_SETTINGS) == {"llama-7b", "opt-2.7b", "gpt2-1.5b"}

    def test_llama_setting_matches_section_va(self):
        config = paper_config_for("llama-7b")
        assert config.skip_range == (50, 60)
        assert config.subsample_length == 256
        assert config.data_format is DataFormat.INT8

    def test_opt_setting_matches_section_va(self):
        config = paper_config_for("opt-2.7b")
        assert config.skip_range == (55, 62)
        assert config.subsample_length == 1280
        assert config.data_format is DataFormat.FP16
        # "7 out of 65 ISD operations can be skipped"
        assert config.num_skipped_layers() == 7

    def test_gpt2_setting_matches_section_va(self):
        config = paper_config_for("gpt2-1.5b")
        assert config.skip_range == (85, 92)
        assert config.subsample_length == 800
        assert config.data_format is DataFormat.FP16

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            paper_config_for("mistral-7b")
