"""Tests of the fast inverse square root (bit hack + Newton refinement)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.fast_inv_sqrt import (
    FastInvSqrt,
    fast_inv_sqrt,
    initial_seed,
    newton_refine,
    relative_error,
)
from repro.numerics.floating import FP16


class TestSeed:
    def test_seed_is_rough_approximation(self):
        x = np.array([0.25, 1.0, 4.0, 100.0])
        seed = initial_seed(x)
        exact = 1.0 / np.sqrt(x)
        assert np.all(np.abs(seed - exact) / exact < 0.05)

    def test_seed_rejects_non_positive(self):
        assert np.isnan(initial_seed(np.array([0.0]))[0])
        assert np.isnan(initial_seed(np.array([-1.0]))[0])

    def test_fp16_seed_also_works(self):
        x = np.array([0.5, 2.0, 8.0])
        seed = initial_seed(x, FP16)
        exact = 1.0 / np.sqrt(x)
        assert np.all(np.abs(seed - exact) / exact < 0.08)


class TestNewton:
    def test_one_iteration_reaches_paper_accuracy(self):
        # "a single iteration is adequate to achieve accurate results"
        x = np.logspace(-4, 4, 200)
        err = relative_error(x, newton_iterations=1)
        assert np.max(err) < 2e-3

    def test_two_iterations_much_better(self):
        x = np.logspace(-4, 4, 200)
        assert np.max(relative_error(x, newton_iterations=2)) < 1e-5

    def test_error_decreases_with_iterations(self):
        x = np.logspace(-3, 3, 100)
        errors = [np.max(relative_error(x, newton_iterations=n)) for n in range(4)]
        assert errors == sorted(errors, reverse=True)

    def test_zero_iterations_returns_seed(self):
        x = np.array([2.0, 5.0])
        np.testing.assert_allclose(fast_inv_sqrt(x, newton_iterations=0), initial_seed(x))

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            newton_refine(np.array([1.0]), np.array([1.0]), iterations=-1)

    @given(st.floats(min_value=1e-4, max_value=1e6, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_single_newton_relative_error_bound(self, x):
        assert relative_error(np.array([x]), newton_iterations=1)[0] < 2e-3


class TestHardwareUnit:
    def test_compute_matches_exact(self, rng):
        unit = FastInvSqrt(newton_iterations=1)
        variances = rng.uniform(0.01, 50.0, size=100)
        approx = unit.compute(variances)
        exact = unit.compute_exact(variances)
        assert np.max(np.abs(approx - exact) / exact) < 5e-3

    def test_activity_counters(self):
        unit = FastInvSqrt(newton_iterations=2)
        unit.compute(np.ones(5))
        assert unit.stats.invocations == 1
        assert unit.stats.elements == 5
        assert unit.stats.newton_iterations == 10

    def test_max_relative_error_helper(self):
        unit = FastInvSqrt()
        assert unit.max_relative_error(np.array([0.5, 1.0, 2.0])) < 5e-3
