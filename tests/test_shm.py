"""Shared-memory transport suite: slab allocator, attach lifecycle, parity.

Contracts pinned here:

* :class:`SlabRing` is a real allocator -- aligned slabs, exhaustion
  returns ``None`` (never raises), frees coalesce so the ring does not
  fragment permanently;
* the attach handshake is opportunistic -- a refusing server (flag off),
  a pre-v3 peer, or a full ring all degrade to inline binary TCP frames
  with identical results;
* tensor bytes genuinely leave the socket: a same-host shm client moves
  orders of magnitude fewer bytes through TCP than its payloads hold;
* slab lifetime is sound -- tx slabs are reclaimed when replies arrive,
  rx slabs when the client's ``shm_release`` lands, and everything is
  freed on close (segments unlinked by their creator only);
* malformed slab descriptors fail closed into the ApiError taxonomy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.client import NormClient
from repro.api.envelopes import BadSchemaError
from repro.api.server import NormServer
from repro.api.shm import (
    SLAB_ALIGNMENT,
    ServerShmSession,
    SharedMemoryTransport,
    SlabRing,
)
from repro.api.transport import available_transports, create_transport
from repro.serving.registry import CalibrationRegistry
from repro.serving.service import NormalizationService


@pytest.fixture(scope="module")
def registry():
    """One calibration per module: every test shares the same artifacts."""
    return CalibrationRegistry()


@pytest.fixture()
def server(registry):
    with NormalizationService(registry=registry) as service:
        with NormServer(service) as srv:
            yield srv


@pytest.fixture()
def no_shm_server(registry):
    with NormalizationService(registry=registry) as service:
        with NormServer(service, enable_shm=False) as srv:
            yield srv


# ---------------------------------------------------------------------------
# the slab allocator
# ---------------------------------------------------------------------------


class TestSlabRing:
    def test_allocations_are_aligned_and_disjoint(self):
        ring = SlabRing(1024)
        offsets = [ring.alloc(n) for n in (1, 63, 64, 65, 100)]
        assert all(offset is not None for offset in offsets)
        assert all(offset % SLAB_ALIGNMENT == 0 for offset in offsets)
        assert len(set(offsets)) == len(offsets)

    def test_exhaustion_returns_none_never_raises(self):
        ring = SlabRing(128)
        assert ring.alloc(128) == 0
        assert ring.alloc(1) is None  # full: a soft failure, not an exception
        assert ring.free(0)
        assert ring.alloc(128) == 0  # fully reusable after the free

    def test_frees_coalesce_across_neighbours(self):
        ring = SlabRing(256)
        offsets = [ring.alloc(64) for _ in range(4)]
        assert offsets == [0, 64, 128, 192]
        # Free out of order; a full-ring allocation must succeed afterwards,
        # which is only possible if the spans merged back into one.
        for offset in (64, 192, 0, 128):
            assert ring.free(offset)
        assert ring.alloc(256) == 0

    def test_unknown_or_double_free_is_ignored(self):
        ring = SlabRing(256)
        offset = ring.alloc(10)
        assert ring.free(offset)
        assert not ring.free(offset)  # double free
        assert not ring.free(7)  # never allocated
        assert ring.slabs_in_use == 0

    def test_usage_gauges(self):
        ring = SlabRing(1024)
        ring.alloc(1)
        ring.alloc(65)
        assert ring.slabs_in_use == 2
        assert ring.bytes_in_use == SLAB_ALIGNMENT + 2 * SLAB_ALIGNMENT

    def test_undersized_ring_is_rejected(self):
        with pytest.raises(ValueError, match="smaller than"):
            SlabRing(SLAB_ALIGNMENT - 1)


# ---------------------------------------------------------------------------
# attach lifecycle and fallback
# ---------------------------------------------------------------------------


class TestAttachLifecycle:
    def test_registered_and_creatable_by_name(self, server):
        assert "shm" in available_transports()
        transport = create_transport("shm", host=server.host, port=server.port)
        try:
            assert isinstance(transport, SharedMemoryTransport)
        finally:
            transport.close()

    def test_attach_accepted_and_tagged_in_telemetry(self, server):
        with NormClient.connect(server.host, server.port, transport="shm") as client:
            client.normalize(np.zeros((2, 64)), "tiny")
            stats = client.transport.stats()
            assert stats["shm"]["sessions"] == 1
            assert stats["shm"]["refusals"] == 0
            rows = server.wire_snapshot()["per_connection"]
            assert [row["encoding"] for row in rows] == ["shm"]

    def test_refused_attach_falls_back_to_tcp(self, no_shm_server):
        with NormClient.connect(
            no_shm_server.host, no_shm_server.port, transport="shm"
        ) as client:
            result = client.normalize(np.ones((2, 64)), "tiny")
            assert result.output.shape == (2, 64)
            stats = client.transport.stats()["shm"]
            assert stats["sessions"] == 0
            assert stats["refusals"] == 1

    def test_pre_v3_negotiation_skips_the_attach(self, server):
        transport = SharedMemoryTransport(
            server.host, server.port, schema_versions=(1, 2)
        )
        with NormClient(transport) as client:
            result = client.normalize(np.ones((1, 64)), "tiny")
            assert result.output.shape == (1, 64)
            assert transport.negotiated_version == 2
            assert transport.stats()["shm"]["sessions"] == 0

    def test_segments_are_unlinked_on_close(self, server):
        transport = SharedMemoryTransport(server.host, server.port)
        client = NormClient(transport)
        client.normalize(np.zeros((1, 64)), "tiny")
        (session,) = transport._sessions.values()
        names = (session.tx.name, session.rx.name)
        client.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name, create=False)


# ---------------------------------------------------------------------------
# parity and byte accounting
# ---------------------------------------------------------------------------


class TestShmParity:
    def test_bit_identical_to_in_process_across_shapes(self, server, registry):
        rng = np.random.default_rng(3)
        payloads = [rng.normal(size=(rows, 64)) for rows in (1, 2, 17)]
        with NormClient.in_process(registry=registry) as golden_client:
            golden = [golden_client.normalize(p, "tiny").output for p in payloads]
        with NormClient.connect(server.host, server.port, transport="shm") as client:
            for payload, expected in zip(payloads, golden):
                result = client.normalize(payload, "tiny")
                assert np.array_equal(result.output, expected)
            bulk = client.normalize_bulk(payloads, "tiny")
            for item, expected in zip(bulk, golden):
                assert np.array_equal(item.output, expected)
            streamed = list(client.stream(iter(payloads), "tiny"))
            for item, expected in zip(streamed, golden):
                assert np.array_equal(item.output, expected)

    def test_tensor_bytes_stay_off_the_socket(self, server):
        rows = np.random.default_rng(0).normal(size=(512, 64))  # 256 KiB
        with NormClient.connect(server.host, server.port, transport="shm") as client:
            client.normalize(rows, "tiny")
            snapshot = server.wire_snapshot()
            assert snapshot["bytes_received"] < rows.nbytes // 8

    def test_tx_slabs_reclaimed_after_replies(self, server):
        with NormClient.connect(server.host, server.port, transport="shm") as client:
            for _ in range(4):
                client.normalize(np.zeros((8, 64)), "tiny")
            assert client.transport.stats()["shm"]["tx_slabs_in_use"] == 0

    def test_full_ring_degrades_to_inline_binary(self, server):
        # A ring too small for the payload: staging fails softly and the
        # tensor rides inline in the v3 binary frame instead.
        with NormClient(
            SharedMemoryTransport(server.host, server.port, ring_bytes=256)
        ) as client:
            rows = np.random.default_rng(1).normal(size=(16, 64))  # 8 KiB > ring
            result = client.normalize(rows, "tiny")
            assert result.output.shape == (16, 64)
            assert client.transport.stats()["shm"]["sessions"] == 1


# ---------------------------------------------------------------------------
# fail-closed descriptor handling
# ---------------------------------------------------------------------------


class TestServerSession:
    def _attached(self, ring_bytes=4096):
        from repro.api.shm import _ClientShmSession

        client_side = _ClientShmSession(ring_bytes)
        payload = client_side.attach_envelope(3)
        return client_side, ServerShmSession.attach(payload)

    def test_out_of_bounds_descriptors_are_rejected(self):
        client_side, session = self._attached()
        try:
            for data in (
                {"offset": 0, "length": 1 << 40},
                {"offset": -1, "length": 8},
                {"offset": "0", "length": 8},
                {"offset": True, "length": 8},
                [0, 8],
            ):
                tensor = {
                    "encoding": "shm",
                    "dtype": "float64",
                    "shape": [1],
                    "data": data,
                }
                with pytest.raises(BadSchemaError):
                    session.resolve_inbound({"op": "normalize", "tensor": tensor})
        finally:
            session.close()
            client_side.close()

    def test_attach_rejects_malformed_envelopes(self):
        for payload in (
            {},
            {"tx": {"name": "x", "size": 1 << 40}, "rx": {"name": "y", "size": 64}},
            {"tx": {"name": "", "size": 64}, "rx": {"name": "y", "size": 64}},
            {"tx": {"name": "x", "size": "64"}, "rx": {"name": "y", "size": 64}},
        ):
            with pytest.raises(BadSchemaError):
                ServerShmSession.attach(payload)

    def test_release_ignores_garbage(self):
        client_side, session = self._attached()
        try:
            assert session.release(None) == 0
            assert session.release("x") == 0
            assert session.release([True, "a", 10**9, None]) == 0
        finally:
            session.close()
            client_side.close()
