"""Tests of the evaluation harness: tasks, accuracy, perplexity, breakdown, end-to-end."""

import numpy as np
import pytest

from repro.core.config import HaanConfig
from repro.eval.accuracy import (
    evaluate_configuration,
    evaluate_model_on_suite,
    evaluate_original,
    prepare_model_evaluation,
)
from repro.eval.end_to_end import amdahl_speedup, average_end_to_end_speedup, end_to_end_speedup
from repro.eval.latency_breakdown import (
    calibrated_rates,
    normalization_share_growth,
    optimized_breakdown,
    original_breakdown,
)
from repro.eval.perplexity import evaluate_perplexity, perplexity_delta, subsample_sweep_nsubs
from repro.eval.tasks import (
    build_labeled_task,
    build_task_suite,
    evaluate_task,
    target_accuracy_for,
)
from repro.llm.datasets import perplexity_texts
from repro.numerics.quantization import DataFormat
from repro.utils.tables import format_markdown_table, format_table


class TestTasks:
    @pytest.fixture(scope="class")
    def labeled(self, tiny_model):
        return build_labeled_task(tiny_model, "piqa", num_items=8, max_seq_len=32, seed=1)

    def test_items_built(self, labeled):
        assert labeled.num_items == 8
        assert labeled.short_name == "PQ"
        for item in labeled.items:
            assert 0 <= item.gold_index < len(item.choice_ids)
            assert item.reference_scores.shape == (len(item.choice_ids),)

    def test_reference_accuracy_near_target(self, tiny_model):
        task = build_labeled_task(
            tiny_model, "hellaswag", num_items=30, max_seq_len=32, target_accuracy=0.8, seed=2
        )
        assert 0.6 <= task.reference_accuracy() <= 1.0

    def test_reference_model_scores_itself_consistently(self, tiny_model, labeled):
        accuracy = evaluate_task(tiny_model, labeled, max_seq_len=32)
        assert accuracy == pytest.approx(labeled.reference_accuracy())

    def test_target_accuracy_lookup(self):
        assert target_accuracy_for("llama-7b", "piqa") == pytest.approx(0.7867)
        assert target_accuracy_for("unknown-model", "piqa") == pytest.approx(0.65)

    def test_unknown_task_rejected(self, tiny_model):
        with pytest.raises(KeyError):
            build_labeled_task(tiny_model, "not-a-task", num_items=2)

    def test_build_suite_subset(self, tiny_model):
        suite = build_task_suite(tiny_model, num_items=2, max_seq_len=24, tasks=["piqa", "winogrande"])
        assert set(suite) == {"piqa", "winogrande"}


class TestAccuracyHarness:
    @pytest.fixture(scope="class")
    def prepared(self):
        return prepare_model_evaluation(
            "tiny", num_items=6, max_seq_len=32, task_names=["piqa", "arc_easy"], calibration_texts_count=5
        )

    def test_original_report(self, prepared):
        _, tasks, _ = prepared
        report = evaluate_original(tasks, "tiny")
        assert set(report.accuracies) == {"piqa", "arc_easy"}
        assert 0.0 <= report.mean_accuracy() <= 1.0

    def test_haan_configuration_close_to_original(self, prepared):
        _, tasks, calibration = prepared
        original = evaluate_original(tasks, "tiny")
        config = HaanConfig(
            skip_range=calibration.skip_range,
            subsample_length=256,
            data_format=DataFormat.FP16,
        )
        haan = evaluate_configuration("tiny", config, tasks, calibration, max_seq_len=32)
        assert haan.max_degradation_vs(original) <= 0.35

    def test_report_row_formatting(self, prepared):
        _, tasks, _ = prepared
        report = evaluate_original(tasks, "tiny")
        row = report.as_row(["piqa", "arc_easy"])
        assert row[0] == "Original"
        assert len(row) == 3

    def test_evaluate_model_on_suite(self, prepared, tiny_model):
        _, tasks, _ = prepared
        report = evaluate_model_on_suite(tiny_model, tasks, label="reference", max_seq_len=32)
        original = evaluate_original(tasks, "tiny")
        assert report.accuracies == pytest.approx(original.accuracies)


class TestPerplexity:
    def test_perplexity_positive_and_finite(self, tiny_model):
        result = evaluate_perplexity(tiny_model, perplexity_texts(4), max_seq_len=24)
        assert np.isfinite(result.perplexity)
        assert result.perplexity > 1.0
        assert result.total_tokens > 0

    def test_perplexity_delta(self, tiny_model):
        reference = evaluate_perplexity(tiny_model, perplexity_texts(3), max_seq_len=24)
        assert perplexity_delta(reference, reference) == 0.0

    def test_nsub_sweep_values(self):
        values = subsample_sweep_nsubs(4096)
        assert values == sorted(values)
        assert 4096 in values


class TestLatencyBreakdown:
    def test_original_matches_calibration_targets(self):
        breakdown = original_breakdown("gpt2-117m")
        shares = breakdown.shares()
        assert shares["normalization"] == pytest.approx(0.161, abs=0.01)
        assert shares["matmul"] == pytest.approx(0.572, abs=0.01)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_optimization_raises_normalization_share(self):
        for model in ("gpt2-117m", "opt-2.7b"):
            before, after = normalization_share_growth(model)
            assert after > before
            assert after > 0.25  # the paper's ">33%" claim, with model tolerance

    def test_optimized_total_is_smaller(self):
        before = original_breakdown("gpt2-117m").total
        after = optimized_breakdown("gpt2-117m").total
        assert after < before

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            calibrated_rates("tiny")


class TestEndToEnd:
    def test_amdahl_limits(self):
        assert amdahl_speedup(0.0, 10.0) == pytest.approx(1.0)
        assert amdahl_speedup(1.0, 10.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 10.0)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0.0)

    def test_end_to_end_speedup_near_paper(self):
        results = end_to_end_speedup(seq_lens=(128, 256, 512))
        average = average_end_to_end_speedup(results)
        # Paper reports ~1.11x; the model lands in the same band.
        assert 1.05 <= average <= 1.25
        for result in results.values():
            assert result.end_to_end_speedup > 1.0


class TestTableFormatting:
    def test_plain_table(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]], title="T")
        assert "T" in text and "1" in text and "---" not in text.split("\n")[0]

    def test_markdown_table(self):
        text = format_markdown_table(["a", "b"], [[1, None]])
        assert text.startswith("| a | b |")
        assert "| 1 |  |" in text
