"""Tests of the HAAN datapath units (adder tree, stats calculator, inverter, norm unit, predictor unit)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictor import IsdPredictor
from repro.hardware.units import (
    AdderTree,
    InputStatisticsCalculator,
    IsdPredictorUnit,
    NormalizationUnit,
    SquareRootInverter,
)
from repro.numerics.quantization import DataFormat


class TestAdderTree:
    def test_reduce_matches_sum(self, rng):
        tree = AdderTree(width=16)
        data = rng.normal(size=16)
        assert tree.reduce(data).to_real() == pytest.approx(np.sum(data), abs=1e-3)

    def test_partial_beat_accepted(self, rng):
        tree = AdderTree(width=16)
        data = rng.normal(size=5)
        assert tree.reduce(data).to_real() == pytest.approx(np.sum(data), abs=1e-3)

    def test_too_wide_beat_rejected(self, rng):
        with pytest.raises(ValueError):
            AdderTree(width=4).reduce(rng.normal(size=5))

    def test_accumulate_streams_full_vector(self, rng):
        tree = AdderTree(width=8)
        data = rng.normal(size=50)
        assert tree.accumulate(data).to_real() == pytest.approx(np.sum(data), abs=1e-2)

    def test_structural_properties(self):
        tree = AdderTree(width=16)
        assert tree.depth == 4
        assert tree.num_adders == 15
        assert AdderTree(width=1).depth == 1

    def test_cycles_for(self):
        tree = AdderTree(width=16)
        assert tree.cycles_for(16) == 1
        assert tree.cycles_for(17) == 2
        assert tree.cycles_for(0) == 0

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_cycles_ceiling_property(self, width, elements):
        assert AdderTree(width=width).cycles_for(elements) == -(-elements // width)


class TestInputStatisticsCalculator:
    def test_matches_numpy_statistics(self, rng):
        calc = InputStatisticsCalculator(width=32, data_format=DataFormat.FP32)
        rows = rng.normal(1.0, 2.0, size=(6, 96))
        result = calc.compute(rows)
        np.testing.assert_allclose(result.mean, rows.mean(axis=1), atol=5e-3)
        np.testing.assert_allclose(result.variance, rows.var(axis=1) + calc.eps, rtol=2e-2)

    def test_subsampling_reduces_passes_and_uses_prefix(self, rng):
        calc = InputStatisticsCalculator(width=16)
        rows = rng.normal(size=(2, 64))
        full = calc.compute(rows)
        sub = calc.compute(rows, subsample_length=16)
        assert sub.passes_per_row < full.passes_per_row
        np.testing.assert_allclose(
            sub.variance, rows[:, :16].var(axis=1) + calc.eps, rtol=5e-2
        )

    def test_rms_mode_skips_mean(self, rng):
        calc = InputStatisticsCalculator(width=16, compute_mean=False)
        rows = rng.normal(2.0, 1.0, size=(2, 32))
        result = calc.compute(rows)
        np.testing.assert_array_equal(result.mean, 0.0)

    def test_variance_never_negative(self, rng):
        calc = InputStatisticsCalculator(width=16)
        rows = np.full((3, 32), 5.0)
        result = calc.compute(rows)
        assert np.all(result.variance > 0)

    def test_cycle_model(self):
        calc = InputStatisticsCalculator(width=128)
        assert calc.passes_per_row(1600) == 13
        assert calc.passes_per_row(1600, subsample_length=800) == 7
        assert calc.cycles_for(10, 1600) == (13 + 2) * 10

    def test_int8_bypass_path(self, rng):
        calc = InputStatisticsCalculator(width=16, data_format=DataFormat.INT8)
        rows = np.rint(rng.normal(0, 20, size=(2, 32)))
        result = calc.compute(rows)
        np.testing.assert_allclose(result.mean, rows.mean(axis=1), atol=0.5)


class TestSquareRootInverter:
    def test_matches_exact_inverse_sqrt(self, rng):
        unit = SquareRootInverter()
        variances = rng.uniform(0.01, 100.0, size=50)
        approx = unit.compute(variances)
        exact = unit.compute_exact(variances)
        assert np.max(np.abs(approx - exact) / exact) < 5e-3

    def test_cycle_model_pipelined(self):
        unit = SquareRootInverter(latency=6)
        assert unit.cycles_for(1) == 6
        assert unit.cycles_for(10) == 15
        assert unit.cycles_for(0) == 0

    def test_activity_counter(self):
        unit = SquareRootInverter()
        unit.compute(np.ones(7))
        assert unit.values_processed == 7
        unit.reset_activity()
        assert unit.values_processed == 0

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            SquareRootInverter(latency=0)


class TestNormalizationUnit:
    def test_matches_reference_normalization(self, rng):
        unit = NormalizationUnit(width=32, data_format=DataFormat.FP32)
        rows = rng.normal(1.0, 2.0, size=(4, 64))
        mean = rows.mean(axis=1)
        isd = 1.0 / rows.std(axis=1)
        gamma = np.ones(64)
        beta = np.zeros(64)
        out = unit.normalize(rows, mean, isd, gamma, beta)
        expected = (rows - mean[:, None]) * isd[:, None]
        np.testing.assert_allclose(out, expected, atol=1e-3)

    def test_affine_applied(self, rng):
        unit = NormalizationUnit(width=16)
        rows = rng.normal(size=(2, 32))
        gamma = np.full(32, 2.0)
        beta = np.full(32, -1.0)
        out = unit.normalize(rows, np.zeros(2), np.ones(2), gamma, beta)
        np.testing.assert_allclose(out, rows * 2.0 - 1.0, atol=5e-3)

    def test_cycle_model(self):
        unit = NormalizationUnit(width=128)
        assert unit.passes_per_row(1600) == 13
        assert unit.cycles_for(4, 1600) == 52
        assert unit.passes_per_row(0) == 0

    def test_activity_counter(self, rng):
        unit = NormalizationUnit(width=8)
        unit.normalize(rng.normal(size=(2, 16)), np.zeros(2), np.ones(2), np.ones(16), np.zeros(16))
        assert unit.elements_processed == 32


class TestIsdPredictorUnit:
    def test_prediction_requires_loaded_coefficients(self):
        unit = IsdPredictorUnit()
        assert not unit.configured
        with pytest.raises(RuntimeError):
            unit.predict(np.ones(2), 5)

    def test_prediction_matches_algorithmic_predictor(self):
        predictor = IsdPredictor(anchor_layer=3, last_layer=8, decay=-0.05, anchor_log_isd=0.0)
        unit = IsdPredictorUnit()
        unit.load(predictor)
        anchor = np.array([1.0, 2.0])
        out = unit.predict(anchor, 5)
        np.testing.assert_allclose(out, predictor.predict_from_anchor(anchor, 5), rtol=1e-6)
        assert unit.predictions_made == 2

    def test_cycles(self):
        unit = IsdPredictorUnit(latency=2)
        assert unit.cycles_for(1) == 2
        assert unit.cycles_for(5) == 6
        assert unit.cycles_for(0) == 0
