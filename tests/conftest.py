"""Shared fixtures: tiny models, calibration results and task suites.

Everything here is session-scoped and built from the deterministic "tiny"
configurations so the full test suite stays fast while still exercising the
real code paths (forward passes, calibration, HAAN installation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.calibration import CalibrationSettings, calibrate_model
from repro.llm.datasets import calibration_texts
from repro.llm.model import TransformerModel


@pytest.fixture(scope="session")
def tiny_model() -> TransformerModel:
    """A small LayerNorm (GPT-2 style) model."""
    return TransformerModel.from_name("tiny")


@pytest.fixture(scope="session")
def tiny_rms_model() -> TransformerModel:
    """A small RMSNorm (LLaMA style) model."""
    return TransformerModel.from_name("tiny-rms")


@pytest.fixture(scope="session")
def tiny_calibration(tiny_model):
    """Calibration result of the tiny model over a few synthetic documents."""
    texts = calibration_texts(6, seed=3)
    settings = CalibrationSettings(window=3, max_seq_len=24, batch_size=3, min_start_fraction=0.3)
    return calibrate_model(tiny_model, texts=texts, settings=settings)


@pytest.fixture(scope="session")
def small_token_batch(tiny_model) -> np.ndarray:
    """A deterministic (batch, seq) token-id matrix for the tiny model."""
    rng = np.random.default_rng(0)
    return rng.integers(3, tiny_model.config.vocab_size, size=(4, 20))


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
