"""Tests for the ASCII charts and the cross-dataset generalization study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.charts import ascii_bar_chart, ascii_line_chart, sparkline
from repro.eval.generalization import (
    TransferResult,
    alternative_corpora,
    generalization_study,
    transfer_penalty,
)


class TestAsciiBarChart:
    def test_contains_labels_and_values(self):
        chart = ascii_bar_chart(["gpu", "haan-v1"], [10.0, 1.0], title="latency")
        assert "latency" in chart
        assert "gpu" in chart and "haan-v1" in chart
        assert "10" in chart

    def test_largest_value_has_longest_bar(self):
        chart = ascii_bar_chart(["a", "b"], [2.0, 8.0], width=20)
        lines = chart.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty_chart(self):
        assert ascii_bar_chart([], [], title="nothing") == "nothing"

    def test_zero_values_do_not_crash(self):
        chart = ascii_bar_chart(["a", "b"], [0.0, 0.0])
        assert "a" in chart


class TestAsciiLineChart:
    def test_basic_series_rendering(self):
        x = np.arange(10)
        chart = ascii_line_chart(x, {"haan": 1.0 / (x + 1)}, title="fig")
        assert "fig" in chart
        assert "legend" in chart
        assert "*" in chart

    def test_log_scale(self):
        x = np.arange(1, 6)
        chart = ascii_line_chart(x, {"isd": np.exp(-x)}, log_y=True)
        assert "log10(y)" in chart

    def test_log_scale_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1, 2], {"bad": [1.0, 0.0]}, log_y=True)

    def test_multiple_series_get_distinct_markers(self):
        x = np.arange(5)
        chart = ascii_line_chart(x, {"a": x + 1.0, "b": 2.0 * x + 1.0})
        assert "* a" in chart and "o b" in chart

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1, 2, 3], {"a": [1, 2]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1, 2], {})


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_ends_high(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[-1] == "█"
        assert line[0] == "▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestGeneralization:
    @pytest.fixture(scope="class")
    def study(self, tiny_model):
        return generalization_study(
            tiny_model, calibration_samples=5, corpus_samples=4, max_seq_len=20
        )

    def test_alternative_corpora_are_disjoint(self):
        corpora = alternative_corpora(num_samples=3)
        assert set(corpora) == {"held-out", "task-style", "shifted-topic"}
        texts = [tuple(v) for v in corpora.values()]
        assert len(set(texts)) == len(texts)

    def test_study_contains_calibration_and_transfers(self, study):
        assert "calibration" in study
        assert len(study) >= 3
        for result in study.values():
            assert isinstance(result, TransferResult)
            assert result.mean_abs_log_error >= 0
            assert result.max_abs_log_error >= result.mean_abs_log_error

    def test_predictor_generalizes_across_corpora(self, study):
        """The paper's claim: calibration transfers with a small penalty."""
        penalty = transfer_penalty(study)
        baseline = study["calibration"].mean_abs_log_error
        # The transfer penalty stays within a small absolute band of the
        # in-sample error rather than exploding.
        assert penalty <= max(3 * baseline, 0.25)

    def test_rows_match_header(self, study):
        for result in study.values():
            assert len(result.as_row()) == len(TransferResult.header())

    def test_transfer_penalty_zero_without_other_corpora(self):
        only = {"calibration": TransferResult("calibration", 0.1, 0.2, 0.05)}
        assert transfer_penalty(only) == 0.0
