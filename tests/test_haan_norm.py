"""Tests of the HAAN normalization layer (skip / subsample / quantize)."""

import numpy as np

from repro.core.haan_norm import HaanNormalization
from repro.core.predictor import IsdPredictor
from repro.core.subsampling import SubsampleSettings
from repro.llm.hooks import ActivationContext
from repro.llm.normalization import LayerNorm, RMSNorm
from repro.numerics.quantization import DataFormat


def _base_layer(hidden=64, layer_index=5, rms=False, rng=None):
    rng = rng or np.random.default_rng(0)
    cls = RMSNorm if rms else LayerNorm
    return cls(
        hidden_size=hidden,
        layer_index=layer_index,
        name=f"block.norm{layer_index}",
        gamma=1.0 + 0.1 * rng.standard_normal(hidden),
        beta=0.05 * rng.standard_normal(hidden) if not rms else None,
    )


class TestPassThrough:
    def test_fp32_no_options_matches_reference(self, rng):
        base = _base_layer(rng=rng)
        haan = HaanNormalization(base, data_format=DataFormat.FP32)
        x = rng.normal(1.0, 2.0, size=(6, 64))
        np.testing.assert_allclose(haan(x), base(x), rtol=1e-6, atol=1e-6)

    def test_shares_affine_parameters(self, rng):
        base = _base_layer(rng=rng)
        haan = HaanNormalization(base)
        assert haan.gamma is base.gamma
        assert haan.beta is base.beta
        assert haan.kind == base.kind

    def test_metadata_copied(self, rng):
        base = _base_layer(layer_index=7, rng=rng)
        haan = HaanNormalization(base)
        assert haan.layer_index == 7
        assert haan.name == base.name


class TestQuantization:
    def test_fp16_output_close_to_reference(self, rng):
        base = _base_layer(rng=rng)
        haan = HaanNormalization(base, data_format=DataFormat.FP16)
        x = rng.normal(size=(4, 64))
        np.testing.assert_allclose(haan(x), base(x), atol=5e-3)

    def test_int8_output_close_to_reference(self, rng):
        base = _base_layer(rng=rng)
        haan = HaanNormalization(base, data_format=DataFormat.INT8)
        x = rng.normal(size=(4, 64))
        np.testing.assert_allclose(haan(x), base(x), atol=0.15)

    def test_formats_order_by_error(self, rng):
        base = _base_layer(rng=rng)
        x = rng.normal(size=(8, 64))
        reference = base(x)
        errors = []
        for fmt in (DataFormat.FP32, DataFormat.FP16, DataFormat.INT8):
            haan = HaanNormalization(base, data_format=fmt)
            errors.append(float(np.max(np.abs(haan(x) - reference))))
        assert errors[0] <= errors[1] <= errors[2]


class TestSubsampling:
    def test_subsampled_statistics_used(self, rng):
        base = _base_layer(rng=rng)
        haan = HaanNormalization(base, subsample=SubsampleSettings(length=16))
        x = rng.normal(size=(4, 64))
        out = haan(x)
        assert haan._last_was_subsampled()
        # Output differs slightly from the exact reference but stays close.
        assert not np.allclose(out, base(x))
        assert np.max(np.abs(out - base(x))) < 2.0

    def test_larger_subsample_is_more_accurate(self, rng):
        base = _base_layer(rng=rng)
        x = rng.normal(size=(16, 64))
        reference = base(x)
        err_small = np.abs(HaanNormalization(base, subsample=SubsampleSettings(length=8))(x) - reference).max()
        err_large = np.abs(HaanNormalization(base, subsample=SubsampleSettings(length=48))(x) - reference).max()
        assert err_large < err_small


class TestSkipping:
    def _predictor(self):
        return IsdPredictor(anchor_layer=3, last_layer=8, decay=-0.1, anchor_log_isd=0.0)

    def test_skipped_layer_uses_predicted_isd(self, rng):
        base = _base_layer(layer_index=5, rng=rng)
        haan = HaanNormalization(base, predictor=self._predictor())
        assert haan.is_skipped
        context = ActivationContext()
        anchor_isd = np.full(4, 2.0)
        context.store_isd(3, anchor_isd)
        x = rng.normal(size=(4, 64))
        out = haan(x, context)
        assert haan._last_was_predicted()
        # Reconstruct what the output must be with the predicted ISD.
        expected_isd = anchor_isd * np.exp(-0.1 * 2)
        mean = x.mean(axis=1, keepdims=True)
        expected = (x - mean) * expected_isd[:, None] * base.gamma + base.beta
        # The layer rounds its input through the FP32 storage format first,
        # so agreement is at single precision rather than double.
        np.testing.assert_allclose(out, expected, atol=1e-5)

    def test_non_covered_layer_not_skipped(self, rng):
        base = _base_layer(layer_index=20, rng=rng)
        haan = HaanNormalization(base, predictor=self._predictor())
        assert not haan.is_skipped
        x = rng.normal(size=(2, 64))
        haan(x)
        assert not haan._last_was_predicted()

    def test_skipped_rmsnorm_has_zero_mean_path(self, rng):
        base = _base_layer(layer_index=5, rms=True, rng=rng)
        haan = HaanNormalization(base, predictor=self._predictor())
        context = ActivationContext()
        context.store_isd(3, np.full(3, 1.5))
        x = rng.normal(size=(3, 64))
        out = haan(x, context)
        expected = x * (1.5 * np.exp(-0.2)) * base.gamma
        np.testing.assert_allclose(out, expected, atol=1e-9)

    def test_skipped_layer_records_prediction_flag(self, rng):
        base = _base_layer(layer_index=5, rng=rng)
        haan = HaanNormalization(base, predictor=self._predictor())
        context = ActivationContext(record_statistics=True)
        context.store_isd(3, np.full(2, 1.0))
        haan(rng.normal(size=(2, 64)), context)
        assert context.records[-1].was_predicted


class TestHardwareInvSqrt:
    def test_hardware_path_close_to_exact(self, rng):
        base = _base_layer(rng=rng)
        haan = HaanNormalization(base, use_hardware_inv_sqrt=True, newton_iterations=1)
        x = rng.normal(size=(4, 64))
        np.testing.assert_allclose(haan(x), base(x), rtol=2e-2, atol=2e-2)
