"""Tests for the design-space exploration over accelerator configurations."""

from __future__ import annotations

import pytest

from repro.hardware.configs import HAAN_V1, HAAN_V2, HAAN_V3, AcceleratorConfig
from repro.hardware.dse import DesignPoint, DesignSpaceExplorer
from repro.hardware.workload import NormalizationWorkload
from repro.llm.config import NormKind
from repro.numerics.quantization import DataFormat


@pytest.fixture(scope="module")
def workload() -> NormalizationWorkload:
    return NormalizationWorkload(
        model_name="gpt2-1.5b",
        embedding_dim=1600,
        num_norm_layers=98,
        seq_len=256,
        norm_kind=NormKind.LAYERNORM,
        num_skipped_layers=10,
        subsample_length=800,
    )


@pytest.fixture(scope="module")
def small_sweep(workload):
    explorer = DesignSpaceExplorer()
    configs = explorer.candidate_configs(
        stats_widths=(32, 128), norm_widths=(128, 256), data_formats=(DataFormat.FP16, DataFormat.INT8)
    )
    return explorer.explore(workload, configs)


class TestCandidateEnumeration:
    def test_candidate_count(self):
        explorer = DesignSpaceExplorer()
        configs = explorer.candidate_configs(
            stats_widths=(32, 64), norm_widths=(128,), data_formats=(DataFormat.FP16,)
        )
        assert len(configs) == 2
        assert all(isinstance(c, AcceleratorConfig) for c in configs)

    def test_candidate_names_unique(self):
        explorer = DesignSpaceExplorer()
        configs = explorer.candidate_configs()
        names = [c.name for c in configs]
        assert len(names) == len(set(names))


class TestEvaluation:
    def test_single_point_fields(self, workload):
        explorer = DesignSpaceExplorer()
        point = explorer.evaluate(HAAN_V1, workload)
        assert point.latency_seconds > 0
        assert point.power_w > 0
        assert point.energy_nj > 0
        assert point.lut > 0 and point.dsp > 0
        assert 0 <= point.pipeline_balance <= 1
        assert point.latency_us == pytest.approx(point.latency_seconds * 1e6)

    def test_paper_configs_are_feasible(self, workload):
        explorer = DesignSpaceExplorer()
        for config in (HAAN_V1, HAAN_V2, HAAN_V3):
            point = explorer.evaluate(config, workload)
            assert point.feasible, config.name

    def test_dominance_relation(self, workload):
        explorer = DesignSpaceExplorer()
        fast = explorer.evaluate(HAAN_V1, workload)
        slow_high_power = DesignPoint(
            config=fast.config,
            latency_seconds=fast.latency_seconds * 2,
            power_w=fast.power_w * 2,
            energy_nj=fast.energy_nj,
            lut=fast.lut,
            dsp=fast.dsp,
            fits_device=True,
            meets_timing=True,
            memory_bound=False,
            pipeline_balance=0.5,
        )
        assert fast.dominates(slow_high_power)
        assert not slow_high_power.dominates(fast)
        assert not fast.dominates(fast)


class TestExploration:
    def test_all_points_evaluated(self, small_sweep):
        assert len(small_sweep.points) == 8

    def test_feasible_subset(self, small_sweep):
        assert 0 < len(small_sweep.feasible_points) <= len(small_sweep.points)

    def test_pareto_frontier_is_non_dominated(self, small_sweep):
        frontier = small_sweep.pareto_frontier()
        assert frontier
        for point in frontier:
            assert not any(other.dominates(point) for other in small_sweep.feasible_points)

    def test_pareto_frontier_sorted_by_latency(self, small_sweep):
        frontier = small_sweep.pareto_frontier()
        latencies = [p.latency_seconds for p in frontier]
        assert latencies == sorted(latencies)

    def test_best_latency_is_minimum(self, small_sweep):
        best = small_sweep.best_latency()
        assert best.latency_seconds == min(p.latency_seconds for p in small_sweep.feasible_points)

    def test_best_under_power_respects_budget(self, small_sweep):
        tight = small_sweep.best_under_power(power_budget_w=1e-3)
        assert tight is None
        generous = small_sweep.best_under_power(power_budget_w=1e3)
        assert generous is not None
        assert generous.latency_seconds == small_sweep.best_latency().latency_seconds

    def test_best_energy_delay(self, small_sweep):
        best = small_sweep.best_energy_delay()
        assert best.energy_delay_product == min(
            p.energy_delay_product for p in small_sweep.feasible_points
        )

    def test_wider_norm_width_does_not_hurt_latency(self, workload):
        explorer = DesignSpaceExplorer()
        narrow = explorer.evaluate(
            AcceleratorConfig(name="n", stats_width=64, norm_width=64, data_format=DataFormat.FP16),
            workload,
        )
        wide = explorer.evaluate(
            AcceleratorConfig(name="w", stats_width=64, norm_width=256, data_format=DataFormat.FP16),
            workload,
        )
        assert wide.latency_seconds <= narrow.latency_seconds
