"""Tests for the module hierarchy, simulator, VCD writer and testbench helpers."""

from __future__ import annotations

import io

import pytest

from repro.hdl import (
    Module,
    Monitor,
    Register,
    Scoreboard,
    SimulationError,
    Simulator,
    StreamDriver,
    VcdWriter,
    Wire,
)


class Counter(Module):
    """Free-running counter with an enable input."""

    def __init__(self, name: str = "counter", width: int = 8):
        super().__init__(name)
        self.enable = Wire("enable", width=1)
        self.count = Register("count", width=width)

    def propagate(self) -> None:
        if self.enable.value:
            self.count.set_next(self.count.value + 1)
        else:
            self.count.hold()


class Doubler(Module):
    """Purely combinational: out = 2 * in."""

    def __init__(self, name: str = "doubler", width: int = 16):
        super().__init__(name)
        self.inp = Wire("inp", width=width)
        self.out = Wire("out", width=width)

    def propagate(self) -> None:
        self.out.drive(self.inp.value * 2)


class Chain(Module):
    """Counter feeding a combinational doubler across module boundaries."""

    def __init__(self):
        super().__init__("chain")
        self.counter = Counter()
        self.doubler = Doubler()

    def propagate(self) -> None:
        self.counter.enable.drive(1)
        self.doubler.inp.drive(self.counter.count.value)


class CombinationalLoop(Module):
    """Two wires driving each other with +1: never settles."""

    def __init__(self):
        super().__init__("loop")
        self.a = Wire("a", width=8)
        self.b = Wire("b", width=8)

    def propagate(self) -> None:
        self.a.drive(self.b.value + 1)
        self.b.drive(self.a.value + 1)


class TestModuleHierarchy:
    def test_signals_registered_on_assignment(self):
        counter = Counter()
        assert set(counter.signals) == {"enable", "count"}

    def test_submodules_registered_on_assignment(self):
        chain = Chain()
        assert set(chain.submodules) == {"counter", "doubler"}

    def test_iter_modules_depth_first(self):
        chain = Chain()
        names = [m.name for m in chain.iter_modules()]
        assert names == ["chain", "counter", "doubler"]

    def test_registers_and_wires_partition(self):
        chain = Chain()
        regs = {r.name for r in chain.registers()}
        wires = {w.name for w in chain.wires()}
        assert regs == {"count"}
        assert {"enable", "inp", "out"} <= wires

    def test_hierarchical_names(self):
        chain = Chain()
        names = chain.hierarchical_signals()
        assert "chain.counter.count" in names
        assert "chain.doubler.out" in names

    def test_describe_mentions_all_signals(self):
        text = Chain().describe()
        for fragment in ("Counter", "Doubler", "count", "out"):
            assert fragment in text

    def test_reset_restores_reset_values(self):
        counter = Counter()
        sim = Simulator(counter)
        counter.enable.drive(1)
        sim.run(5)
        assert counter.count.value > 0
        sim.reset()
        assert counter.count.value == 0
        assert sim.cycle == 0


class TestSimulator:
    def test_counter_counts_when_enabled(self):
        counter = Counter()
        sim = Simulator(counter)
        counter.enable.drive(1)
        sim.run(10)
        assert counter.count.value == 10

    def test_counter_holds_when_disabled(self):
        counter = Counter()
        sim = Simulator(counter)
        counter.enable.drive(0)
        sim.run(10)
        assert counter.count.value == 0

    def test_cross_module_combinational_path(self):
        chain = Chain()
        sim = Simulator(chain)
        sim.run(4)
        # After 4 edges the register holds 4; the doubler output reflects the
        # value *before* the most recent commit is observable next settle, so
        # run one more cycle and check consistency.
        sim.run(1)
        assert chain.doubler.out.value == 2 * (chain.counter.count.value - 1) or (
            chain.doubler.out.value == 2 * chain.counter.count.value
        )

    def test_run_until_condition(self):
        counter = Counter()
        sim = Simulator(counter)
        counter.enable.drive(1)
        cycles = sim.run_until(lambda s: counter.count.value >= 7, max_cycles=100)
        assert cycles == 7

    def test_run_until_timeout_raises(self):
        counter = Counter()
        sim = Simulator(counter)
        counter.enable.drive(0)
        with pytest.raises(SimulationError):
            sim.run_until(lambda s: counter.count.value >= 1, max_cycles=5)

    def test_combinational_loop_detected(self):
        sim = Simulator(CombinationalLoop(), max_settle_iterations=8)
        with pytest.raises(SimulationError):
            sim.step()

    def test_negative_cycle_count_rejected(self):
        sim = Simulator(Counter())
        with pytest.raises(ValueError):
            sim.run(-1)

    def test_context_manager_finalizes(self):
        buffer = io.StringIO()
        counter = Counter()
        writer = VcdWriter(buffer)
        writer.declare_signals(counter.hierarchical_signals())
        with Simulator(counter, vcd=writer) as sim:
            counter.enable.drive(1)
            sim.run(3)
        assert "$enddefinitions" in buffer.getvalue()


class TestVcdWriter:
    def test_header_and_samples(self):
        counter = Counter()
        buffer = io.StringIO()
        writer = VcdWriter(buffer)
        writer.declare_signals(counter.hierarchical_signals())
        sim = Simulator(counter, vcd=writer)
        counter.enable.drive(1)
        sim.run(3)
        writer.close()
        text = buffer.getvalue()
        assert "$timescale" in text
        assert "$var wire 8" in text
        assert "#0" in text
        assert "#2" in text

    def test_only_changes_emitted(self):
        counter = Counter()
        buffer = io.StringIO()
        writer = VcdWriter(buffer)
        writer.declare_signals(counter.hierarchical_signals())
        sim = Simulator(counter, vcd=writer)
        counter.enable.drive(0)
        sim.run(5)
        writer.close()
        text = buffer.getvalue()
        # With the counter disabled nothing changes after cycle 0, so no
        # further timestamps are emitted.
        assert "#3" not in text

    def test_multi_lane_variables(self):
        class Bus(Module):
            def __init__(self):
                super().__init__("bus")
                self.data = Wire("data", width=8, lanes=4)

        bus = Bus()
        writer = VcdWriter(io.StringIO())
        writer.declare_signals(bus.hierarchical_signals())
        assert writer.num_variables == 4

    def test_sample_before_declare_rejected(self):
        writer = VcdWriter(io.StringIO())
        with pytest.raises(RuntimeError):
            writer.sample(0)

    def test_double_declare_rejected(self):
        counter = Counter()
        writer = VcdWriter(io.StringIO())
        writer.declare_signals(counter.hierarchical_signals())
        with pytest.raises(RuntimeError):
            writer.declare_signals(counter.hierarchical_signals())


class Accumulator(Module):
    """Consumes a valid-qualified stream and accumulates lane sums."""

    def __init__(self, lanes: int = 4):
        super().__init__("accumulator")
        self.data = Wire("data", width=16, signed=True, lanes=lanes)
        self.valid = Wire("valid", width=1)
        self.total = Register("total", width=32, signed=True)
        self.out_valid = Wire("out_valid", width=1)

    def propagate(self) -> None:
        if self.valid.value:
            self.total.set_next(self.total.value + int(self.data.values.sum()))
        else:
            self.total.hold()
        self.out_valid.drive(self.valid.value)


class TestTestbenchHelpers:
    def test_stream_driver_feeds_all_beats(self):
        acc = Accumulator(lanes=2)
        beats = [[1, 2], [3, 4], [5, 6]]
        driver = StreamDriver("driver", acc.data, acc.valid, beats)
        top = Module("top")
        top.acc = acc
        top.driver = driver
        sim = Simulator(top)
        sim.run(len(beats) + 2)
        assert driver.done
        assert acc.total.value == 21

    def test_stream_driver_start_delay(self):
        acc = Accumulator(lanes=1)
        driver = StreamDriver("driver", acc.data, acc.valid, [[5]], start_cycle=3)
        top = Module("top")
        top.acc = acc
        top.driver = driver
        sim = Simulator(top)
        sim.run(3)
        assert acc.total.value == 0
        sim.run(2)
        assert acc.total.value == 5

    def test_stream_driver_lane_mismatch_rejected(self):
        acc = Accumulator(lanes=4)
        with pytest.raises(ValueError):
            StreamDriver("driver", acc.data, acc.valid, [[1, 2]])

    def test_monitor_captures_qualified_beats(self):
        acc = Accumulator(lanes=1)
        driver = StreamDriver("driver", acc.data, acc.valid, [[1], [2], [3]])
        monitor = Monitor("monitor", acc.data, acc.valid)
        top = Module("top")
        top.acc = acc
        top.driver = driver
        top.monitor = monitor
        Simulator(top).run(6)
        assert monitor.scalar_samples() == [1, 2, 3]
        assert monitor.num_samples == 3

    def test_monitor_clear(self):
        acc = Accumulator(lanes=1)
        driver = StreamDriver("driver", acc.data, acc.valid, [[1]])
        monitor = Monitor("monitor", acc.data, acc.valid)
        top = Module("top")
        top.acc = acc
        top.driver = driver
        top.monitor = monitor
        Simulator(top).run(3)
        monitor.clear()
        assert monitor.num_samples == 0

    def test_scoreboard_exact_match(self):
        sb = Scoreboard()
        assert sb.compare([[1, 2], [3, 4]], [[1, 2], [3, 4]])
        assert sb.passed
        assert sb.report() == ""

    def test_scoreboard_detects_mismatch(self):
        sb = Scoreboard()
        assert not sb.compare([[1, 2]], [[1, 3]])
        assert "beat 0" in sb.report()

    def test_scoreboard_tolerance(self):
        sb = Scoreboard(tolerance=1)
        assert sb.compare([[10]], [[11]])
        assert not sb.compare([[10]], [[12]])

    def test_scoreboard_length_mismatch(self):
        sb = Scoreboard()
        assert not sb.compare([[1]], [[1], [2]])
        assert sb.mismatches[0].index == -1

    def test_scoreboard_report_limit(self):
        sb = Scoreboard()
        expected = [[i] for i in range(20)]
        observed = [[i + 1] for i in range(20)]
        sb.compare(expected, observed)
        assert "more mismatches" in sb.report(limit=5)
