"""Tests of the transformer inference engine and its HAAN hooks."""

import numpy as np
import pytest

from repro.llm.config import available_models, get_model_config
from repro.llm.hooks import ActivationContext
from repro.llm.model import TransformerModel
from repro.llm.normalization import LayerNorm


class TestConfigRegistry:
    def test_paper_models_registered(self):
        for name in ("llama-7b", "opt-2.7b", "gpt2-1.5b", "gpt2-355m", "gpt2-117m"):
            assert name in available_models()

    def test_norm_layer_counts_match_paper(self):
        # Figure 2 profiles 64 normalization layers for LLaMA-7B, Section
        # V-B quotes 65 ISD operations for OPT-2.7B.
        assert get_model_config("llama-7b").num_norm_layers == 64
        assert get_model_config("opt-2.7b").num_norm_layers == 65
        assert get_model_config("gpt2-1.5b").num_norm_layers == 97

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_model_config("gpt5")

    def test_overrides(self):
        config = get_model_config("tiny", sim_hidden_size=32)
        assert config.sim_hidden_size == 32

    def test_subsample_mapping_caps_at_sim_width(self):
        config = get_model_config("llama-7b")
        assert config.scale_subsample_length(256) == min(256, config.sim_hidden_size)
        assert config.scale_subsample_length(10_000) == config.sim_hidden_size
        with pytest.raises(ValueError):
            config.scale_subsample_length(0)


class TestForward:
    def test_logits_shape(self, tiny_model, small_token_batch):
        logits = tiny_model.forward(small_token_batch)
        assert logits.shape == (4, 20, tiny_model.config.vocab_size)

    def test_forward_is_deterministic(self, tiny_model, small_token_batch):
        a = tiny_model.forward(small_token_batch)
        b = tiny_model.forward(small_token_batch)
        np.testing.assert_array_equal(a, b)

    def test_log_probs_normalized(self, tiny_model, small_token_batch):
        logp = tiny_model.log_probs(small_token_batch[:1])
        np.testing.assert_allclose(np.exp(logp).sum(axis=-1), 1.0, atol=1e-9)

    def test_1d_input_promoted_to_batch(self, tiny_model):
        logits = tiny_model.forward(np.arange(3, 13))
        assert logits.shape[0] == 1

    def test_too_long_sequence_rejected(self, tiny_model):
        too_long = np.zeros(tiny_model.config.max_seq_len + 1, dtype=int) + 3
        with pytest.raises(ValueError):
            tiny_model.forward(too_long)

    def test_norm_layer_count_matches_config(self, tiny_model):
        assert tiny_model.num_norm_layers == tiny_model.config.num_norm_layers

    def test_residual_stream_variance_grows_with_depth(self, tiny_model, small_token_batch):
        """The substrate must show the ISD-decay phenomenon HAAN relies on."""
        context = ActivationContext(record_statistics=True)
        tiny_model.forward_hidden(small_token_batch, context)
        isd_first = np.mean(context.records[0].isd)
        isd_last = np.mean(context.records[-2].isd)
        assert isd_last < isd_first


class TestScoring:
    def test_sequence_log_likelihood_negative(self, tiny_model):
        ids = list(range(3, 15))
        assert tiny_model.sequence_log_likelihood(ids) < 0

    def test_continuation_scoring_consistency(self, tiny_model):
        prefix = [1, 5, 9, 13]
        continuation = [20, 21, 22]
        joint = tiny_model.continuation_log_likelihood(prefix, continuation)
        per_token = tiny_model.continuation_log_likelihood(prefix, continuation, normalize_by_length=True)
        assert joint == pytest.approx(per_token * len(continuation))

    def test_batched_scoring_matches_sequential(self, tiny_model):
        prefix = [1, 4, 7, 10, 13]
        continuations = [[20, 25, 30], [41, 42], [55, 56, 57, 58]]
        batched = tiny_model.score_continuations(prefix, continuations, normalize_by_length=True)
        sequential = [
            tiny_model.continuation_log_likelihood(prefix, c, normalize_by_length=True)
            for c in continuations
        ]
        np.testing.assert_allclose(batched, sequential, atol=1e-9)

    def test_empty_continuation_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.score_continuations([1, 2], [[]])

    def test_short_sequence_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.sequence_log_likelihood([5])


class TestNormLayerReplacement:
    def test_replace_and_restore(self):
        model = TransformerModel.from_name("tiny")
        original = model.norm_layer(1)
        replacement = LayerNorm(
            hidden_size=original.hidden_size,
            gamma=original.gamma,
            beta=original.beta,
        )
        model.replace_norm_layer(1, replacement)
        assert model.norm_layer(1) is replacement
        assert model.blocks[0].mlp_norm is replacement
        assert replacement.layer_index == 1

    def test_final_norm_replacement(self):
        model = TransformerModel.from_name("tiny")
        last = model.num_norm_layers - 1
        replacement = LayerNorm(hidden_size=model.config.sim_hidden_size)
        model.replace_norm_layer(last, replacement)
        assert model.final_norm is replacement

    def test_out_of_range_index_rejected(self, tiny_model):
        with pytest.raises(IndexError):
            tiny_model.replace_norm_layer(999, LayerNorm(hidden_size=64))

    def test_hidden_size_mismatch_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.replace_norm_layer(0, LayerNorm(hidden_size=8))


class TestStatisticsCollection:
    def test_collect_statistics_shape(self, tiny_model, small_token_batch):
        trace = tiny_model.collect_statistics([small_token_batch])
        matrix = trace.isd_matrix()
        assert matrix.shape == (small_token_batch.size, tiny_model.num_norm_layers)
        assert np.all(matrix > 0)

    def test_encode_texts(self, tiny_model):
        ids = tiny_model.encode_texts(["hello world", "another document"], max_len=8)
        assert ids.shape == (2, 8)
