"""Robustness: fault plans, chaos replay, admission, retries, degradation.

The contract pinned down here is the PR's headline: under *any* injected
fault schedule the stack either answers bit-identically to the fault-free
run or fails with a typed member of the ApiError taxonomy -- and every
degraded response says so explicitly.
"""

import socket
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.admission import AdmissionController
from repro.api.client import NormClient
from repro.api.envelopes import (
    ApiError,
    BadSchemaError,
    ErrorResponse,
    NormalizeRequest,
    OverloadedError,
    PingRequest,
    TransportError,
    error_for_code,
)
from repro.api.envelopes import TensorPayload
from repro.api.framing import FrameDecoder, send_frame
from repro.api.retry import AMBIGUOUS, CLEAN, OVERLOADED, RetryPolicy
from repro.api.server import NormServer
from repro.api.transport import InProcessTransport, SocketTransport
from repro.chaos.gate import FaultGate
from repro.chaos.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    canned_plan,
)
from repro.chaos.transport import ChaosTransport
from repro.core.config import HaanConfig
from repro.core.haan_norm import HaanNormalization
from repro.core.predictor import IsdPredictor
from repro.core.subsampling import SubsampleSettings
from repro.llm.normalization import LayerNorm
from repro.numerics.quantization import DataFormat
from repro.serving.batcher import BatcherConfig
from repro.serving.degrade import MAX_LEVEL, DegradationLadder, degraded_spec
from repro.serving.registry import CalibrationArtifact, CalibrationRegistry
from repro.serving.service import NormalizationService

HIDDEN = 48


def _instant_loader(model_name, dataset):
    """Calibration-free artifact: a computed HAAN layer, a skipped one."""
    rng = np.random.default_rng(31)
    layers = []
    bases = []
    for index in (0, 1):
        base = LayerNorm(hidden_size=HIDDEN, layer_index=index, name=f"chaos.norm{index}")
        base.load_affine(rng.normal(1.0, 0.1, HIDDEN), rng.normal(0.0, 0.1, HIDDEN))
        bases.append(base)
    computed = HaanNormalization(
        bases[0], subsample=SubsampleSettings(length=24), data_format=DataFormat.INT8
    )
    predictor = IsdPredictor(anchor_layer=0, last_layer=3, decay=-0.04, anchor_log_isd=0.1)
    skipped = HaanNormalization(bases[1], predictor=predictor, data_format=DataFormat.FP16)
    return CalibrationArtifact(
        model_name=model_name,
        dataset=dataset,
        model=None,
        config=HaanConfig(subsample_length=24, data_format=DataFormat.INT8),
        calibration=None,
        haan_layers=[computed, skipped],
        reference_layers=bases,
    )


@pytest.fixture()
def registry():
    return CalibrationRegistry(loader=_instant_loader)


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


def _rows(rng, count=4):
    return rng.normal(0.0, 1.5, size=(count, HIDDEN))


def _golden(registry, payload, layer_index=0):
    layer = registry.get("tiny", "default").layer(layer_index)
    return layer.engine_for("reference").run(
        np.asarray(payload, dtype=np.float64)
    )[0]


# ---------------------------------------------------------------------------
# fault plans: serialization and validation
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = canned_plan()
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="meteor")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault rule field"):
            FaultRule.from_dict({"kind": "drop", "volume": 11})

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(kind="drop", probability=1.5)

    def test_delay_rule_needs_delay(self):
        with pytest.raises(ValueError, match="delay_ms"):
            FaultRule(kind="delay")

    def test_bad_json_is_typed(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_kill_fires_once_by_default(self):
        plan = FaultPlan(seed=3, rules=(FaultRule(kind="kill_after", after_n=2),))
        injector = plan.injector()
        kinds = injector.trace(["normalize"] * 10)
        assert kinds.count("kill_after") == 1
        assert kinds[2] == "kill_after"  # frames 1..2 immune, frame 3 kills


# ---------------------------------------------------------------------------
# determinism: the seed is the whole experiment (satellite property 1)
# ---------------------------------------------------------------------------


@st.composite
def fault_rules(draw):
    kind = draw(st.sampled_from(sorted(FAULT_KINDS)))
    needs_delay = kind in ("delay", "slow_drain")
    return FaultRule(
        kind=kind,
        op=draw(st.sampled_from([None, "normalize", "execute", "ping"])),
        probability=draw(st.floats(0.0, 1.0, allow_nan=False)),
        delay_ms=draw(st.floats(0.5, 3.0)) if needs_delay else 0.0,
        after_n=draw(st.integers(0, 5)) if kind == "kill_after" else 0,
    )


@st.composite
def fault_plans(draw):
    return FaultPlan(
        seed=draw(st.integers(0, 2**31)),
        rules=tuple(draw(st.lists(fault_rules(), min_size=1, max_size=4))),
    )


op_sequences = st.lists(
    st.sampled_from(["normalize", "normalize_bulk", "execute", "ping", None]),
    min_size=1,
    max_size=40,
)


class TestDeterminism:
    @given(plan=fault_plans(), ops=op_sequences)
    @settings(max_examples=60, deadline=None)
    def test_same_seed_same_fault_sequence(self, plan, ops):
        assert plan.injector().trace(ops) == plan.injector().trace(ops)

    @given(plan=fault_plans(), ops=op_sequences)
    @settings(max_examples=40, deadline=None)
    def test_gate_replays_the_transport_schedule(self, plan, ops):
        """Client- and server-side application draw the same schedule."""
        from repro.chaos.gate import _SERVER_ACTIONS

        client_kinds = plan.injector().trace(ops)
        gate = FaultGate(plan)
        server_kinds = [
            action.kind if action is not None else None
            for action in (gate.on_server_frame({"op": op}) for op in ops)
        ]
        assert server_kinds == [
            _SERVER_ACTIONS.get(kind) if kind is not None else None
            for kind in client_kinds
        ]

    def test_scopes_are_independent_streams(self):
        plan = FaultPlan(seed=5, rules=(FaultRule(kind="drop", probability=0.5),))
        ops = ["normalize"] * 64
        assert plan.injector(scope="a").trace(ops) == plan.injector(scope="a").trace(ops)
        assert plan.injector(scope="a").trace(ops) != plan.injector(scope="b").trace(ops)

    def test_replica_scoped_rule_only_fires_there(self):
        plan = FaultPlan(seed=5, rules=(FaultRule(kind="drop", replica="r1"),))
        assert plan.injector(replica="r1").decide("normalize") is not None
        assert plan.injector(replica="r2").decide("normalize") is None
        assert plan.injector().decide("normalize") is None


# ---------------------------------------------------------------------------
# the chaos contract: bit-identical or typed (satellite property 2)
# ---------------------------------------------------------------------------


class TestChaosContract:
    @given(seed=st.integers(0, 2**31))
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_chaos_run_is_bit_identical_or_typed(self, seed):
        plan = FaultPlan(
            seed=seed,
            rules=(
                FaultRule(kind="drop", probability=0.2),
                FaultRule(kind="corrupt", probability=0.2),
                FaultRule(kind="refuse_connect", probability=0.1),
                FaultRule(kind="kill_after", after_n=3),
                FaultRule(kind="delay", probability=0.2, delay_ms=1.0),
            ),
        )
        registry = CalibrationRegistry(loader=_instant_loader)
        transport = ChaosTransport(InProcessTransport(registry=registry), plan)
        rng = np.random.default_rng(seed)
        injected = 0
        with NormClient(transport) as client:
            for _ in range(8):
                payload = _rows(rng)
                try:
                    result = client.normalize(payload, "tiny")
                except ApiError:
                    injected += 1
                    continue
                assert np.array_equal(result.output, _golden(registry, payload))
        # the plan above is aggressive enough that a silent no-fault run
        # would mean the injector is broken
        assert injected + transport.snapshot()["injected"] > 0

    def test_corrupt_preserves_request_id_and_fails_typed(self, registry):
        plan = FaultPlan(seed=1, rules=(FaultRule(kind="corrupt"),))
        transport = ChaosTransport(InProcessTransport(registry=registry), plan)
        with NormClient(transport) as client:
            with pytest.raises(ApiError):
                client.normalize(_rows(np.random.default_rng(0)), "tiny")

    def test_kill_after_redials_and_recovers(self, registry, rng):
        service = NormalizationService(registry=registry)
        server = NormServer(service).start()
        plan = FaultPlan(seed=2, rules=(FaultRule(kind="kill_after", after_n=1),))
        inner = SocketTransport("127.0.0.1", server.port)
        try:
            with NormClient(ChaosTransport(inner, plan)) as client:
                payload = _rows(rng)
                first = client.normalize(payload, "tiny")  # frame 1: clean
                assert np.array_equal(first.output, _golden(registry, payload))
                with pytest.raises(TransportError, match="chaos"):
                    client.normalize(_rows(rng), "tiny")  # frame 2: killed
                payload = _rows(rng)
                third = client.normalize(payload, "tiny")  # redialed
                assert np.array_equal(third.output, _golden(registry, payload))
                assert inner.stats()["reconnects"] >= 1
        finally:
            server.close()
            service.close()

    def test_server_side_gate_same_contract(self, registry, rng):
        """The same plan applied in the server's frame loop stays typed."""
        plan = FaultPlan(
            seed=9,
            rules=(
                FaultRule(kind="corrupt", probability=0.3),
                FaultRule(kind="drop", probability=0.2),
            ),
        )
        gate = FaultGate(plan)
        service = NormalizationService(registry=registry)
        server = NormServer(service, fault_gate=gate).start()
        try:
            with NormClient.connect(server.host, server.port, timeout=1.0) as client:
                typed = 0
                for _ in range(12):
                    payload = _rows(rng)
                    try:
                        result = client.normalize(payload, "tiny")
                    except ApiError:
                        typed += 1
                        continue
                    assert np.array_equal(result.output, _golden(registry, payload))
                assert gate.snapshot()["injected"] > 0
                assert typed > 0
        finally:
            server.close()
            service.close()


# ---------------------------------------------------------------------------
# satellite (a): a dead address must not fail requests the pool can carry
# ---------------------------------------------------------------------------


class TestPoolDialFallback:
    def test_refused_topup_dial_falls_back_to_live_connection(self):
        """pool_size=2, one dead address: requests ride the live socket."""

        def echo(conn):
            decoder = FrameDecoder()
            while True:
                try:
                    data = conn.recv(65536)
                except OSError:
                    return
                if not data:
                    return
                for payload in decoder.feed(data):
                    send_frame(
                        conn,
                        {
                            "op": "pong",
                            "ok": True,
                            "request_id": payload.get("request_id"),
                            "schema_version": payload.get("schema_version"),
                        },
                    )

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        accepted = []

        def serve_one():
            conn, _ = listener.accept()
            accepted.append(conn)
            # One connection only: every further dial to the port is refused.
            listener.close()
            echo(conn)

        thread = threading.Thread(target=serve_one, daemon=True)
        thread.start()
        transport = SocketTransport(
            "127.0.0.1", port, pool_size=2, negotiate=False, timeout=5.0
        )
        try:
            # First request dials connection 1 and succeeds.
            assert transport.request(PingRequest().to_wire()).get("op") == "pong"
            # Second request tops up the pool (slot 2), the dial is refused,
            # and the request must still complete on the live connection
            # instead of surfacing the dial failure.
            assert transport.request(PingRequest().to_wire()).get("op") == "pong"
            stats = transport.stats()
            assert stats["connections"] == 1
        finally:
            transport.close()
            for conn in accepted:
                conn.close()
            thread.join(timeout=5.0)


# ---------------------------------------------------------------------------
# satellite (b): deadline validation at submit and decode
# ---------------------------------------------------------------------------


class TestDeadlineValidation:
    @pytest.mark.parametrize("deadline", [0.0, -5.0, float("nan"), float("inf")])
    def test_client_submit_rejects_bad_deadline(self, registry, rng, deadline):
        with NormClient(InProcessTransport(registry=registry)) as client:
            with pytest.raises(BadSchemaError, match="deadline_ms"):
                client.normalize(_rows(rng), "tiny", deadline_ms=deadline)

    @pytest.mark.parametrize("deadline", [0, -1, "soon", True])
    def test_envelope_decode_rejects_bad_deadline(self, rng, deadline):
        wire = NormalizeRequest(
            model="tiny", tensor=TensorPayload.from_array(_rows(rng))
        ).to_wire()
        wire["deadline_ms"] = deadline
        with pytest.raises(BadSchemaError):
            NormalizeRequest.from_wire(wire)

    def test_admission_rejects_bad_deadline_pre_decode(self):
        admission = AdmissionController()
        with pytest.raises(BadSchemaError, match="deadline_ms"):
            admission.check({"op": "normalize", "deadline_ms": 0})
        assert admission.inflight == 0

    def test_valid_deadline_rides_the_wire(self, rng):
        wire = NormalizeRequest(
            model="tiny",
            tensor=TensorPayload.from_array(_rows(rng)),
            deadline_ms=250.0,
        ).to_wire()
        assert wire["deadline_ms"] == 250.0
        assert NormalizeRequest.from_wire(wire).deadline_ms == 250.0


# ---------------------------------------------------------------------------
# admission control: shed early, shed typed
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def test_queue_full_sheds_with_retry_after(self):
        admission = AdmissionController(max_queue_depth=2)
        admission.check({"op": "normalize"})
        admission.check({"op": "normalize"})
        with pytest.raises(OverloadedError) as excinfo:
            admission.check({"op": "normalize"})
        assert excinfo.value.retry_after_ms is not None
        assert excinfo.value.retry_after_ms > 0
        assert admission.inflight == 2

    def test_control_ops_always_admitted(self):
        admission = AdmissionController(max_queue_depth=1)
        admission.check({"op": "normalize"})
        admission.check({"op": "ping"})  # not shed, not counted
        admission.check({"op": "telemetry"})
        assert admission.inflight == 1

    def test_infeasible_deadline_sheds_before_decode(self):
        admission = AdmissionController(initial_service_time=0.1)
        admission.check({"op": "normalize"})
        with pytest.raises(OverloadedError, match="deadline"):
            # Two requests deep at ~100ms each: a 50ms deadline cannot hold.
            admission.check({"op": "normalize", "deadline_ms": 50.0})

    def test_complete_feeds_the_ema(self):
        admission = AdmissionController(initial_service_time=0.1, ema_alpha=0.5)
        admission.check({"op": "normalize"})
        admission.complete(0.3)
        assert admission.snapshot()["service_time_ema_ms"] == pytest.approx(200.0)

    def test_live_server_sheds_under_100ms(self, registry, rng):
        """The ISSUE's bound: a shed answer arrives in well under 100 ms."""
        service = NormalizationService(
            registry=registry, config=BatcherConfig(max_wait=0.2)
        )
        server = NormServer(service, workers=1, max_queue_depth=1).start()
        try:
            with NormClient.connect(server.host, server.port, timeout=5.0) as client:
                started = time.perf_counter()
                handles = [
                    client.submit_normalize(_rows(rng), "tiny") for _ in range(6)
                ]
                # The admitted request sits in the 200ms batcher window, so
                # every reply that lands inside the 100ms bound is a shed.
                time.sleep(max(0.0, started + 0.09 - time.perf_counter()))
                shed = 0
                for handle in handles:
                    if not handle.done():
                        continue
                    with pytest.raises(OverloadedError) as excinfo:
                        handle.result(0)
                    assert excinfo.value.retry_after_ms is not None
                    shed += 1
                assert shed > 0
                for handle in handles:  # drain the admitted ones cleanly
                    if not handle.done():
                        handle.result(5.0)
        finally:
            server.close()
            service.close()


# ---------------------------------------------------------------------------
# retry discipline
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_ceiling_and_jitter(self):
        import random

        policy = RetryPolicy(
            max_attempts=8,
            base_backoff=0.1,
            min_budget_tokens=100.0,
            rng=random.Random(0),
        )
        for attempt in range(6):
            delay = policy.next_delay(attempt, "normalize")
            assert delay is not None
            assert 0.0 <= delay <= min(0.1 * 2**attempt, policy.max_backoff)

    def test_max_attempts_bounds_retries(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.next_delay(0, "normalize") is not None
        assert policy.next_delay(1, "normalize") is None

    def test_ambiguous_execute_never_retried(self):
        policy = RetryPolicy(max_attempts=5)
        assert policy.next_delay(0, "execute", AMBIGUOUS) is None
        assert policy.next_delay(0, "execute_bulk", AMBIGUOUS) is None
        # ... but a clean failure (never sent) retries fine
        assert policy.next_delay(0, "execute", CLEAN) is not None
        # ... and ambiguous failures of idempotent ops retry too
        assert policy.next_delay(0, "normalize", AMBIGUOUS) is not None
        assert policy.snapshot()["ambiguous_refused"] == 2

    def test_overloaded_honors_retry_after_floor(self):
        import random

        policy = RetryPolicy(max_attempts=3, rng=random.Random(1))
        delay = policy.next_delay(0, "normalize", OVERLOADED, retry_after_ms=500.0)
        assert delay is not None
        assert delay >= 0.5

    def test_budget_exhaustion_surfaces_failures(self):
        policy = RetryPolicy(max_attempts=10, min_budget_tokens=2.0, retry_budget=0.0)
        assert policy.next_delay(0, "normalize") is not None
        assert policy.next_delay(0, "normalize") is not None
        assert policy.next_delay(0, "normalize") is None  # bucket empty
        assert policy.snapshot()["budget_exhausted"] == 1

    def test_first_attempts_refill_the_budget(self):
        policy = RetryPolicy(max_attempts=10, min_budget_tokens=0.0, retry_budget=0.5)
        assert policy.next_delay(0, "normalize") is None
        for _ in range(2):
            policy.record_attempt()
        assert policy.next_delay(0, "normalize") is not None

    def test_overloaded_envelope_retries_then_surfaces_typed(self, registry, rng):
        """Out of budget, the typed overloaded envelope reaches the caller."""

        class SheddingTransport(InProcessTransport):
            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                self.requests = 0

            def request(self, payload):
                self.requests += 1
                return ErrorResponse.from_exception(
                    OverloadedError("synthetic shed", retry_after_ms=1.0),
                    request_id=payload.get("request_id"),
                ).to_wire()

        transport = SheddingTransport(registry=registry)
        policy = RetryPolicy(max_attempts=3, base_backoff=0.001)
        # Exercise the retry loop through the socket-transport code path.
        from repro.api.transport import _overload_error

        envelope = transport.request({"op": "normalize", "request_id": 1})
        assert _overload_error(envelope) == 1.0
        with NormClient(transport) as client:
            with pytest.raises(OverloadedError, match="synthetic shed"):
                client.normalize(_rows(rng), "tiny")


class TestFleetRetryDiscipline:
    def test_ambiguous_execute_failure_not_failed_over(self):
        from repro.fleet.transport import FleetTransport

        from test_fleet import FakeReplica

        replicas = {
            "r1:1": FakeReplica("r1:1", "die"),
            "r2:2": FakeReplica("r2:2", "echo"),
        }
        fleet = FleetTransport(
            list(replicas),
            transport_factory=lambda address: replicas[address],
            hedge=False,
            timeout=5.0,
        )
        payload = {
            "op": "execute",
            "request_id": 9001,
            "spec": {"kind": "x"},
            "backend": "vectorized",
        }
        primary = fleet._router.candidates(fleet.routing_key(payload))[0]
        if primary != "r1:1":
            replicas["r1:1"].behavior = "echo"
            replicas["r2:2"].behavior = "die"
        with pytest.raises(TransportError, match="ambiguous failure"):
            fleet.request(payload)
        assert fleet.retry_policy.snapshot()["ambiguous_refused"] == 1
        fleet.close()

    def test_idempotent_post_send_failure_fails_over(self):
        from repro.fleet.transport import FleetTransport

        from test_fleet import FakeReplica

        replicas = {
            "r1:1": FakeReplica("r1:1", "die"),
            "r2:2": FakeReplica("r2:2", "die"),
        }
        fleet = FleetTransport(
            list(replicas),
            transport_factory=lambda address: replicas[address],
            hedge=False,
            timeout=5.0,
        )
        payload = {
            "op": "normalize",
            "request_id": 9002,
            "model": "tiny",
            "dataset": "default",
            "accelerator": None,
        }
        survivor = fleet._router.candidates(fleet.routing_key(payload))[1]
        replicas[survivor].behavior = "echo"
        envelope = fleet.request(payload)
        assert envelope["served_by"] == survivor
        fleet.close()

    def test_fleet_shares_one_retry_budget_with_replicas(self):
        from repro.fleet.transport import FleetTransport, _default_factory

        policy = RetryPolicy()
        fleet = FleetTransport(["127.0.0.1:1"], retry_policy=policy)
        replica = _default_factory("127.0.0.1:1", 1.0, 1.0, 1, 1 << 20, retry_policy=policy)
        assert replica.retry_policy is fleet.retry_policy
        replica.close()
        fleet.close()


# ---------------------------------------------------------------------------
# degradation ladder
# ---------------------------------------------------------------------------


class TestDegradationLadder:
    def test_hysteresis_up_and_down(self):
        ladder = DegradationLadder(up_after=3, down_after=4)
        assert all(ladder.observe(0.9) == 0 for _ in range(2))
        assert ladder.observe(0.9) == 1  # third consecutive high sample
        assert all(ladder.observe(0.1) == 1 for _ in range(3))
        assert ladder.observe(0.1) == 0  # fourth consecutive low sample

    def test_mid_band_resets_streaks(self):
        ladder = DegradationLadder(up_after=2, down_after=2)
        ladder.observe(0.9)
        ladder.observe(0.5)  # between the watermarks: streak broken
        assert ladder.observe(0.9) == 0

    def test_caps_at_max_level(self):
        ladder = DegradationLadder(max_level=1, up_after=1)
        ladder.observe(0.9)
        ladder.observe(0.9)
        assert ladder.level == 1

    def test_degraded_spec_level1_subsamples(self, registry):
        layer = registry.get("tiny", "default").layer(0)
        spec = layer.engine_for("vectorized").spec
        degraded, applied = degraded_spec(spec, 1)
        assert applied == 1
        assert degraded.subsample_length == min(HIDDEN // 4, spec.subsample_length or HIDDEN)

    def test_degraded_spec_level2_skips_with_borrowed_predictor(self, registry):
        artifact = registry.get("tiny", "default")
        spec = artifact.layer(0).engine_for("vectorized").spec
        source = artifact.layer(1).engine_for("vectorized").spec
        degraded, applied = degraded_spec(spec, MAX_LEVEL, predictor_source=source)
        assert applied == MAX_LEVEL
        assert degraded.skipped

    def test_no_op_transformation_reports_level_zero(self, registry):
        """Degradation is never silently claimed (acceptance criterion)."""
        artifact = registry.get("tiny", "default")
        spec = artifact.layer(0).engine_for("vectorized").spec
        already_small = spec.with_overrides(subsample_length=4)
        _degraded, applied = degraded_spec(already_small, 1)
        assert applied == 0

    def test_responses_stamped_end_to_end(self, registry, rng):
        svc = NormalizationService(registry=registry, threaded=False)
        payload = _rows(rng)
        full = svc.normalize(payload, "tiny")
        assert full.degradation == 0
        degraded = svc.normalize(payload, "tiny", degrade=1)
        assert degraded.degradation == 1
        assert degraded.was_subsampled
        svc.close()

    def test_wire_responses_carry_the_stamp(self, registry, rng):
        ladder = DegradationLadder(up_after=1, down_after=10**6)
        # Saturate the ladder so the next work op degrades.
        ladder.observe(1.0)
        ladder.observe(1.0)
        service = NormalizationService(registry=registry)
        server = NormServer(service, ladder=ladder).start()
        try:
            with NormClient.connect(server.host, server.port) as client:
                result = client.normalize(_rows(rng), "tiny")
                assert result.degradation >= 1
        finally:
            server.close()
            service.close()


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------


class TestGracefulDrain:
    def test_inflight_finishes_and_new_work_is_refused(self, registry, rng):
        service = NormalizationService(
            registry=registry, config=BatcherConfig(max_wait=0.3, max_batch_size=64)
        )
        server = NormServer(service).start()
        client = NormClient.connect(server.host, server.port, timeout=10.0)
        try:
            handle = client.submit_normalize(_rows(rng), "tiny")
            deadline = time.monotonic() + 5.0
            while server.admission.inflight == 0:
                assert time.monotonic() < deadline, "request never admitted"
                time.sleep(0.005)
            closer = threading.Thread(
                target=lambda: server.close(drain_timeout=5.0), daemon=True
            )
            closer.start()
            time.sleep(0.05)  # the drain window: ~250ms of batcher wait left
            with pytest.raises(OverloadedError, match="draining"):
                client.normalize(_rows(rng), "tiny")
            result = handle.result(10.0)
            assert result.output.shape == (4, HIDDEN)
            closer.join(timeout=10.0)
            assert not closer.is_alive()
        finally:
            client.close()
            server.close()
            service.close()

    def test_default_close_is_still_immediate(self, registry):
        service = NormalizationService(registry=registry)
        server = NormServer(service).start()
        started = time.monotonic()
        server.close()
        assert time.monotonic() - started < 1.0
        service.close()


# ---------------------------------------------------------------------------
# error envelope plumbing for retry_after_ms
# ---------------------------------------------------------------------------


class TestOverloadedEnvelope:
    def test_retry_after_round_trips(self):
        wire = ErrorResponse.from_exception(
            OverloadedError("full", retry_after_ms=40.0), request_id=3
        ).to_wire()
        assert wire["error"]["retry_after_ms"] == 40.0
        decoded = ErrorResponse.from_wire(wire)
        assert decoded.retry_after_ms == 40.0
        with pytest.raises(OverloadedError) as excinfo:
            decoded.raise_()
        assert excinfo.value.retry_after_ms == 40.0

    def test_error_for_code_builds_overloaded(self):
        error = error_for_code("overloaded", "busy", retry_after_ms=10.0)
        assert isinstance(error, OverloadedError)
        assert error.retry_after_ms == 10.0
