"""Tests of the IEEE-754 bit-level codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.floating import (
    FAST_INV_SQRT_MAGIC_FP32,
    FP16,
    FP32,
    compose,
    decompose,
    exponent_of,
    format_by_name,
    from_bits,
    is_normal,
    log2_approx,
    to_bits,
)


class TestFormats:
    def test_fp32_parameters(self):
        assert FP32.total_bits == 32
        assert FP32.bias == 127
        assert FP32.mantissa_bits == 23

    def test_fp16_parameters(self):
        assert FP16.total_bits == 16
        assert FP16.bias == 15
        assert FP16.mantissa_bits == 10

    def test_format_by_name(self):
        assert format_by_name("FP16") is FP16
        assert format_by_name("float32") is FP32
        with pytest.raises(ValueError):
            format_by_name("bf16")

    def test_round_trip_precision_loss(self):
        value = 1.0 + 1e-5
        assert FP32.round_trip(value) == pytest.approx(value, rel=1e-6)
        assert FP16.round_trip(value) == pytest.approx(1.0, abs=1e-3)

    def test_magic_constant_value(self):
        assert FAST_INV_SQRT_MAGIC_FP32 == 0x5F3759DF


class TestBitManipulation:
    def test_known_bit_pattern_of_one(self):
        assert to_bits(1.0, FP32)[()] == 0x3F800000
        assert from_bits(0x3F800000, FP32)[()] == 1.0

    def test_decompose_one(self):
        sign, exponent, mantissa = decompose(1.0, FP32)
        assert sign == 0 and exponent == 127 and mantissa == 0

    def test_decompose_negative(self):
        sign, _, _ = decompose(-2.5, FP32)
        assert sign == 1

    def test_compose_inverts_decompose(self):
        values = np.array([1.0, -3.5, 0.125, 65504.0, 2.0**-10])
        sign, exponent, mantissa = decompose(values, FP32)
        np.testing.assert_allclose(compose(sign, exponent, mantissa, FP32), values)

    def test_exponent_of_powers_of_two(self):
        np.testing.assert_array_equal(exponent_of(np.array([1.0, 2.0, 8.0, 0.5])), [0, 1, 3, -1])

    def test_is_normal(self):
        flags = is_normal(np.array([1.0, 0.0, np.inf, 1e-40]), FP32)
        assert flags.tolist() == [True, False, False, False]

    def test_log2_approx_accuracy(self):
        values = np.logspace(-3, 3, 50)
        approx = log2_approx(values, FP32)
        exact = np.log2(values)
        assert np.max(np.abs(approx - exact)) < 0.09

    def test_log2_approx_rejects_non_positive(self):
        assert np.isnan(log2_approx(np.array([-1.0]), FP32))[0]

    @given(st.floats(min_value=1e-20, max_value=1e20, allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_compose_decompose_roundtrip(self, value):
        sign, exponent, mantissa = decompose(value, FP32)
        recovered = compose(sign, exponent, mantissa, FP32)
        assert recovered == np.float64(np.float32(value))

    @given(st.floats(min_value=1e-3, max_value=1e4, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_fp16_roundtrip_relative_error(self, value):
        assert FP16.round_trip(value) == pytest.approx(value, rel=2e-3)
