"""Integration and property tests across the algorithm + hardware stack.

These tests exercise the full HAAN flow end to end -- calibrate a model,
install the HAAN layers, run the accelerator model on the corresponding
workload -- and check the cross-cutting invariants the paper relies on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import CalibrationSettings, build_haan_model
from repro.core.config import HaanConfig, paper_config_for
from repro.core.haan_norm import HaanNormalization
from repro.eval.perplexity import evaluate_perplexity
from repro.hardware.accelerator import HaanAccelerator
from repro.hardware.configs import HAAN_V1, AcceleratorConfig
from repro.hardware.workload import NormalizationWorkload
from repro.llm.config import NormKind, get_model_config
from repro.llm.datasets import perplexity_texts
from repro.llm.model import TransformerModel
from repro.llm.normalization import LayerNorm
from repro.numerics.quantization import DataFormat


class TestAlgorithmEndToEnd:
    def test_haan_model_perplexity_close_to_reference(self):
        texts = perplexity_texts(4, seed=9)
        reference = TransformerModel.from_name("tiny")
        ref_ppl = evaluate_perplexity(reference, texts, max_seq_len=24)
        model, _, _ = build_haan_model(
            "tiny",
            settings=CalibrationSettings(window=3, max_seq_len=20, num_samples=4),
        )
        haan_ppl = evaluate_perplexity(model, texts, max_seq_len=24)
        assert abs(haan_ppl.perplexity - ref_ppl.perplexity) / ref_ppl.perplexity < 0.10

    def test_skipped_layers_never_include_early_network(self):
        _, calibration, config = build_haan_model(
            "tiny-rms",
            settings=CalibrationSettings(window=3, max_seq_len=20, num_samples=4, min_start_fraction=0.5),
        )
        num_layers = get_model_config("tiny-rms").num_norm_layers
        assert config.skip_range[0] >= num_layers // 2

    def test_haan_layers_count_skipped_matches_config(self):
        model, _, config = build_haan_model(
            "tiny", settings=CalibrationSettings(window=3, max_seq_len=20, num_samples=4)
        )
        skipped = sum(1 for layer in model.norm_layers if isinstance(layer, HaanNormalization) and layer.is_skipped)
        assert skipped == config.num_skipped_layers()


class TestAlgorithmHardwareConsistency:
    def test_accelerator_reproduces_haan_layer_output(self, rng):
        """The hardware functional model and the algorithmic layer agree."""
        hidden = 64
        base = LayerNorm(hidden_size=hidden, gamma=np.ones(hidden), beta=np.zeros(hidden))
        haan_layer = HaanNormalization(base, data_format=DataFormat.FP16)
        accel = HaanAccelerator(
            AcceleratorConfig(name="t", stats_width=32, norm_width=32, data_format=DataFormat.FP16)
        )
        rows = rng.normal(0.5, 1.5, size=(6, hidden))
        layer_out = haan_layer(rows)
        accel_out = accel.normalize_rows(rows, base.gamma, base.beta, NormKind.LAYERNORM)
        np.testing.assert_allclose(accel_out, layer_out, atol=3e-2)

    def test_workload_matches_model_structure(self):
        for name in ("llama-7b", "opt-2.7b", "gpt2-1.5b"):
            config = get_model_config(name)
            workload = NormalizationWorkload.from_model(config, seq_len=64, haan_config=paper_config_for(name))
            assert workload.num_norm_layers == config.num_norm_layers
            assert workload.norm_kind == config.norm_kind

    def test_optimizations_never_increase_latency(self):
        accel = HaanAccelerator(HAAN_V1)
        for name in ("llama-7b", "opt-2.7b", "gpt2-1.5b"):
            optimized = NormalizationWorkload.from_model_name(name, seq_len=128, haan_config=paper_config_for(name))
            plain = optimized.without_optimizations()
            assert (
                accel.workload_latency(optimized).total_cycles
                <= accel.workload_latency(plain).total_cycles
            )

    @given(
        seq_len=st.integers(min_value=1, max_value=512),
        stats_width=st.sampled_from([32, 64, 128, 256]),
        norm_width=st.sampled_from([64, 128, 256]),
    )
    @settings(max_examples=30, deadline=None)
    def test_latency_model_properties(self, seq_len, stats_width, norm_width):
        """Latency is positive, monotone in sequence length and in lane count."""
        config = AcceleratorConfig(name="p", stats_width=stats_width, norm_width=norm_width)
        accel = HaanAccelerator(config)
        workload = NormalizationWorkload.from_model_name("gpt2-1.5b", seq_len=seq_len)
        report = accel.workload_latency(workload)
        assert report.total_cycles > 0
        wider = HaanAccelerator(
            AcceleratorConfig(name="w", stats_width=stats_width, norm_width=norm_width * 2)
        ).workload_latency(workload)
        assert wider.total_cycles <= report.total_cycles
        longer = accel.workload_latency(workload.with_seq_len(seq_len + 16))
        assert longer.total_cycles > report.total_cycles

    @given(n_sub=st.integers(min_value=64, max_value=4096))
    @settings(max_examples=20, deadline=None)
    def test_subsample_length_monotone_latency(self, n_sub):
        """Smaller N_sub never increases the statistics-stage latency."""
        config = AcceleratorConfig(name="narrow", stats_width=32, norm_width=256)
        accel = HaanAccelerator(config)
        plain = NormalizationWorkload.from_model_name("llama-7b", seq_len=64)
        sub = NormalizationWorkload.from_model_name(
            "llama-7b", seq_len=64, haan_config=HaanConfig(subsample_length=n_sub)
        )
        assert accel.workload_latency(sub).total_cycles <= accel.workload_latency(plain).total_cycles


class TestPaperHeadlineClaims:
    """The quantitative claims of the abstract, checked against the models."""

    def test_power_reduction_over_60_percent_vs_dfx(self):
        from repro.hardware.baselines import DfxBaseline

        workload = NormalizationWorkload.from_model_name(
            "gpt2-1.5b", seq_len=128, haan_config=paper_config_for("gpt2-1.5b")
        )
        haan_power = HaanAccelerator(HAAN_V1).power(workload).total_w
        assert 1.0 - haan_power / DfxBaseline().power_watts(workload) > 0.60

    def test_latency_reduction_over_20_percent_vs_baselines(self):
        from repro.hardware.baselines import all_baselines

        workload = NormalizationWorkload.from_model_name(
            "gpt2-1.5b", seq_len=128, haan_config=paper_config_for("gpt2-1.5b")
        )
        haan = HaanAccelerator(HAAN_V1).workload_latency(workload).latency_seconds
        for baseline in all_baselines().values():
            assert haan < 0.8 * baseline.workload_latency(workload).latency_seconds
