"""Tests of the INT8 / FP16 / FP32 quantization paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.quantization import (
    DataFormat,
    QuantizationConfig,
    Quantizer,
    dequantize_tensor,
    quantize_tensor,
    storage_round_trip,
)


class TestDataFormat:
    def test_parse_names(self):
        assert DataFormat.from_string("int8") is DataFormat.INT8
        assert DataFormat.from_string("Half") is DataFormat.FP16
        assert DataFormat.from_string("FLOAT32") is DataFormat.FP32
        with pytest.raises(ValueError):
            DataFormat.from_string("int4")

    def test_bit_widths(self):
        assert DataFormat.INT8.bits == 8
        assert DataFormat.FP16.bytes == 2
        assert DataFormat.FP32.bytes == 4

    def test_only_int8_is_fixed_point(self):
        assert DataFormat.INT8.is_fixed_point
        assert not DataFormat.FP16.is_fixed_point


class TestQuantizer:
    def test_int8_roundtrip_error_bounded(self, rng):
        values = rng.normal(0, 3, size=500)
        quantizer = Quantizer(QuantizationConfig(DataFormat.INT8))
        recovered = quantizer.round_trip(values)
        max_abs = np.max(np.abs(values))
        assert np.max(np.abs(recovered - values)) <= max_abs / 127 + 1e-12

    def test_int8_codes_in_range(self, rng):
        values = rng.normal(0, 10, size=200)
        q = quantize_tensor(values, DataFormat.INT8)
        assert q.codes.dtype == np.int8
        assert np.all(np.abs(q.codes.astype(int)) <= 127)

    def test_fp16_roundtrip(self):
        values = np.array([1.0, -2.5, 1000.0])
        quantizer = Quantizer(QuantizationConfig(DataFormat.FP16))
        np.testing.assert_allclose(quantizer.round_trip(values), values, rtol=1e-3)

    def test_fp32_roundtrip_is_nearly_exact(self, rng):
        values = rng.normal(size=100)
        quantizer = Quantizer(QuantizationConfig(DataFormat.FP32))
        np.testing.assert_allclose(quantizer.round_trip(values), values, rtol=1e-6)

    def test_zero_tensor_safe(self):
        quantizer = Quantizer(QuantizationConfig(DataFormat.INT8))
        np.testing.assert_array_equal(quantizer.round_trip(np.zeros(8)), np.zeros(8))

    def test_percentile_clipping(self, rng):
        values = np.concatenate([rng.normal(size=1000), [1000.0]])
        clipped = Quantizer(QuantizationConfig(DataFormat.INT8, percentile=99.0))
        unclipped = Quantizer(QuantizationConfig(DataFormat.INT8, percentile=100.0))
        assert clipped.calibrate_scale(values) < unclipped.calibrate_scale(values)

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            QuantizationConfig(percentile=0.0)

    def test_quantization_error_metrics(self, rng):
        values = rng.normal(size=256)
        max_err, rms = Quantizer(QuantizationConfig(DataFormat.INT8)).quantization_error(values)
        assert 0 <= rms <= max_err

    def test_dequantize_tensor_helper(self, rng):
        values = rng.normal(size=64)
        q = quantize_tensor(values, DataFormat.INT8)
        np.testing.assert_allclose(dequantize_tensor(q), values, atol=q.scale)

    def test_storage_roundtrip_formats(self):
        values = np.array([0.1, -0.2, 0.3])
        for fmt in DataFormat:
            out = storage_round_trip(values, fmt)
            assert out.shape == values.shape

    def test_nbytes(self):
        q = quantize_tensor(np.zeros(10), DataFormat.INT8)
        assert q.nbytes == 10

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_int8_error_within_half_step(self, values):
        arr = np.asarray(values)
        quantizer = Quantizer(QuantizationConfig(DataFormat.INT8))
        scale = quantizer.calibrate_scale(arr)
        recovered = quantizer.round_trip(arr)
        assert np.max(np.abs(recovered - arr)) <= scale / 2 + 1e-9
