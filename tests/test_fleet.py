"""Fleet-tier tests: ring, breaker, hedging, scatter-gather, parity.

The contracts under test, in order:

* consistent-hash ring: process-stable placement, bounded key movement on
  join (all moved keys go *to* the newcomer) and leave (only the leaver's
  keys move), distinct failover candidate order;
* circuit breaker: consecutive-failure ejection, half-open single-probe
  readmission, side-effect-free ``peek`` -- all on an injected clock;
* hedged requests over scripted fake replicas: first winner semantics,
  loser abandonment, failover at submit and after send, fail-closed
  ``NoHealthyReplicaError`` when every replica is ejected;
* scatter-gather: contiguous ordered reassembly, fresh sub-request ids,
  mid-flight shard death retried on survivors, error envelopes failing
  the whole bulk with single-server semantics;
* end-to-end parity: ``NormClient`` over ``FleetTransport`` against live
  ``NormServer`` replicas is bit-identical to the direct service -- for
  pipelined, bulk, streaming and spec-execution traffic, including with
  one replica killed mid-run;
* the PR-6 wire gauges: per-connection inflight/backpressure telemetry
  and the ``address`` attribute on transport errors.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.api.client import NormClient
from repro.api.envelopes import NoHealthyReplicaError, TransportError, error_for_code
from repro.api.server import NormServer
from repro.api.transport import (
    SocketTransport,
    available_transports,
    create_transport,
)
from repro.core.config import HaanConfig
from repro.core.haan_norm import HaanNormalization
from repro.core.subsampling import SubsampleSettings
from repro.fleet import cli as fleet_cli
from repro.fleet.health import CLOSED, HALF_OPEN, OPEN, BreakerConfig, ReplicaHealth
from repro.fleet.ring import HashRing, canonical_key, stable_hash
from repro.fleet.router import FleetRouter
from repro.fleet.supervisor import FleetSupervisor
from repro.fleet.transport import FleetTransport
from repro.llm.normalization import LayerNorm
from repro.numerics.quantization import DataFormat
from repro.serving.registry import CalibrationArtifact, CalibrationRegistry
from repro.serving.service import NormalizationService

HIDDEN = 48


# ---------------------------------------------------------------------------
# fixtures and fakes
# ---------------------------------------------------------------------------


def _instant_loader(model_name, dataset):
    """Calibration-free artifact so no test pays Algorithm 1."""
    rng = np.random.default_rng(31)
    base = LayerNorm(hidden_size=HIDDEN, layer_index=0, name="fleet.norm0")
    base.load_affine(rng.normal(1.0, 0.1, HIDDEN), rng.normal(0.0, 0.1, HIDDEN))
    computed = HaanNormalization(
        base, subsample=SubsampleSettings(length=12), data_format=DataFormat.INT8
    )
    return CalibrationArtifact(
        model_name=model_name,
        dataset=dataset,
        model=None,
        config=HaanConfig(subsample_length=12, data_format=DataFormat.INT8),
        calibration=None,
        haan_layers=[computed],
        reference_layers=[base],
    )


class FakeClock:
    """Deterministic monotonic clock for breaker/hedge tests."""

    def __init__(self, value: float = 100.0):
        self.value = value

    def __call__(self) -> float:
        return self.value

    def advance(self, seconds: float) -> None:
        self.value += seconds


class FakeReply:
    """Scriptable PendingReply standin."""

    def __init__(self):
        self._event = threading.Event()
        self._value = None
        self._error = None
        self.abandoned = False

    def resolve(self, value):
        self._value = value
        self._event.set()

    def fail(self, error):
        self._error = error
        self._event.set()

    def done(self):
        return self._event.is_set()

    def wait(self, timeout=None):
        return self._event.wait(timeout)

    def abandon(self):
        self.abandoned = True

    def result(self, timeout=None):
        if not self._event.wait(timeout):
            raise TransportError("fake reply timed out")
        if self._error is not None:
            raise self._error
        return self._value


class FakeReplica:
    """Scripted per-address transport.

    Behaviors: ``echo`` answers immediately, ``hang`` leaves the reply
    pending (resolve manually), ``refuse`` raises at submit (connect
    failure), ``die`` fails the reply after the send (connection lost).
    """

    def __init__(self, address, behavior="echo"):
        self.address = address
        self.behavior = behavior
        self.submits = []
        self.closed = False

    def _respond(self, payload):
        envelope = {
            "op": payload.get("op"),
            "ok": True,
            "request_id": payload.get("request_id"),
            "served_by": self.address,
        }
        for field in ("tensors", "groups"):
            if field in payload:
                envelope["results"] = [
                    {"item": item, "served_by": self.address}
                    for item in payload[field]
                ]
        return envelope

    def submit(self, payload):
        if self.behavior == "refuse":
            raise TransportError(
                f"cannot connect to {self.address}", address=self.address
            )
        reply = FakeReply()
        self.submits.append((payload, reply))
        if self.behavior == "echo":
            reply.resolve(self._respond(payload))
        elif self.behavior == "die":
            reply.fail(
                TransportError(
                    f"connection to {self.address} lost", address=self.address
                )
            )
        return reply

    def request(self, payload):
        return self.submit(payload).result(5.0)

    def close(self):
        self.closed = True


def make_fleet(behaviors, **kwargs):
    """FleetTransport over scripted fakes; returns (transport, replicas)."""
    replicas = {
        address: FakeReplica(address, behavior)
        for address, behavior in behaviors.items()
    }
    kwargs.setdefault("hedge_delay", 0.01)
    transport = FleetTransport(
        list(behaviors),
        transport_factory=lambda address: replicas[address],
        **kwargs,
    )
    return transport, replicas


def _norm_payload(model="tiny", dataset="default", request_id=7001):
    return {
        "op": "normalize",
        "request_id": request_id,
        "model": model,
        "dataset": dataset,
        "accelerator": None,
    }


def _bulk_payload(items, request_id=7100):
    return {
        "op": "normalize_bulk",
        "request_id": request_id,
        "model": "tiny",
        "dataset": "default",
        "accelerator": None,
        "tensors": list(items),
    }


# ---------------------------------------------------------------------------
# the consistent-hash ring
# ---------------------------------------------------------------------------


class TestHashRing:
    KEYS = [("model-%d" % (i % 7), "ds-%d" % (i % 5), None) for i in range(600)]

    def test_placement_is_process_stable(self):
        # hashlib-based, so two independently built rings (and two
        # interpreters with different PYTHONHASHSEED) agree exactly.
        a = HashRing(["r0:1", "r1:1", "r2:1"])
        b = HashRing(["r0:1", "r1:1", "r2:1"])
        assert [a.primary(key) for key in self.KEYS] == [
            b.primary(key) for key in self.KEYS
        ]
        assert stable_hash("x") == stable_hash("x")

    def test_join_moves_a_bounded_fraction_and_only_to_the_newcomer(self):
        ring = HashRing(["r0:1", "r1:1", "r2:1"], vnodes=64)
        before = {key: ring.primary(key) for key in self.KEYS}
        ring.add("r3:1")
        after = {key: ring.primary(key) for key in self.KEYS}
        moved = [key for key in self.KEYS if before[key] != after[key]]
        # Expected movement is 1/(N+1) = 25%; allow vnode variance.
        assert 0 < len(moved) <= len(self.KEYS) * 0.45
        assert all(after[key] == "r3:1" for key in moved)

    def test_leave_moves_only_the_leavers_keys(self):
        ring = HashRing(["r0:1", "r1:1", "r2:1", "r3:1"], vnodes=64)
        before = {key: ring.primary(key) for key in self.KEYS}
        ring.remove("r1:1")
        after = {key: ring.primary(key) for key in self.KEYS}
        for key in self.KEYS:
            if before[key] != "r1:1":
                assert after[key] == before[key]
            else:
                assert after[key] != "r1:1"

    def test_candidates_are_distinct_and_complete(self):
        ring = HashRing(["r0:1", "r1:1", "r2:1"])
        for key in self.KEYS[:50]:
            candidates = ring.candidates(key)
            assert len(candidates) == 3
            assert len(set(candidates)) == 3
            assert candidates[0] == ring.primary(key)

    def test_membership_errors(self):
        ring = HashRing(["r0:1"])
        with pytest.raises(ValueError, match="already"):
            ring.add("r0:1")
        with pytest.raises(ValueError, match="not on the ring"):
            ring.remove("r9:1")
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)
        assert HashRing().candidates("anything") == []

    def test_canonical_key_is_unambiguous(self):
        assert canonical_key(("a", "bc")) != canonical_key(("ab", "c"))
        assert canonical_key(("m", None)) != canonical_key(("m", "None"))
        assert canonical_key("plain") == "plain"


# ---------------------------------------------------------------------------
# the circuit breaker
# ---------------------------------------------------------------------------


class TestReplicaHealth:
    def _health(self, **overrides):
        clock = FakeClock()
        config = BreakerConfig(
            window=16,
            failure_threshold=3,
            cooldown=2.0,
            min_latency_samples=4,
            **overrides,
        )
        return ReplicaHealth("r0:1", config=config, clock=clock), clock

    def test_opens_after_consecutive_failures_only(self):
        health, _clock = self._health()
        assert health.state == CLOSED and health.admit()
        health.record_failure()
        health.record_failure()
        health.record_success()  # streak broken
        health.record_failure()
        health.record_failure()
        assert health.state == CLOSED
        health.record_failure()
        assert health.state == OPEN
        assert not health.admit() and not health.peek()

    def test_half_open_admits_exactly_one_probe(self):
        health, clock = self._health()
        for _ in range(3):
            health.record_failure()
        clock.advance(2.5)
        assert health.state == HALF_OPEN
        assert health.peek()  # side-effect free ...
        assert health.peek()  # ... so it still reads True
        assert health.admit()  # the probe slot
        assert not health.admit()  # consumed
        assert not health.peek()
        health.record_success(latency=0.01)
        assert health.state == CLOSED and health.admit()

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        health, clock = self._health()
        for _ in range(3):
            health.record_failure()
        clock.advance(2.5)
        assert health.admit()
        health.record_failure()  # the probe dies
        assert health.state == OPEN
        clock.advance(1.0)
        assert health.state == OPEN  # fresh cooldown, not the stale one
        clock.advance(1.5)
        assert health.state == HALF_OPEN

    def test_latency_percentiles_gate_on_sample_count(self):
        health, _clock = self._health()
        for latency in (0.01, 0.02, 0.03):
            health.record_success(latency=latency)
        assert health.latency_percentile(99) is None
        health.record_success(latency=0.04)
        assert health.latency_percentile(99) == pytest.approx(0.04, rel=0.1)
        assert 0.0 <= health.failure_rate() <= 1.0
        snap = health.snapshot()
        assert snap["state"] == CLOSED and snap["successes"] == 4


class TestFleetRouter:
    def test_healthy_shards_excludes_open_breakers(self):
        clock = FakeClock()
        router = FleetRouter(
            ["r0:1", "r1:1", "r2:1"],
            breaker=BreakerConfig(failure_threshold=1, cooldown=5.0),
            clock=clock,
        )
        key = ("tiny", "default", None)
        assert set(router.healthy_shards(key)) == {"r0:1", "r1:1", "r2:1"}
        victim = router.candidates(key)[0]
        router.record_failure(victim)
        shards = router.healthy_shards(key)
        assert victim not in shards and len(shards) == 2

    def test_membership_keeps_ring_and_health_in_lockstep(self):
        router = FleetRouter(["r0:1"])
        router.add_replica("r1:1")
        assert set(router.addresses) == {"r0:1", "r1:1"}
        assert router.health("r1:1").state == CLOSED
        router.remove_replica("r0:1")
        assert router.addresses == ("r1:1",)
        with pytest.raises(KeyError):
            router.health("r0:1")
        with pytest.raises(ValueError):
            FleetRouter([])
        with pytest.raises(ValueError):
            FleetRouter(["r0:1", "r0:1"])

    def test_hedge_delay_clamps_the_rolling_p99(self):
        router = FleetRouter(
            ["r0:1"], breaker=BreakerConfig(min_latency_samples=2)
        )
        # Cold window: the default.
        assert router.hedge_delay("r0:1", 0.05, 0.005, 1.0) == 0.05
        for _ in range(4):
            router.record_success("r0:1", latency=0.0001)
        assert router.hedge_delay("r0:1", 0.05, 0.005, 1.0) == 0.005  # floor
        for _ in range(16):
            router.record_success("r0:1", latency=30.0)
        assert router.hedge_delay("r0:1", 0.05, 0.005, 1.0) == 1.0  # ceiling


# ---------------------------------------------------------------------------
# hedged dispatch over scripted fakes
# ---------------------------------------------------------------------------


class TestHedgedDispatch:
    def test_fast_primary_wins_without_hedging(self):
        transport, replicas = make_fleet(
            {"a:1": "echo", "b:1": "echo", "c:1": "echo"}, hedge_delay=10.0
        )
        payload = _norm_payload()
        primary = transport.router.candidates(transport.routing_key(payload))[0]
        envelope = transport.request(payload)
        assert envelope["served_by"] == primary
        assert transport.hedges_issued == 0 and transport.hedge_wins == 0
        assert transport.router.health(primary).successes == 1

    def test_hedge_fires_and_first_winner_takes_it(self):
        transport, replicas = make_fleet(
            {"a:1": "hang", "b:1": "hang", "c:1": "hang"}, hedge_delay=0.01
        )
        payload = _norm_payload()
        order = transport.router.candidates(transport.routing_key(payload))
        primary, second = order[0], order[1]
        result = {}

        def _call():
            result["envelope"] = transport.request(payload)

        thread = threading.Thread(target=_call)
        thread.start()
        # Wait for the hedge to land on the second candidate, then let the
        # hedge (not the primary) answer.
        deadline = threading.Event()
        for _ in range(500):
            if replicas[second].submits:
                break
            deadline.wait(0.01)
        assert replicas[second].submits, "hedge never fired"
        replicas[second].submits[0][1].resolve(
            replicas[second]._respond(payload)
        )
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result["envelope"]["served_by"] == second
        assert transport.hedges_issued == 1 and transport.hedge_wins == 1
        # The straggling primary was abandoned, not left dangling.
        assert replicas[primary].submits[0][1].abandoned
        assert transport.router.health(second).successes == 1

    def test_failover_at_submit_walks_the_ring(self):
        transport, replicas = make_fleet(
            {"a:1": "echo", "b:1": "echo", "c:1": "echo"}, hedge_delay=10.0
        )
        payload = _norm_payload()
        order = transport.router.candidates(transport.routing_key(payload))
        replicas[order[0]].behavior = "refuse"
        envelope = transport.request(payload)
        assert envelope["served_by"] == order[1]
        assert transport.failovers == 1
        assert transport.router.health(order[0]).failures == 1

    def test_connection_dying_after_send_fails_over(self):
        transport, replicas = make_fleet(
            {"a:1": "echo", "b:1": "echo", "c:1": "echo"}, hedge_delay=10.0
        )
        payload = _norm_payload()
        order = transport.router.candidates(transport.routing_key(payload))
        replicas[order[0]].behavior = "die"
        envelope = transport.request(payload)
        assert envelope["served_by"] == order[1]
        assert transport.router.health(order[0]).failures == 1

    def test_exhaustion_fails_closed_with_typed_error(self):
        transport, replicas = make_fleet(
            {"a:1": "refuse", "b:1": "refuse", "c:1": "refuse"},
            breaker=BreakerConfig(failure_threshold=1, cooldown=60.0),
        )
        with pytest.raises(NoHealthyReplicaError) as excinfo:
            transport.request(_norm_payload())
        message = str(excinfo.value)
        assert "a:1" in message and "b:1" in message and "c:1" in message
        assert excinfo.value.code == "no_healthy_replica"
        assert isinstance(excinfo.value, TransportError)
        # Every breaker is now open: the next request is rejected without
        # touching any replica (fail-closed, no hammering).
        with pytest.raises(NoHealthyReplicaError):
            transport.request(_norm_payload())
        assert all(not replica.submits for replica in replicas.values())

    def test_error_envelopes_do_not_count_against_health(self):
        transport, replicas = make_fleet({"a:1": "hang"}, hedge=False)
        payload = _norm_payload()
        error_envelope = {
            "op": "error",
            "ok": False,
            "request_id": payload["request_id"],
            "error": {"code": "unknown_model", "message": "nope"},
        }

        def _answer():
            for _ in range(500):
                if replicas["a:1"].submits:
                    replicas["a:1"].submits[0][1].resolve(error_envelope)
                    return
                threading.Event().wait(0.01)

        thread = threading.Thread(target=_answer)
        thread.start()
        envelope = transport.request(payload)
        thread.join()
        # The envelope passes through untouched; the replica answered, so
        # its health records a *success* (a healthy server, a bad request).
        assert envelope["error"]["code"] == "unknown_model"
        health = transport.router.health("a:1")
        assert health.successes == 1 and health.failures == 0

    def test_pipelined_submit_records_outcomes(self):
        transport, replicas = make_fleet({"a:1": "echo", "b:1": "echo"})
        payload = _norm_payload()
        reply = transport.submit(payload)
        envelope = reply.result(1.0)
        assert envelope["op"] == "normalize"
        assert transport.router.health(envelope["served_by"]).successes == 1

    def test_no_healthy_replica_error_code_round_trips(self):
        error = error_for_code("no_healthy_replica", "all gone")
        assert isinstance(error, NoHealthyReplicaError)
        assert isinstance(error, TransportError)


# ---------------------------------------------------------------------------
# scatter-gather
# ---------------------------------------------------------------------------


class TestScatterGather:
    ITEMS = [f"item-{index}" for index in range(7)]

    def test_reassembles_in_request_order_with_fresh_sub_ids(self):
        transport, replicas = make_fleet(
            {"a:1": "echo", "b:1": "echo", "c:1": "echo"}
        )
        payload = _bulk_payload(self.ITEMS, request_id=4242)
        envelope = transport.request(payload)
        assert envelope["request_id"] == 4242
        assert [entry["item"] for entry in envelope["results"]] == self.ITEMS
        # Spread over more than one shard, each slice under a fresh id.
        served_by = {entry["served_by"] for entry in envelope["results"]}
        assert len(served_by) > 1
        sub_ids = {
            sub_payload["request_id"]
            for replica in replicas.values()
            for sub_payload, _reply in replica.submits
        }
        assert 4242 not in sub_ids and len(sub_ids) > 1
        assert transport.scatter_requests == 1

    def test_mid_flight_shard_death_retries_on_survivors(self):
        transport, replicas = make_fleet(
            {"a:1": "echo", "b:1": "echo", "c:1": "echo"}
        )
        payload = _bulk_payload(self.ITEMS)
        key = transport.routing_key(payload)
        victim = transport.router.healthy_shards(key)[0]
        replicas[victim].behavior = "die"
        envelope = transport.request(payload)
        assert [entry["item"] for entry in envelope["results"]] == self.ITEMS
        assert all(
            entry["served_by"] != victim for entry in envelope["results"]
        )
        assert transport.scatter_retries >= 1
        assert transport.router.health(victim).failures >= 1

    def test_error_envelope_from_any_shard_fails_the_whole_bulk(self):
        transport, replicas = make_fleet(
            {"a:1": "echo", "b:1": "echo", "c:1": "echo"}
        )
        payload = _bulk_payload(self.ITEMS, request_id=555)
        key = transport.routing_key(payload)
        bad = transport.router.healthy_shards(key)[1]

        original_respond = replicas[bad]._respond

        def _error_respond(sub_payload):
            envelope = original_respond(sub_payload)
            return {
                "op": "error",
                "ok": False,
                "request_id": envelope["request_id"],
                "error": {"code": "bad_schema", "message": "poisoned slice"},
            }

        replicas[bad]._respond = _error_respond
        envelope = transport.request(payload)
        assert envelope["ok"] is False
        assert envelope["error"]["message"] == "poisoned slice"
        assert envelope["request_id"] == 555  # surfaced under the bulk's id

    def test_single_item_and_disabled_scatter_route_whole(self):
        transport, replicas = make_fleet(
            {"a:1": "echo", "b:1": "echo"}, scatter=False
        )
        envelope = transport.request(_bulk_payload(self.ITEMS))
        assert len({entry["served_by"] for entry in envelope["results"]}) == 1
        assert transport.scatter_requests == 0

        transport2, replicas2 = make_fleet({"a:1": "echo", "b:1": "echo"})
        envelope2 = transport2.request(_bulk_payload(self.ITEMS[:1]))
        assert len(envelope2["results"]) == 1
        assert transport2.scatter_requests == 0

    def test_degraded_to_one_shard_falls_back_to_hedged_whole(self):
        transport, replicas = make_fleet(
            {"a:1": "echo", "b:1": "echo"},
            breaker=BreakerConfig(failure_threshold=1, cooldown=60.0),
        )
        payload = _bulk_payload(self.ITEMS)
        key = transport.routing_key(payload)
        victim = transport.router.healthy_shards(key)[0]
        transport.router.record_failure(victim)  # breaker opens
        envelope = transport.request(payload)
        assert [entry["item"] for entry in envelope["results"]] == self.ITEMS
        assert len({entry["served_by"] for entry in envelope["results"]}) == 1
        assert transport.scatter_requests == 0  # degraded: routed whole


# ---------------------------------------------------------------------------
# end-to-end: live replicas, bit-identical to the direct service
# ---------------------------------------------------------------------------


@pytest.fixture()
def fleet_registry():
    return CalibrationRegistry(loader=_instant_loader)


@pytest.fixture()
def fleet_servers(fleet_registry):
    """Three live NormServer replicas over one shared registry."""
    services = [NormalizationService(registry=fleet_registry) for _ in range(3)]
    servers = [NormServer(service).start() for service in services]
    yield servers
    for server in servers:
        server.close()
    for service in services:
        service.close()


def _addresses(servers):
    return [f"{server.host}:{server.port}" for server in servers]


class TestFleetEndToEnd:
    def _golden(self, registry, payloads):
        with NormalizationService(registry=registry, threaded=False) as service:
            return [
                service.normalize(payload, "tiny").output for payload in payloads
            ]

    def test_client_parity_across_all_dispatch_paths(
        self, fleet_registry, fleet_servers, rng
    ):
        payloads = [rng.normal(size=(3, HIDDEN)) for _ in range(8)]
        golden = self._golden(fleet_registry, payloads)
        with NormClient.connect_fleet(_addresses(fleet_servers)) as client:
            client.wait_until_ready()
            single = [client.normalize(p, "tiny").output for p in payloads]
            pipelined = [
                r.output for r in client.normalize_many(payloads, "tiny", depth=4)
            ]
            bulk = [r.output for r in client.normalize_bulk(payloads, "tiny")]
            streamed = [r.output for r in client.stream(payloads, "tiny", depth=4)]
            served = client.fetch_spec("tiny")
            stacked = np.vstack(payloads)
            executed, _mean, _isd = client.execute_spec(
                served.spec, stacked, gamma=served.gamma, beta=served.beta
            )
            assert "vectorized" in client.ping()["backends"]
        for outputs in (single, pipelined, bulk, streamed):
            for out, ref in zip(outputs, golden):
                assert np.array_equal(out, ref)
        from repro.engine.registry import build

        engine = build(
            served.spec, backend="reference", gamma=served.gamma, beta=served.beta
        )
        assert np.array_equal(executed, engine.run(stacked)[0])

    def test_execute_bulk_scatters_bit_identically(
        self, fleet_registry, fleet_servers, rng
    ):
        with NormClient.connect_fleet(_addresses(fleet_servers)) as fleet_client:
            fleet_client.wait_until_ready()
            served = fleet_client.fetch_spec("tiny")
            groups = [(rng.normal(size=(2, HIDDEN)), None, None) for _ in range(6)]
            fleet_out = fleet_client.execute_spec_bulk(
                served.spec, groups, gamma=served.gamma, beta=served.beta
            )
        from repro.engine.registry import build

        engine = build(
            served.spec, backend="reference", gamma=served.gamma, beta=served.beta
        )
        assert len(fleet_out) == 6
        for (rows, _s, _a), triple in zip(groups, fleet_out):
            golden = engine.run(rows)
            for got, want in zip(triple, golden):
                assert np.array_equal(got, want)
        assert isinstance(fleet_client.transport, FleetTransport)
        assert fleet_client.transport.stats()["scatter_requests"] >= 1

    def test_mid_run_replica_kill_stays_bit_identical(
        self, fleet_registry, fleet_servers, rng
    ):
        payloads = [rng.normal(size=(2, HIDDEN)) for _ in range(6)]
        golden = self._golden(fleet_registry, payloads)
        with NormClient.connect_fleet(
            _addresses(fleet_servers), timeout=10.0
        ) as client:
            client.wait_until_ready()
            warm = [r.output for r in client.normalize_many(payloads, "tiny")]
            fleet_servers[0].close()  # abrupt death, connections included
            after = [
                r.output for r in client.normalize_many(payloads, "tiny", depth=3)
            ]
            bulk = [r.output for r in client.normalize_bulk(payloads, "tiny")]
        for outputs in (warm, after, bulk):
            for out, ref in zip(outputs, golden):
                assert np.array_equal(out, ref)

    def test_every_replica_down_fails_closed(self, fleet_registry):
        service = NormalizationService(registry=fleet_registry)
        server = NormServer(service).start()
        address = f"{server.host}:{server.port}"
        server.close()
        service.close()
        with NormClient.connect_fleet(
            [address], timeout=2.0, connect_timeout=0.2
        ) as client:
            with pytest.raises(NoHealthyReplicaError, match=address):
                client.normalize(np.ones(HIDDEN), "tiny")

    def test_membership_changes_at_runtime(self, fleet_registry, fleet_servers, rng):
        addresses = _addresses(fleet_servers)
        transport = FleetTransport(addresses[:1])
        with NormClient(transport) as client:
            client.wait_until_ready()
            payload = rng.normal(size=(HIDDEN,))
            first = client.normalize(payload, "tiny").output
            transport.add_replica(addresses[1])
            transport.add_replica(addresses[2])
            assert set(transport.addresses) == set(addresses)
            again = client.normalize(payload, "tiny").output
            transport.remove_replica(addresses[0])
            assert addresses[0] not in transport.addresses
            final = client.normalize(payload, "tiny").output
        assert np.array_equal(first, again) and np.array_equal(first, final)


# ---------------------------------------------------------------------------
# PR-6 satellites: error addresses, wire gauges, transport registry
# ---------------------------------------------------------------------------


class TestTransportErrorAddress:
    def test_connect_failure_carries_the_replica_address(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()  # nothing listens here any more
        transport = SocketTransport(host, port, connect_timeout=0.2, timeout=0.5)
        with pytest.raises(TransportError) as excinfo:
            transport.request({"op": "ping", "request_id": 1})
        assert excinfo.value.address == f"{host}:{port}"
        assert f"{host}:{port}" in str(excinfo.value)

    def test_fleet_exhaustion_chains_the_address(self):
        transport, _replicas = make_fleet({"a:1": "refuse"})
        with pytest.raises(NoHealthyReplicaError) as excinfo:
            transport.request(_norm_payload())
        cause = excinfo.value.__cause__
        assert isinstance(cause, TransportError) and cause.address == "a:1"


class TestWireGauges:
    def test_per_connection_inflight_and_backpressure_sections(
        self, fleet_registry, fleet_servers, rng
    ):
        server = fleet_servers[0]
        with NormClient.connect(server.host, server.port) as client:
            client.wait_until_ready()
            payloads = [rng.normal(size=(2, HIDDEN)) for _ in range(6)]
            client.normalize_many(payloads, "tiny", depth=6)
            wire = client.telemetry()["telemetry"]["wire"]
        assert wire["frames_received"] >= 6
        assert "backpressure_waits" in wire and wire["backpressure_waits"] >= 0
        assert "inflight_current" in wire
        per_connection = wire["per_connection"]
        assert per_connection and isinstance(per_connection, list)
        connection = per_connection[0]
        for key in ("id", "inflight", "peak_inflight", "frames", "backpressure_waits"):
            assert key in connection
        assert connection["frames"] >= 6
        assert connection["peak_inflight"] >= 1

    def test_format_table_renders_per_connection_rows(
        self, fleet_registry, fleet_servers, rng
    ):
        server = fleet_servers[0]
        with NormClient.connect(server.host, server.port) as client:
            client.wait_until_ready()
            client.normalize(rng.normal(size=(HIDDEN,)), "tiny")
            # Per-connection rows exist for *live* connections: render the
            # table before close or the reader thread may retire the row.
            table = server.service.telemetry.format_table()
        assert "wire conn[" in table
        assert "wire backpressure" in table


class TestTransportRegistry:
    def test_fleet_transport_is_registered(self):
        assert {"in-process", "socket", "fleet"} <= set(available_transports())
        transport = create_transport("fleet", addresses=["127.0.0.1:1"])
        assert isinstance(transport, FleetTransport)
        transport.close()

    def test_fleet_experiment_is_registered(self):
        from repro.eval.experiments import EXPERIMENTS

        assert "fleet" in EXPERIMENTS


# ---------------------------------------------------------------------------
# haan-fleet CLI + supervisor
# ---------------------------------------------------------------------------


class TestFleetCLI:
    def test_attach_drives_fleet_with_golden_check(self, fleet_servers, capsys):
        addresses = ",".join(_addresses(fleet_servers))
        code = fleet_cli.main(
            [
                "--attach",
                addresses,
                "--requests",
                "4",
                "--datasets",
                "2",
                "--bulk-items",
                "3",
                "--rows",
                "2",
                "--depth",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "golden check passed" in out
        assert "replica" in out  # per-replica table header

    def test_attach_json_summary(self, fleet_servers, capsys):
        addresses = ",".join(_addresses(fleet_servers))
        code = fleet_cli.main(
            [
                "--attach",
                addresses,
                "--requests",
                "3",
                "--datasets",
                "1",
                "--bulk-items",
                "2",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        summary, _ = json.JSONDecoder().raw_decode(out[out.index("{") :])
        assert summary["golden_mismatches"] == 0
        assert summary["requests"] == 3 + 2
        assert summary["killed"] is None
        assert summary["replicas"] == _addresses(fleet_servers)

    @pytest.mark.parametrize(
        "argv",
        [
            ["--replicas", "0"],
            ["--attach", "not-an-address"],
            ["--attach", " , "],
            ["--attach", "127.0.0.1:1", "--kill-one"],
            ["--serve", "--attach", "127.0.0.1:1"],
            ["--requests", "0"],
        ],
    )
    def test_bad_arguments_exit_2(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            fleet_cli.main(argv)
        assert excinfo.value.code == 2

    def test_replica_table_marks_dead_replica_down(self, capsys):
        fleet_cli._print_replica_table(["127.0.0.1:1"], stats=None)
        out = capsys.readouterr().out
        assert "down" in out


class TestFleetSupervisor:
    def test_lifecycle_kill_restart_and_close(self):
        supervisor = FleetSupervisor(2, restart=True, model="tiny", workers=2)
        try:
            addresses = supervisor.start()
            assert len(addresses) == 2
            replica = supervisor.replica(0)
            assert replica.alive
            old_address = replica.address
            replica.kill()
            deadline = time.monotonic() + 60.0
            churn = []
            while time.monotonic() < deadline and not churn:
                churn = supervisor.poll()
                time.sleep(0.05)
            assert churn, "supervisor never noticed the killed replica"
            old, new = churn[0]
            assert old == old_address
            assert new is not None  # restart=True relaunches on a fresh port
            assert supervisor.replica(0).alive
            host, port = new.rsplit(":", 1)
            with NormClient.connect(host, int(port)) as probe:
                probe.wait_until_ready(timeout=30.0)
                assert "vectorized" in probe.ping()["backends"]
        finally:
            supervisor.close()
        assert not supervisor.replica(0).alive
        assert not supervisor.replica(1).alive

    def test_serve_mode_shuts_down_cleanly(self, monkeypatch, capsys):
        class _InterruptingTime:
            @staticmethod
            def sleep(seconds):  # noqa: ARG004 - signature match
                raise KeyboardInterrupt

        monkeypatch.setattr(fleet_cli, "time", _InterruptingTime)
        code = fleet_cli.main(["--serve", "--replicas", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving 1 replica(s)" in out
        assert "shutting down" in out

    def test_launch_and_kill_one_survives(self, capsys):
        code = fleet_cli.main(
            [
                "--replicas",
                "2",
                "--datasets",
                "2",
                "--requests",
                "4",
                "--bulk-items",
                "3",
                "--rows",
                "2",
                "--kill-one",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "killed replica" in out
        assert "golden check passed" in out
