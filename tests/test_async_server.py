"""Tests of the asyncio server core (``AsyncNormServer``).

The core contract: the async core is a *drop-in* for the threaded
``NormServer`` -- every response bit-identical, every error the same
typed member of the taxonomy, the same wire-snapshot keys -- while the
event loop holds hundreds of idle connections without a thread each.

Covered here:

* bit-parity of single / bulk / stream / pipelined traffic across the
  async core, the threaded core, and the service called directly;
* error-taxonomy parity (unknown model, payload-shape rejection) and
  typed ``DeadlineExceededError`` for budget-expired requests;
* hundreds of idle connections held open while golden-checked traffic
  flows on another connection;
* graceful drain: in-flight work answered, post-drain work refused;
* the tenancy handshake (token auth, typed rejection) and the chaos
  ``FaultGate`` contract, both unchanged on the async core.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.api.aserver import AsyncNormServer
from repro.api.client import NormClient
from repro.api.envelopes import (
    ApiError,
    AuthenticationError,
    BadSchemaError,
    DeadlineExceededError,
    UnknownModelError,
)
from repro.api.server import NormServer
from repro.chaos.gate import FaultGate
from repro.chaos.plan import FaultPlan, FaultRule
from repro.serving.registry import CalibrationRegistry
from repro.serving.service import NormalizationService
from repro.tenancy import QuotaPolicy, TenancyController, TenantDirectory, TenantSpec

from test_api import _instant_loader

HIDDEN = 48


@pytest.fixture()
def registry():
    return CalibrationRegistry(loader=_instant_loader)


def _service(registry, scheduler="continuous"):
    return NormalizationService(registry=registry, scheduler=scheduler)


def _rows(rng, count=5):
    return rng.normal(0.0, 1.5, size=(count, HIDDEN))


def _golden(registry, payload):
    layer = registry.get("tiny", "default").layer(0)
    return layer.engine_for("reference").run(np.asarray(payload, dtype=np.float64))[0]


def _controller(require_auth=False):
    directory = TenantDirectory(
        tenants=[TenantSpec(name="acme", token="tok-acme", tier="metered")],
        tiers={"metered": QuotaPolicy(requests_per_s=1000.0, burst_seconds=1.0)},
        require_auth=require_auth,
    )
    return TenancyController(directory=directory)


# ---------------------------------------------------------------------------
# bit parity with the threaded core
# ---------------------------------------------------------------------------


class TestBitParity:
    def test_single_bulk_and_stream_bit_identical_across_cores(self, registry, rng):
        payload = _rows(rng)
        bulk = [_rows(rng, 3), _rows(rng, 2)]
        chunks = [_rows(rng, 2), _rows(rng, 4)]

        outputs = {}
        for label, server_cls, scheduler in (
            ("async", AsyncNormServer, "continuous"),
            ("threads", NormServer, "micro"),
        ):
            service = _service(registry, scheduler=scheduler)
            with server_cls(service) as server:
                with NormClient.connect(server.host, server.port) as client:
                    outputs[label] = {
                        "single": client.normalize(payload, "tiny").output,
                        "bulk": [
                            r.output for r in client.normalize_bulk(bulk, "tiny")
                        ],
                        "stream": [
                            r.output for r in client.stream(iter(chunks), "tiny")
                        ],
                    }
            service.close()

        np.testing.assert_array_equal(
            outputs["async"]["single"], outputs["threads"]["single"]
        )
        np.testing.assert_array_equal(outputs["async"]["single"], _golden(registry, payload))
        for got_async, got_threads, sent in zip(
            outputs["async"]["bulk"], outputs["threads"]["bulk"], bulk
        ):
            np.testing.assert_array_equal(got_async, got_threads)
            np.testing.assert_array_equal(got_async, _golden(registry, sent))
        for got_async, got_threads, sent in zip(
            outputs["async"]["stream"], outputs["threads"]["stream"], chunks
        ):
            np.testing.assert_array_equal(got_async, got_threads)
            np.testing.assert_array_equal(got_async, _golden(registry, sent))

    def test_pipelined_submissions_bit_identical(self, registry, rng):
        payloads = [_rows(rng, i + 1) for i in range(8)]
        service = _service(registry)
        with AsyncNormServer(service) as server:
            with NormClient.connect(server.host, server.port) as client:
                handles = [
                    client.submit_normalize(payload, "tiny") for payload in payloads
                ]
                for handle, payload in zip(handles, payloads):
                    result = handle.result(timeout=10.0)
                    np.testing.assert_array_equal(
                        result.output, _golden(registry, payload)
                    )
        service.close()

    def test_wire_snapshot_keys_match_threaded_core(self, registry, rng):
        snapshots = {}
        for label, server_cls in (("async", AsyncNormServer), ("threads", NormServer)):
            service = _service(registry, scheduler="micro")
            with server_cls(service) as server:
                with NormClient.connect(server.host, server.port) as client:
                    client.normalize(_rows(rng), "tiny")
                    # Snapshot while the connection is live so the
                    # per-connection gauge rows exist on both cores.
                    snapshots[label] = server.wire_snapshot()
            service.close()
        assert set(snapshots["async"]) == set(snapshots["threads"])
        row_async = snapshots["async"]["per_connection"][0]
        row_threads = snapshots["threads"]["per_connection"][0]
        assert set(row_async) == set(row_threads)


class TestErrorParity:
    def test_unknown_model_typed_on_both_cores(self, rng):
        def _refusing_loader(model_name, dataset):
            raise KeyError(f"unknown model {model_name!r}")

        payload = _rows(rng)
        for server_cls in (AsyncNormServer, NormServer):
            service = NormalizationService(
                registry=CalibrationRegistry(loader=_refusing_loader)
            )
            with server_cls(service) as server:
                with NormClient.connect(server.host, server.port) as client:
                    with pytest.raises(UnknownModelError):
                        client.normalize(payload, "nope")
            service.close()

    def test_bad_width_typed_on_both_cores(self, registry):
        for server_cls in (AsyncNormServer, NormServer):
            service = _service(registry, scheduler="micro")
            with server_cls(service) as server:
                with NormClient.connect(server.host, server.port) as client:
                    with pytest.raises(BadSchemaError, match="width"):
                        client.normalize(np.ones((2, 8)), "tiny")
            service.close()

    def test_infeasible_deadline_shed_typed_at_the_gate(self, registry, rng):
        """The pre-decode admission gate sheds a deadline below its
        service-time estimate before any tensor decode, with retry_after."""
        service = _service(registry, scheduler="continuous")
        with AsyncNormServer(service) as server:
            from repro.api.envelopes import OverloadedError
            from repro.api.retry import RetryPolicy

            with NormClient.connect(
                server.host, server.port, retry_policy=RetryPolicy(max_attempts=1)
            ) as client:
                with pytest.raises(OverloadedError, match="cannot be met"):
                    client.normalize(_rows(rng), "tiny", deadline_ms=0.0005)
        service.close()

    def test_expired_deadline_sheds_typed_over_the_wire(self, registry, rng):
        """A microsecond budget admitted by the gate (its service-time
        estimate forced to ~0) is always gone by the first engine tick:
        the continuous scheduler sheds it and the client sees the typed
        DeadlineExceededError, never a silent late result."""
        from repro.api.admission import AdmissionController

        service = _service(registry, scheduler="continuous")
        admission = AdmissionController(initial_service_time=1e-9, ema_alpha=1e-6)
        with AsyncNormServer(service, admission=admission) as server:
            with NormClient.connect(server.host, server.port) as client:
                with pytest.raises(DeadlineExceededError):
                    client.normalize(_rows(rng), "tiny", deadline_ms=0.0005)
                # The connection survives the shed: later work still serves.
                payload = _rows(rng)
                result = client.normalize(payload, "tiny")
                np.testing.assert_array_equal(result.output, _golden(registry, payload))
        service.close()


# ---------------------------------------------------------------------------
# idle-connection scale + drain
# ---------------------------------------------------------------------------


class TestConnectionScale:
    def test_hundreds_of_idle_connections_while_traffic_flows(self, registry, rng):
        idle_target = 200
        service = _service(registry)
        server = AsyncNormServer(service).start()
        idle = []
        try:
            for _ in range(idle_target):
                sock = socket.create_connection((server.host, server.port), timeout=5.0)
                idle.append(sock)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if server.wire_snapshot()["connections_active"] >= idle_target:
                    break
                time.sleep(0.02)
            snapshot = server.wire_snapshot()
            assert snapshot["connections_active"] >= idle_target
            with NormClient.connect(server.host, server.port) as client:
                for _ in range(5):
                    payload = _rows(rng)
                    result = client.normalize(payload, "tiny")
                    np.testing.assert_array_equal(
                        result.output, _golden(registry, payload)
                    )
        finally:
            for sock in idle:
                sock.close()
            server.close()
            service.close()

    def test_drain_answers_inflight_then_refuses_new_connections(self, registry, rng):
        service = _service(registry)
        server = AsyncNormServer(service).start()
        payload = _rows(rng)
        try:
            with NormClient.connect(server.host, server.port) as client:
                result = client.normalize(payload, "tiny")
                np.testing.assert_array_equal(result.output, _golden(registry, payload))
            server.close(drain_timeout=2.0)
            with pytest.raises(OSError):
                socket.create_connection((server.host, server.port), timeout=0.5).close()
        finally:
            server.close()
            service.close()

    def test_drain_flushes_concurrent_traffic(self, registry, rng):
        """Requests racing close(drain) either complete bit-identically or
        fail typed/with a transport error -- never hang, never corrupt."""
        service = _service(registry)
        server = AsyncNormServer(service).start()
        payloads = [_rows(rng) for _ in range(16)]
        outcomes = []

        def pump():
            try:
                with NormClient.connect(server.host, server.port) as client:
                    for payload in payloads:
                        got = client.normalize(payload, "tiny")
                        np.testing.assert_array_equal(
                            got.output, _golden(registry, payload)
                        )
                        outcomes.append("ok")
            except Exception as error:  # noqa: BLE001 -- recorded for assert
                outcomes.append(type(error).__name__)

        thread = threading.Thread(target=pump)
        try:
            thread.start()
            time.sleep(0.05)
            server.close(drain_timeout=5.0)
            thread.join(timeout=15.0)
            assert not thread.is_alive(), "client hung across a drained close"
            assert outcomes, "pump thread recorded nothing"
            assert outcomes.count("ok") >= 1
        finally:
            server.close()
            service.close()

    def test_close_is_idempotent_and_snapshot_survives(self, registry, rng):
        service = _service(registry)
        server = AsyncNormServer(service).start()
        with NormClient.connect(server.host, server.port) as client:
            client.normalize(_rows(rng), "tiny")
        server.close(drain_timeout=1.0)
        server.close()
        snapshot = server.wire_snapshot()
        assert snapshot["requests_served"] >= 1
        assert snapshot["connections_active"] == 0
        service.close()


# ---------------------------------------------------------------------------
# tenancy + chaos ride unchanged on the async core
# ---------------------------------------------------------------------------


class TestAsyncTenancy:
    def test_require_auth_rejects_tokenless_work_typed(self, registry, rng):
        service = _service(registry)
        with AsyncNormServer(service, tenancy=_controller(require_auth=True)) as server:
            with NormClient.connect(server.host, server.port) as client:
                with pytest.raises(AuthenticationError):
                    client.normalize(_rows(rng), "tiny")
        service.close()

    def test_bad_token_fails_the_handshake_typed(self, registry, rng):
        service = _service(registry)
        with AsyncNormServer(service, tenancy=_controller()) as server:
            with pytest.raises(AuthenticationError):
                with NormClient.connect(
                    server.host, server.port, token="tok-wrong"
                ) as client:
                    client.normalize(_rows(rng), "tiny")
        service.close()

    def test_authenticated_traffic_bit_identical_and_metered(self, registry, rng):
        controller = _controller(require_auth=True)
        service = _service(registry)
        with AsyncNormServer(service, tenancy=controller) as server:
            with NormClient.connect(
                server.host, server.port, token="tok-acme"
            ) as client:
                payload = _rows(rng)
                result = client.normalize(payload, "tiny")
                np.testing.assert_array_equal(result.output, _golden(registry, payload))
        ledger = controller.snapshot()["ledger"]
        assert ledger["acme"]["requests"] >= 1
        service.close()


class TestAsyncChaos:
    def test_server_side_gate_same_contract(self, registry, rng):
        plan = FaultPlan(
            seed=9,
            rules=(
                FaultRule(kind="corrupt", probability=0.3),
                FaultRule(kind="drop", probability=0.2),
            ),
        )
        gate = FaultGate(plan)
        service = _service(registry)
        server = AsyncNormServer(service, fault_gate=gate).start()
        try:
            with NormClient.connect(server.host, server.port, timeout=1.0) as client:
                typed = 0
                for _ in range(12):
                    payload = _rows(rng)
                    try:
                        result = client.normalize(payload, "tiny")
                    except ApiError:
                        typed += 1
                        continue
                    np.testing.assert_array_equal(
                        result.output, _golden(registry, payload)
                    )
                assert gate.snapshot()["injected"] > 0
                assert typed > 0
        finally:
            server.close()
            service.close()
