"""Tests of the memory layout (Figure 7) and the pipeline scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.memory import MemoryLayout
from repro.hardware.pipeline import PipelineModel, PipelineStage
from repro.numerics.quantization import DataFormat


class TestMemoryLayout:
    def test_pack_unpack_roundtrip(self, rng):
        layout = MemoryLayout(entry_width=2)
        tensor = rng.normal(size=(2, 4))
        entries = layout.pack(tensor)
        assert entries.shape == (4, 2)
        np.testing.assert_allclose(layout.unpack(entries, (2, 4)), tensor)

    def test_figure7_example_layout(self):
        """The paper's 2x4 example with bandwidth 2 occupies 4 entries."""
        layout = MemoryLayout(entry_width=2)
        tensor = np.array([[1.5, 2.3, 5.8, 9.3], [3.5, 5.2, 1.2, 0.0]])
        entries = layout.pack(tensor)
        np.testing.assert_allclose(entries[0], [1.5, 2.3])
        np.testing.assert_allclose(entries[3], [1.2, 0.0])

    def test_padding_of_last_entry(self):
        layout = MemoryLayout(entry_width=4)
        entries = layout.pack(np.arange(6.0))
        assert entries.shape == (2, 4)
        np.testing.assert_allclose(entries[1], [4.0, 5.0, 0.0, 0.0])

    def test_entries_for(self):
        layout = MemoryLayout(entry_width=128)
        assert layout.entries_for(0) == 0
        assert layout.entries_for(1) == 1
        assert layout.entries_for(1600) == 13

    def test_subsampled_entries(self):
        layout = MemoryLayout(entry_width=128)
        assert layout.subsampled_entries_per_row(1600, None) == 13
        assert layout.subsampled_entries_per_row(1600, 800) == 7
        assert layout.subsampled_entries_per_row(1600, 99999) == 13

    def test_traffic_accounting(self):
        layout = MemoryLayout(entry_width=8, data_format=DataFormat.FP16)
        layout.record_read(100)
        layout.record_write(50)
        assert layout.traffic.bytes_read == 200
        assert layout.traffic.bytes_written == 100
        assert layout.traffic.total_bytes == 300
        layout.traffic.reset()
        assert layout.traffic.total_bytes == 0

    def test_row_addresses(self):
        layout = MemoryLayout(entry_width=4)
        ranges = layout.row_addresses(num_rows=2, row_length=6)
        assert ranges[0] == (0, 2)
        assert ranges[1] == (1, 2)

    def test_unpack_too_small_rejected(self):
        layout = MemoryLayout(entry_width=4)
        with pytest.raises(ValueError):
            layout.unpack(np.zeros((1, 4)), (2, 4))

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            MemoryLayout(entry_width=0)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_entry_count_ceiling_property(self, width, elements):
        layout = MemoryLayout(entry_width=width)
        expected = 0 if elements == 0 else -(-elements // width)
        assert layout.entries_for(elements) == expected


class TestPipeline:
    def _pipeline(self):
        return PipelineModel(
            [
                PipelineStage("stats", cycles_per_row=7, fill_latency=2),
                PipelineStage("inv-sqrt", cycles_per_row=1, fill_latency=6),
                PipelineStage("normalize", cycles_per_row=13, fill_latency=1),
            ]
        )

    def test_bottleneck_identified(self):
        assert self._pipeline().bottleneck.name == "normalize"
        assert self._pipeline().issue_interval() == 13

    def test_fill_cycles(self):
        assert self._pipeline().fill_cycles == (7 + 2) + (1 + 6) + (13 + 1)

    def test_total_cycles_formula(self):
        schedule = self._pipeline().schedule(100)
        assert schedule.total_cycles == self._pipeline().fill_cycles + 13 * 99
        assert schedule.bottleneck_stage == "normalize"

    def test_utilization_ordering(self):
        schedule = self._pipeline().schedule(200)
        util = schedule.utilization
        assert util["normalize"] > util["stats"] > util["inv-sqrt"]
        assert util["normalize"] <= 1.0

    def test_zero_rows(self):
        schedule = self._pipeline().schedule(0)
        assert schedule.total_cycles == 0
        assert all(v == 0.0 for v in schedule.utilization.values())

    def test_single_row_costs_fill_only(self):
        assert self._pipeline().schedule(1).total_cycles == self._pipeline().fill_cycles

    def test_balance_metric(self):
        balanced = PipelineModel(
            [PipelineStage("a", 10), PipelineStage("b", 10)]
        ).schedule(50)
        skewed = PipelineModel(
            [PipelineStage("a", 1), PipelineStage("b", 10)]
        ).schedule(50)
        assert balanced.balance() > skewed.balance()

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            self._pipeline().schedule(-1)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            PipelineModel([])

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_total_cycles_monotone_in_rows(self, rows):
        pipeline = self._pipeline()
        assert pipeline.schedule(rows + 1).total_cycles > pipeline.schedule(rows).total_cycles
