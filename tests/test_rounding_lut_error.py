"""Tests for rounding modes, LUT approximations and error metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.error_analysis import (
    ErrorSummary,
    max_ulp_error,
    signal_to_quantization_noise_db,
    summarize_error,
    ulp_distance,
)
from repro.numerics.fixedpoint import FixedPointFormat
from repro.numerics.lut import (
    PiecewiseLinearLUT,
    exp_lut,
    gelu_lut,
    inv_sqrt_lut,
    segments_for_tolerance,
)
from repro.numerics.rounding import (
    RoundingMode,
    expected_stochastic_value,
    hardware_cost_rank,
    round_to_grid,
    rounding_bias,
)

FMT = FixedPointFormat(integer_bits=8, fraction_bits=8)


class TestRoundingModes:
    def test_mode_lookup(self):
        assert RoundingMode.from_string("nearest-even") is RoundingMode.NEAREST_EVEN
        assert RoundingMode.from_string("STOCHASTIC") is RoundingMode.STOCHASTIC
        with pytest.raises(ValueError):
            RoundingMode.from_string("round-up")

    def test_nearest_even_matches_format_quantize(self, rng):
        values = rng.normal(0, 10, size=100)
        rounded = round_to_grid(values, FMT, RoundingMode.NEAREST_EVEN)
        np.testing.assert_allclose(rounded, FMT.quantize(values))

    def test_truncate_never_rounds_up(self, rng):
        values = rng.normal(0, 10, size=200)
        rounded = round_to_grid(values, FMT, RoundingMode.TRUNCATE)
        assert np.all(rounded <= values + 1e-12)

    def test_toward_zero_shrinks_magnitude(self, rng):
        values = rng.normal(0, 10, size=200)
        rounded = round_to_grid(values, FMT, RoundingMode.TOWARD_ZERO)
        assert np.all(np.abs(rounded) <= np.abs(values) + 1e-12)

    def test_saturation_applies_to_all_modes(self):
        for mode in RoundingMode:
            out = round_to_grid([1e6, -1e6], FMT, mode, rng=np.random.default_rng(0))
            assert out[0] == pytest.approx(FMT.max_value)
            assert out[1] == pytest.approx(FMT.min_value)

    def test_stochastic_rounding_is_unbiased(self):
        value = 0.3 + FMT.scale * 0.37  # deliberately off-grid
        mean = expected_stochastic_value(value, FMT, samples=20000, seed=1)
        assert mean == pytest.approx(value, abs=FMT.scale * 0.05)

    def test_stochastic_reproducible_with_rng(self):
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        values = np.linspace(-1, 1, 50) + 0.001
        out_a = round_to_grid(values, FMT, RoundingMode.STOCHASTIC, rng=rng_a)
        out_b = round_to_grid(values, FMT, RoundingMode.STOCHASTIC, rng=rng_b)
        np.testing.assert_array_equal(out_a, out_b)

    def test_truncation_bias_is_negative(self, rng):
        values = rng.uniform(0, 1, size=500) + FMT.scale / 3
        assert rounding_bias(values, FMT, RoundingMode.TRUNCATE) < 0

    def test_hardware_cost_ordering(self):
        assert hardware_cost_rank(RoundingMode.TRUNCATE) < hardware_cost_rank(
            RoundingMode.NEAREST_EVEN
        )
        assert hardware_cost_rank(RoundingMode.NEAREST_EVEN) < hardware_cost_rank(
            RoundingMode.STOCHASTIC
        )

    @given(
        values=st.lists(
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=1, max_size=32
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_all_modes_land_on_grid(self, values):
        for mode in RoundingMode:
            out = round_to_grid(values, FMT, mode, rng=np.random.default_rng(0))
            codes = out / FMT.scale
            np.testing.assert_allclose(codes, np.rint(codes), atol=1e-9)

    @given(
        values=st.lists(
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=1, max_size=32
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_rounding_error_bounded_by_one_lsb(self, values):
        for mode in RoundingMode:
            out = round_to_grid(values, FMT, mode, rng=np.random.default_rng(0))
            assert np.all(np.abs(out - np.asarray(values)) <= FMT.scale + 1e-12)


class TestPiecewiseLinearLUT:
    def test_exact_at_segment_edges(self):
        lut = inv_sqrt_lut(num_segments=16, x_min=0.5, x_max=8.0)
        edges = np.linspace(0.5, 8.0, 17)
        np.testing.assert_allclose(lut.evaluate(edges[:-1]), 1 / np.sqrt(edges[:-1]), rtol=1e-12)

    def test_error_decreases_with_more_segments(self):
        coarse = inv_sqrt_lut(num_segments=8)
        fine = inv_sqrt_lut(num_segments=128)
        assert fine.max_relative_error() < coarse.max_relative_error()

    def test_out_of_range_clamps_to_boundary_segment(self):
        lut = inv_sqrt_lut(num_segments=32, x_min=1.0, x_max=4.0)
        below = float(lut.evaluate(0.5))
        # Evaluated with the first segment's line, not garbage.
        expected = lut.slopes[0] * 0.5 + lut.intercepts[0]
        assert below == pytest.approx(expected)

    def test_exp_lut_accuracy(self):
        lut = exp_lut(num_segments=256)
        xs = np.linspace(-10, 0, 500)
        np.testing.assert_allclose(lut.evaluate(xs), np.exp(xs), atol=2e-3)

    def test_gelu_lut_matches_tanh_gelu(self):
        lut = gelu_lut(num_segments=512)
        assert lut.max_absolute_error() < 1e-3

    def test_segments_for_tolerance_monotone(self):
        segments = segments_for_tolerance(lambda n: inv_sqrt_lut(num_segments=n), 0.01)
        assert inv_sqrt_lut(num_segments=segments).max_relative_error() <= 0.01
        assert inv_sqrt_lut(num_segments=max(2, segments // 2)).max_relative_error() > 0.01

    def test_unreachable_tolerance_raises(self):
        with pytest.raises(ValueError):
            segments_for_tolerance(lambda n: inv_sqrt_lut(num_segments=n), 1e-12, max_segments=8)

    def test_table_bits_scale_with_segments(self):
        assert inv_sqrt_lut(num_segments=64).table_bits == 2 * inv_sqrt_lut(num_segments=32).table_bits

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinearLUT(np.exp, x_min=0.0, x_max=1.0, num_segments=0)
        with pytest.raises(ValueError):
            PiecewiseLinearLUT(np.exp, x_min=1.0, x_max=1.0, num_segments=4)

    def test_lut_vs_fast_inv_sqrt_comparison(self):
        """The HAAN bit hack beats a small LUT; a large LUT beats the bit hack."""
        from repro.numerics.fast_inv_sqrt import relative_error

        variances = np.linspace(0.25, 16.0, 200)
        haan_error = float(np.max(relative_error(variances, newton_iterations=1)))
        small_lut = inv_sqrt_lut(num_segments=8, x_min=0.25, x_max=16.0)
        large_lut = inv_sqrt_lut(num_segments=2048, x_min=0.25, x_max=16.0)
        assert haan_error < small_lut.max_relative_error()
        assert large_lut.max_relative_error() < haan_error


class TestErrorAnalysis:
    def test_identical_arrays_have_infinite_sqnr(self):
        values = np.linspace(-1, 1, 50)
        assert signal_to_quantization_noise_db(values, values) == np.inf

    def test_sqnr_decreases_with_noise(self, rng):
        signal = rng.normal(0, 1, size=1000)
        small = signal + rng.normal(0, 0.001, size=1000)
        large = signal + rng.normal(0, 0.1, size=1000)
        assert signal_to_quantization_noise_db(signal, small) > signal_to_quantization_noise_db(
            signal, large
        )

    def test_sqnr_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            signal_to_quantization_noise_db([1.0, 2.0], [1.0])

    def test_ulp_distance_zero_for_equal(self):
        values = np.array([1.0, -2.5, 3e8])
        assert max_ulp_error(values, values) == 0

    def test_ulp_distance_one_for_adjacent_floats(self):
        value = np.float32(1.0)
        neighbour = np.nextafter(value, np.float32(2.0), dtype=np.float32)
        assert max_ulp_error([float(value)], [float(neighbour)]) == 1

    def test_ulp_distance_across_zero(self):
        distances = ulp_distance([1e-38], [-1e-38])
        assert distances[0] > 0

    def test_summary_fields(self, rng):
        reference = rng.normal(0, 1, size=200)
        approx = reference + rng.normal(0, 0.01, size=200)
        summary = summarize_error(reference, approx)
        assert summary.max_absolute >= summary.mean_absolute
        assert summary.max_relative >= summary.mean_relative
        assert summary.sqnr_db > 20
        assert len(summary.as_row()) == len(ErrorSummary.header())

    def test_summary_within_tolerance(self):
        summary = summarize_error([1.0, 2.0], [1.001, 2.002])
        assert summary.within(0.01)
        assert not summary.within(0.0001)

    def test_summary_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            summarize_error([1.0, 2.0], [1.0])

    @given(
        scale=st.floats(min_value=1e-3, max_value=1e3),
        # Noise below ~1e-9 is dominated by float64 rounding, where the SQNR
        # is ill-conditioned and scale invariance genuinely breaks down.
        noise=st.floats(min_value=1e-9, max_value=0.1),
    )
    @settings(max_examples=30, deadline=None)
    def test_sqnr_is_scale_invariant(self, scale, noise):
        base = np.linspace(1.0, 2.0, 64)
        perturbed = base * (1.0 + noise)
        a = signal_to_quantization_noise_db(base, perturbed)
        b = signal_to_quantization_noise_db(base * scale, perturbed * scale)
        if np.isfinite(a) and np.isfinite(b):
            assert a == pytest.approx(b, abs=1e-6)
