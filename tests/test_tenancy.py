"""Tests of repro.tenancy: auth, quotas, metering and the metrics endpoint.

The contracts under test, in order:

* token buckets: a fresh bucket grants its full burst, refills with the
  injected clock, never debits on rejection, and under N concurrent
  threads admits **exactly** capacity -- never one more;
* exact metering: ``split_cost`` attributes a batch's modelled
  cycles/energy to its tenants with shares that sum *exactly* to the
  engine totals, and a ledger survives ``to_json``/``from_json``
  losslessly (rational energy included);
* the tenant directory: bearer-token auth is constant-time over the full
  directory, invalid tokens never downgrade to anonymous, and
  ``require_auth`` turns tokenless access into a typed error;
* the taxonomy: ``quota_exceeded``/``unauthenticated`` round-trip the
  wire typed, the retry loop classifies quota sheds like overload sheds,
  and every taxonomy member is exported from ``repro.api`` (the export
  drift this PR fixes stays fixed);
* the served stack: quota rejection happens **before** binary tensor
  decode (``np.frombuffer`` is never called for a shed request),
  ``--require-auth`` servers reject tokenless work typed while
  authenticated traffic stays bit-identical, and ``/metrics`` emits
  valid Prometheus text exposition.
"""

from __future__ import annotations

import json
import re
import threading
import urllib.error
import urllib.request
from fractions import Fraction

import numpy as np
import pytest

import repro.api
from repro.api.client import NormClient
from repro.api.envelopes import (
    ApiError,
    AuthenticationError,
    ERROR_CLASSES,
    ErrorResponse,
    OverloadedError,
    QuotaExceededError,
    error_for_code,
)
from repro.api.retry import RetryPolicy
from repro.api.server import NormServer
from repro.api.transport import _overload_error
from repro.core.config import HaanConfig
from repro.core.haan_norm import HaanNormalization
from repro.core.subsampling import SubsampleSettings
from repro.llm.normalization import LayerNorm
from repro.numerics.quantization import DataFormat
from repro.serving.registry import CalibrationArtifact, CalibrationRegistry
from repro.serving.service import NormalizationService
from repro.tenancy import (
    ANONYMOUS,
    CostLedger,
    MetricsServer,
    QuotaPolicy,
    TenancyController,
    TenantDirectory,
    TenantQuota,
    TenantSpec,
    TokenBucket,
    estimate_rows,
    render_prometheus,
    split_cost,
)

HIDDEN = 32


class FakeClock:
    """Injectable monotonic clock the tests advance by hand."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# token buckets
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_fresh_bucket_grants_full_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=10.0, clock=clock)
        for _ in range(10):
            assert bucket.try_acquire(1.0) is None
        assert bucket.try_acquire(1.0) is not None  # 11th: empty

    def test_burst_equal_to_capacity_admits_in_one_call(self):
        bucket = TokenBucket(rate=1.0, capacity=64.0, clock=FakeClock())
        assert bucket.try_acquire(64.0) is None
        assert bucket.try_acquire(1.0) is not None

    def test_refills_after_idle(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=5.0, capacity=5.0, clock=clock)
        assert bucket.try_acquire(5.0) is None
        assert bucket.try_acquire(1.0) is not None
        clock.advance(0.4)  # 2 tokens back
        assert bucket.try_acquire(2.0) is None
        assert bucket.try_acquire(1.0) is not None
        clock.advance(100.0)  # refill clamps at capacity
        assert bucket.try_acquire(5.0) is None
        assert bucket.try_acquire(1.0) is not None

    def test_rejection_never_debits(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=2.0, clock=clock)
        assert bucket.try_acquire(1.0) is None
        before = bucket.tokens
        for _ in range(50):
            assert bucket.try_acquire(5.0) is not None  # over capacity
        assert bucket.tokens == pytest.approx(before)
        assert bucket.try_acquire(1.0) is None  # the remaining token survived

    def test_rejection_reports_refill_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=4.0, clock=clock)
        assert bucket.try_acquire(4.0) is None
        wait = bucket.try_acquire(3.0)
        assert wait == pytest.approx(1.5)  # 3 tokens at 2/s

    def test_zero_rate_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, capacity=2.0, clock=clock)
        assert bucket.try_acquire(2.0) is None
        clock.advance(1e9)
        assert bucket.try_acquire(1.0) is not None

    def test_concurrent_threads_never_over_admit(self):
        # Frozen clock: no refill mid-test.  64 threads race for 16 tokens;
        # exactly 16 may win, never one more.
        bucket = TokenBucket(rate=1.0, capacity=16.0, clock=FakeClock())
        threads = 64
        barrier = threading.Barrier(threads)
        admitted = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            if bucket.try_acquire(1.0) is None:
                with lock:
                    admitted.append(1)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(admitted) == 16


class TestTenantQuota:
    def test_admit_and_shed_with_retry_after(self):
        clock = FakeClock()
        policy = QuotaPolicy(requests_per_s=2.0, burst_seconds=1.0)
        quota = TenantQuota(policy, tenant="acme", clock=clock)
        quota.admit(requests=1.0)
        quota.admit(requests=1.0)
        with pytest.raises(QuotaExceededError) as excinfo:
            quota.admit(requests=1.0)
        error = excinfo.value
        assert error.code == "quota_exceeded"
        assert "acme" in str(error) and "requests" in str(error)
        assert 1 <= error.retry_after_ms <= 60_000
        snap = quota.snapshot()
        assert snap["admitted"] == 2
        assert snap["shed"]["requests"] == 1

    def test_rejection_leaves_other_buckets_untouched(self):
        clock = FakeClock()
        policy = QuotaPolicy(requests_per_s=100.0, rows_per_s=4.0, burst_seconds=1.0)
        quota = TenantQuota(policy, clock=clock)
        with pytest.raises(QuotaExceededError):
            quota.admit(requests=1.0, rows=100.0)  # rows bucket rejects
        # The requests bucket was not debited by the failed admit.
        for _ in range(100):
            quota.admit(requests=1.0)

    def test_none_policy_means_unlimited(self):
        quota = TenantQuota(
            QuotaPolicy(requests_per_s=None, rows_per_s=None, bytes_per_s=None),
            clock=FakeClock(),
        )
        for _ in range(1000):
            quota.admit(requests=1.0, rows=1e9, nbytes=1e12)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            QuotaPolicy(requests_per_s=-1.0)
        with pytest.raises(ValueError):
            QuotaPolicy(burst_seconds=0.0)
        with pytest.raises(ValueError):
            QuotaPolicy.from_dict({"requests_per_s": 1.0, "bogus": 2})


class TestEstimateRows:
    def test_counts_leading_dim_of_tensor_dicts(self):
        payload = {
            "op": "normalize_bulk",
            "tensors": [
                {"shape": [4, HIDDEN], "encoding": "binary", "data": 0},
                {"shape": [3, HIDDEN], "encoding": "json", "data": [[0.0]]},
                {"shape": [HIDDEN], "encoding": "json", "data": [0.0]},  # 1-D: 1 row
            ],
        }
        assert estimate_rows(payload) == 8

    def test_never_descends_into_tensor_dicts(self):
        # A binary preamble's `data` is an int buffer index; descending into
        # the dict (or touching `data`) would defeat the pre-decode claim.
        payload = {
            "op": "normalize",
            "tensor": {
                "shape": [5, HIDDEN],
                "encoding": "binary",
                "data": {"shape": [99, 1], "encoding": "x", "data": 1},
            },
        }
        assert estimate_rows(payload) == 5

    def test_non_tensor_payloads_count_zero(self):
        assert estimate_rows({"op": "spec", "model": "tiny"}) == 0


# ---------------------------------------------------------------------------
# exact metering
# ---------------------------------------------------------------------------


class TestSplitCost:
    @pytest.mark.parametrize("seed", range(8))
    def test_shares_sum_exactly_to_totals(self, seed):
        rng = np.random.default_rng(seed)
        counts = [int(n) for n in rng.integers(1, 97, size=int(rng.integers(1, 13)))]
        cycles = int(rng.integers(1, 10**9))
        energy = float(rng.uniform(0.0, 1e6))
        shares = split_cost(cycles, energy, counts)
        assert sum(share_cycles for share_cycles, _ in shares) == cycles
        assert sum(share_energy for _, share_energy in shares) == Fraction(energy)

    def test_split_is_proportional(self):
        shares = split_cost(100, 10.0, [1, 3])
        assert shares[0][0] == 25 and shares[1][0] == 75
        assert shares[0][1] == Fraction(10.0) / 4

    def test_rejects_degenerate_counts(self):
        with pytest.raises(ValueError):
            split_cost(10, 1.0, [])
        with pytest.raises(ValueError):
            split_cost(10, 1.0, [0, 0])
        with pytest.raises(ValueError):
            split_cost(10, 1.0, [2, -1])


class TestCostLedger:
    def test_charge_batch_attributes_by_rows(self):
        ledger = CostLedger()

        class Record:
            total_cycles = 1000
            energy_nj = 7.3

        ledger.charge_batch(["a", "b", None], [1, 2, 1], Record())
        cycles_a, _ = ledger.exact_totals("a")
        cycles_b, _ = ledger.exact_totals("b")
        cycles_anon, _ = ledger.exact_totals(ANONYMOUS)
        assert cycles_a + cycles_b + cycles_anon == 1000
        assert cycles_b == 500  # 2 of 4 rows
        total_energy = sum(
            ledger.exact_totals(name)[1] for name in ("a", "b", ANONYMOUS)
        )
        assert total_energy == Fraction(7.3)

    def test_json_round_trip_is_lossless(self):
        ledger = CostLedger()
        ledger.open_account("acme", balance=10_000)
        ledger.charge_request("acme", rows=17, nbytes=4096, wall_seconds=0.125)
        ledger.charge_cost("acme", cycles=1234, energy_nj=0.1 + 0.2)  # non-dyadic sum
        restored = CostLedger.from_json(json.loads(json.dumps(ledger.to_json())))
        assert restored.exact_totals("acme") == ledger.exact_totals("acme")
        assert restored.remaining("acme") == ledger.remaining("acme")
        assert restored.snapshot() == ledger.snapshot()

    def test_balance_deducts_and_exhausts(self):
        ledger = CostLedger()
        ledger.open_account("acme", balance=100)
        assert not ledger.exhausted("acme")
        ledger.charge_cost("acme", cycles=99, energy_nj=0.0)
        assert not ledger.exhausted("acme")
        ledger.charge_cost("acme", cycles=1, energy_nj=0.0)
        assert ledger.exhausted("acme")
        assert ledger.remaining("acme") == 0

    def test_reopen_never_resets_a_drained_account(self):
        ledger = CostLedger()
        ledger.open_account("acme", balance=10)
        ledger.charge_cost("acme", cycles=10, energy_nj=0.0)
        ledger.open_account("acme", balance=10)  # reconnect
        assert ledger.exhausted("acme")

    def test_unknown_tenants_are_postpaid_and_empty(self):
        ledger = CostLedger()
        assert ledger.remaining("ghost") is None
        assert not ledger.exhausted("ghost")
        assert ledger.exact_totals("ghost") == (0, Fraction(0))
        ledger.open_account("acme")
        assert ledger.tenants() == ["acme"]
        assert ledger.remaining("acme") is None  # post-paid: no balance

    def test_from_json_rejects_malformed_snapshots(self):
        with pytest.raises(ValueError):
            CostLedger.from_json({"version": 2, "tenants": {}})
        with pytest.raises(ValueError):
            CostLedger.from_json({"version": 1, "tenants": []})
        good = CostLedger()
        good.charge_cost("a", cycles=1, energy_nj=1.0)
        payload = good.to_json()
        payload["tenants"]["a"]["energy_nj"] = [1, 2, 3]  # not a pair
        with pytest.raises(ValueError):
            CostLedger.from_json(payload)


# ---------------------------------------------------------------------------
# the tenant directory
# ---------------------------------------------------------------------------


def _directory(require_auth: bool = False) -> TenantDirectory:
    return TenantDirectory(
        tenants=[
            TenantSpec(name="acme", token="tok-acme", tier="gold"),
            TenantSpec(name="mouse", token="tok-mouse"),
        ],
        tiers={"gold": QuotaPolicy(requests_per_s=None)},
        require_auth=require_auth,
    )


class TestTenantDirectory:
    def test_valid_token_authenticates(self):
        context = _directory().authenticate("tok-acme")
        assert context.name == "acme"
        assert context.tier == "gold"
        assert context.authenticated

    def test_invalid_token_never_downgrades_to_anonymous(self):
        with pytest.raises(AuthenticationError):
            _directory().authenticate("tok-wrong")

    def test_missing_token_is_anonymous_unless_required(self):
        context = _directory().authenticate(None)
        assert context.name == ANONYMOUS and not context.authenticated
        with pytest.raises(AuthenticationError):
            _directory(require_auth=True).authenticate(None)

    def test_reserved_and_duplicate_declarations_rejected(self):
        with pytest.raises(ValueError):
            TenantSpec(name="anonymous", token="x")
        with pytest.raises(ValueError):
            TenantDirectory(
                tenants=[
                    TenantSpec(name="a", token="t1"),
                    TenantSpec(name="a", token="t2"),
                ]
            )
        with pytest.raises(ValueError):
            TenantDirectory(
                tenants=[
                    TenantSpec(name="a", token="t"),
                    TenantSpec(name="b", token="t"),
                ]
            )
        with pytest.raises(ValueError):
            TenantDirectory(tenants=[TenantSpec(name="a", token="t", tier="nope")])

    def test_from_dict_round_trips_the_documented_schema(self):
        directory = TenantDirectory.from_dict(
            {
                "tiers": {"gold": {"requests_per_s": None, "rows_per_s": 100}},
                "tenants": [
                    {"name": "acme", "token": "tok", "tier": "gold", "balance": 5}
                ],
            }
        )
        assert len(directory) == 1
        assert directory.spec("acme").balance == 5
        assert directory.policy_for("gold").requests_per_s is None

    def test_from_file_and_controller_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            json.dumps(
                {
                    "tiers": {"gold": {"requests_per_s": None}},
                    "tenants": [{"name": "acme", "token": "tok", "tier": "gold"}],
                }
            )
        )
        controller = TenancyController.from_file(str(path), require_auth=True)
        assert controller.require_auth
        assert controller.authenticate("tok").name == "acme"

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError):
            TenantDirectory.from_file(str(bad))

    def test_from_dict_rejects_malformed_schemas(self):
        with pytest.raises(ValueError):
            TenantDirectory.from_dict([])  # not an object
        with pytest.raises(ValueError):
            TenantDirectory.from_dict({"surprise": 1})
        with pytest.raises(ValueError):
            TenantDirectory.from_dict({"tiers": []})
        with pytest.raises(ValueError):
            TenantDirectory.from_dict({"tenants": {}})
        with pytest.raises(ValueError):
            TenantDirectory.from_dict(
                {"tenants": [{"name": "a", "token": "t", "color": "red"}]}
            )
        with pytest.raises(ValueError):
            TenantSpec(name="", token="t")
        with pytest.raises(ValueError):
            TenantSpec(name="a", token="")

    def test_unknown_tier_falls_back_to_default_policy(self):
        directory = _directory()
        assert directory.policy_for("never-declared") == directory.policy_for("default")

    def test_controller_counts_auth_outcomes(self):
        controller = TenancyController(directory=_directory())
        controller.authenticate("tok-acme")
        with pytest.raises(AuthenticationError):
            controller.authenticate("bogus")
        snap = controller.snapshot()
        assert snap["authenticated_total"] == 1
        assert snap["rejected_tokens"] == 1


# ---------------------------------------------------------------------------
# taxonomy: wire round trips, retry classification, export reconciliation
# ---------------------------------------------------------------------------


class TestTaxonomy:
    def test_quota_exceeded_round_trips_with_retry_after(self):
        wire = ErrorResponse.from_exception(
            QuotaExceededError("acme is out of rows", retry_after_ms=250.0), 7
        ).to_wire()
        with pytest.raises(QuotaExceededError) as excinfo:
            ErrorResponse.from_wire(wire).raise_()
        assert excinfo.value.retry_after_ms == 250.0

    def test_unauthenticated_round_trips(self):
        wire = ErrorResponse.from_exception(AuthenticationError("no token"), 1).to_wire()
        with pytest.raises(AuthenticationError):
            ErrorResponse.from_wire(wire).raise_()

    def test_retry_loop_classifies_quota_sheds_like_overload(self):
        envelope = ErrorResponse.from_exception(
            QuotaExceededError("slow down", retry_after_ms=42.0), 1
        ).to_wire()
        assert _overload_error(envelope) == 42.0
        overloaded = ErrorResponse.from_exception(
            OverloadedError("queue full", retry_after_ms=9.0), 1
        ).to_wire()
        assert _overload_error(overloaded) == 9.0
        plain = ErrorResponse.from_exception(ApiError("nope"), 1).to_wire()
        assert _overload_error(plain) is None

    def test_every_taxonomy_member_is_exported_from_repro_api(self):
        # The export-drift regression: every class reachable over the wire
        # must be importable from repro.api under its own name.
        for code, cls in ERROR_CLASSES.items():
            assert cls.__name__ in repro.api.__all__, (
                f"{cls.__name__} ({code!r}) missing from repro.api.__all__"
            )
            assert getattr(repro.api, cls.__name__) is cls
            rebuilt = error_for_code(code, "message", retry_after_ms=10.0)
            assert type(rebuilt) is cls


# ---------------------------------------------------------------------------
# the served stack
# ---------------------------------------------------------------------------


def _instant_loader(model_name, dataset):
    rng = np.random.default_rng(23)
    base = LayerNorm(hidden_size=HIDDEN, layer_index=0, name="ten.norm0")
    base.load_affine(rng.normal(1.0, 0.1, HIDDEN), rng.normal(0.0, 0.1, HIDDEN))
    haan = HaanNormalization(
        base, subsample=SubsampleSettings(length=8), data_format=DataFormat.INT8
    )
    return CalibrationArtifact(
        model_name=model_name,
        dataset=dataset,
        model=None,
        config=HaanConfig(subsample_length=8, data_format=DataFormat.INT8),
        calibration=None,
        haan_layers=[haan],
        reference_layers=[base],
    )


def _controller(
    requests_per_s=1000.0, require_auth=False, clock=None
) -> TenancyController:
    directory = TenantDirectory(
        tenants=[TenantSpec(name="acme", token="tok-acme", tier="metered")],
        tiers={"metered": QuotaPolicy(requests_per_s=requests_per_s, burst_seconds=1.0)},
        require_auth=require_auth,
    )
    kwargs = {} if clock is None else {"clock": clock}
    return TenancyController(directory=directory, **kwargs)


@pytest.fixture()
def registry():
    return CalibrationRegistry(loader=_instant_loader)


class TestServedTenancy:
    def test_require_auth_rejects_tokenless_work_typed(self, registry):
        with NormalizationService(registry=registry) as service:
            with NormServer(
                service, tenancy=_controller(require_auth=True)
            ) as server:
                with NormClient.connect(server.host, server.port) as client:
                    with pytest.raises(AuthenticationError):
                        client.normalize(np.ones((2, HIDDEN)), "tiny")

    def test_bad_token_fails_the_handshake_typed(self, registry):
        with NormalizationService(registry=registry) as service:
            with NormServer(service, tenancy=_controller()) as server:
                with pytest.raises(AuthenticationError):
                    with NormClient.connect(
                        server.host, server.port, token="tok-wrong"
                    ) as client:
                        client.normalize(np.ones((2, HIDDEN)), "tiny")

    def test_authenticated_traffic_is_bit_identical(self, registry):
        golden = registry.get("tiny", "default").layer(0).engine_for("reference")
        rng = np.random.default_rng(5)
        payload = rng.normal(0.0, 1.0, size=(4, HIDDEN))
        with NormalizationService(registry=registry) as service:
            tenancy = _controller(require_auth=True)
            with NormServer(service, tenancy=tenancy) as server:
                with NormClient.connect(
                    server.host, server.port, token="tok-acme"
                ) as client:
                    result = client.normalize(payload, "tiny")
        assert np.array_equal(result.output, golden.run(payload)[0])
        ledger = tenancy.snapshot()["ledger"]
        assert ledger["acme"]["requests"] == 1
        assert ledger["acme"]["rows"] == 4
        assert ledger["acme"]["bytes"] > 0

    def test_quota_shed_happens_before_binary_decode(self, registry, monkeypatch):
        # The satellite regression: a rejected binary request's tensor
        # buffers are never np.frombuffer-wrapped (nor decoded at all).
        calls = []
        real_frombuffer = np.frombuffer

        def counting_frombuffer(*args, **kwargs):
            calls.append(1)
            return real_frombuffer(*args, **kwargs)

        with NormalizationService(registry=registry) as service:
            with NormServer(
                service, tenancy=_controller(requests_per_s=1.0)
            ) as server:
                with NormClient.connect(
                    server.host,
                    server.port,
                    token="tok-acme",
                    retry_policy=RetryPolicy(max_attempts=1),
                ) as client:
                    # Burst capacity is 1: the first request drains the bucket.
                    client.normalize(np.ones((2, HIDDEN)), "tiny")
                    monkeypatch.setattr(np, "frombuffer", counting_frombuffer)
                    with pytest.raises(QuotaExceededError) as excinfo:
                        client.normalize(np.ones((2, HIDDEN)), "tiny")
        assert excinfo.value.retry_after_ms >= 1
        assert calls == [], "rejected request paid a tensor decode"

    def test_quota_telemetry_reaches_the_snapshot(self, registry):
        with NormalizationService(registry=registry) as service:
            tenancy = _controller(requests_per_s=1.0)
            with NormServer(service, tenancy=tenancy) as server:
                with NormClient.connect(
                    server.host,
                    server.port,
                    token="tok-acme",
                    retry_policy=RetryPolicy(max_attempts=1),
                ) as client:
                    client.normalize(np.ones((2, HIDDEN)), "tiny")
                    with pytest.raises(QuotaExceededError):
                        client.normalize(np.ones((2, HIDDEN)), "tiny")
                snapshot = service.telemetry.snapshot()
        section = snapshot["tenancy"]
        assert section["quotas"]["acme"]["admitted"] == 1
        assert section["quotas"]["acme"]["shed"]["requests"] == 1


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

# One sample line: metric name, optional {labels}, one float/int value.
# Label values may contain backslash-escaped quotes/newlines/backslashes.
_LABEL_VALUE = r'"(?:[^"\\\n]|\\["\\n])*"'
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    rf"(\{{[a-zA-Z_][a-zA-Z0-9_]*={_LABEL_VALUE}(,[a-zA-Z_][a-zA-Z0-9_]*={_LABEL_VALUE})*\}})?"
    r" (-?[0-9][0-9.eE+-]*|NaN|\+Inf|-Inf)$"
)


def _assert_valid_exposition(text: str) -> list:
    samples = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$", line), line
            continue
        assert _SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"
        samples.append(line)
    return samples


class TestMetrics:
    def test_render_is_valid_exposition_with_tenant_labels(self, registry):
        with NormalizationService(registry=registry) as service:
            tenancy = _controller()
            with NormServer(service, tenancy=tenancy) as server:
                with NormClient.connect(
                    server.host, server.port, token="tok-acme"
                ) as client:
                    client.normalize(np.ones((2, HIDDEN)), "tiny")
                text = render_prometheus(
                    service.telemetry.snapshot(), service.telemetry.histogram_export()
                )
        samples = _assert_valid_exposition(text)
        assert any(s.startswith("haan_requests_total ") for s in samples)
        assert any('haan_tenant_requests_total{tenant="acme"} 1' == s for s in samples)
        assert any("haan_queue_wait_seconds_bucket" in s for s in samples)
        # Native histograms: the +Inf bucket equals _count.
        inf = next(
            s for s in samples
            if s.startswith("haan_queue_wait_seconds_bucket") and 'le="+Inf"' in s
        )
        count = next(s for s in samples if s.startswith("haan_queue_wait_seconds_count"))
        assert inf.rsplit(" ", 1)[1] == count.rsplit(" ", 1)[1]

    def test_label_values_are_escaped(self):
        text = render_prometheus(
            {
                "tenancy": {
                    "require_auth": False,
                    "quotas": {'evil"tenant\n': {"admitted": 1, "shed": {}}},
                    "ledger": {},
                }
            }
        )
        assert '\\"' in text and "\\n" in text
        _assert_valid_exposition(text)

    def test_http_endpoint_serves_and_404s(self):
        payload = {"requests_total": 3, "tenancy": {"require_auth": True}}
        with MetricsServer(lambda: render_prometheus(payload)) as metrics:
            url = f"http://{metrics.host}:{metrics.port}"
            with urllib.request.urlopen(f"{url}/metrics", timeout=5.0) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith("text/plain")
                body = response.read().decode("utf-8")
            samples = _assert_valid_exposition(body)
            assert "haan_requests_total 3" in samples
            assert "haan_tenancy_require_auth 1" in samples
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{url}/other", timeout=5.0)
            assert excinfo.value.code == 404

    def test_http_endpoint_answers_500_on_render_failure(self):
        def broken() -> str:
            raise RuntimeError("snapshot blew up")

        with MetricsServer(broken) as metrics:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{metrics.host}:{metrics.port}/metrics", timeout=5.0
                )
            assert excinfo.value.code == 500
