"""Tests of Algorithm 1 (ISD skipping search)."""

import numpy as np
import pytest

from repro.core.skipping import (
    cal_decay,
    find_skip_range,
    find_skip_range_from_profile,
    prediction_error,
    window_correlation,
)


def _synthetic_log_isd(num_layers=32, knee=16, slope=-0.08, noise=0.0, seed=0):
    """A profile that is flat-ish early and linear after the knee."""
    rng = np.random.default_rng(seed)
    values = np.zeros(num_layers)
    values[:knee] = -0.2 * np.sqrt(np.arange(knee))
    values[knee:] = values[knee - 1] + slope * np.arange(1, num_layers - knee + 1)
    return values + noise * rng.standard_normal(num_layers)


class TestCalDecay:
    def test_recovers_slope_of_linear_segment(self):
        window = -0.05 * np.arange(10)
        assert cal_decay(window) == pytest.approx(-0.05)

    def test_requires_two_layers(self):
        with pytest.raises(ValueError):
            cal_decay([1.0])


class TestWindowCorrelation:
    def test_linear_window_has_correlation_minus_one(self):
        values = _synthetic_log_isd()
        assert window_correlation(values, 20, 30) == pytest.approx(-1.0, abs=1e-6)


class TestFindSkipRange:
    def test_finds_the_linear_tail(self):
        values = _synthetic_log_isd(num_layers=40, knee=20, noise=0.002)
        result = find_skip_range(values, window=8)
        start, end = result.skip_range
        assert start >= 18
        assert end - start == 8
        assert result.correlation < -0.99
        assert result.decay == pytest.approx(-0.08, abs=0.01)

    def test_min_start_restricts_search(self):
        values = _synthetic_log_isd(num_layers=40, knee=20)
        result = find_skip_range(values, window=6, min_start=30)
        assert result.skip_range[0] >= 30

    def test_grow_threshold_extends_range(self):
        values = _synthetic_log_isd(num_layers=40, knee=10, noise=0.0)
        small = find_skip_range(values, window=6)
        grown = find_skip_range(values, window=6, grow_threshold=-0.999)
        assert grown.num_skipped >= small.num_skipped

    def test_window_too_large_rejected(self):
        with pytest.raises(ValueError):
            find_skip_range(np.zeros(5), window=10)

    def test_window_too_small_rejected(self):
        with pytest.raises(ValueError):
            find_skip_range(np.zeros(16), window=1)

    def test_anchor_log_isd_recorded(self):
        values = _synthetic_log_isd()
        result = find_skip_range(values, window=8)
        assert result.anchor_log_isd == pytest.approx(values[result.skip_range[0]])


class TestPredictionError:
    def test_zero_error_on_perfect_line(self):
        values = -0.03 * np.arange(30)
        result = find_skip_range(values, window=10)
        errors = prediction_error(values, result)
        assert errors.shape == (result.num_skipped,)
        np.testing.assert_allclose(errors, 0.0, atol=1e-9)

    def test_error_grows_with_curvature(self):
        linear = -0.03 * np.arange(30)
        curved = linear + 0.002 * (np.arange(30) - 15) ** 2
        result_linear = find_skip_range(linear, window=10)
        errors_curved = prediction_error(curved, result_linear)
        assert np.max(errors_curved) > 0.01


class TestOnRealProfile:
    def test_search_on_tiny_model_profile(self, tiny_calibration):
        result = find_skip_range_from_profile(tiny_calibration.profile, window=3)
        start, end = result.skip_range
        assert 0 <= start < end < tiny_calibration.profile.num_layers
        assert result.correlation < 0
