"""Unit tests for :mod:`repro.hdl.signal`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.signal import Register, Signal, SignalWidthError, Wire


class TestSignalDeclaration:
    def test_scalar_defaults(self):
        sig = Signal("s", width=8)
        assert sig.lanes == 1
        assert sig.value == 0
        assert sig.max_value == 255
        assert sig.min_value == 0

    def test_signed_range(self):
        sig = Signal("s", width=8, signed=True)
        assert sig.max_value == 127
        assert sig.min_value == -128

    def test_multi_lane_shape(self):
        sig = Signal("bus", width=16, lanes=4)
        assert sig.values.shape == (4,)

    def test_reset_value_is_wrapped(self):
        sig = Signal("s", width=4, reset=0x1F)
        assert sig.value == 0xF

    def test_zero_width_rejected(self):
        with pytest.raises(SignalWidthError):
            Signal("s", width=0)

    def test_too_wide_rejected(self):
        with pytest.raises(SignalWidthError):
            Signal("s", width=65)

    def test_zero_lanes_rejected(self):
        with pytest.raises(SignalWidthError):
            Signal("s", width=8, lanes=0)


class TestWire:
    def test_drive_scalar(self):
        wire = Wire("w", width=8)
        changed = wire.drive(42)
        assert changed
        assert wire.value == 42

    def test_drive_same_value_reports_unchanged(self):
        wire = Wire("w", width=8)
        wire.drive(7)
        assert wire.drive(7) is False

    def test_unsigned_wrapping(self):
        wire = Wire("w", width=8)
        wire.drive(256 + 3)
        assert wire.value == 3

    def test_signed_wrapping(self):
        wire = Wire("w", width=8, signed=True)
        wire.drive(130)
        assert wire.value == 130 - 256

    def test_multilane_drive(self):
        wire = Wire("w", width=8, lanes=3)
        wire.drive([1, 2, 3])
        assert list(wire.values) == [1, 2, 3]

    def test_scalar_broadcast_to_lanes(self):
        wire = Wire("w", width=8, lanes=3)
        wire.drive(9)
        assert list(wire.values) == [9, 9, 9]

    def test_wrong_lane_count_rejected(self):
        wire = Wire("w", width=8, lanes=3)
        with pytest.raises(ValueError):
            wire.drive([1, 2])

    def test_driven_flag(self):
        wire = Wire("w", width=8)
        assert not wire.driven
        wire.drive(1)
        assert wire.driven
        wire.clear_driven()
        assert not wire.driven

    def test_as_unsigned_view(self):
        wire = Wire("w", width=8, signed=True)
        wire.drive(-1)
        assert wire.as_unsigned()[0] == 0xFF


class TestRegister:
    def test_set_next_not_visible_until_commit(self):
        reg = Register("r", width=8)
        reg.set_next(5)
        assert reg.value == 0
        reg.commit()
        assert reg.value == 5

    def test_commit_reports_change(self):
        reg = Register("r", width=8)
        reg.set_next(1)
        assert reg.commit() is True
        reg.set_next(1)
        assert reg.commit() is False

    def test_hold_keeps_current_value(self):
        reg = Register("r", width=8, reset=3)
        reg.set_next(9)
        reg.commit()
        reg.hold()
        reg.commit()
        assert reg.value == 9

    def test_commit_without_set_next_holds(self):
        reg = Register("r", width=8, reset=4)
        reg.commit()
        assert reg.value == 4

    def test_reset_clears_staged_value(self):
        reg = Register("r", width=8, reset=2)
        reg.set_next(77)
        reg.reset_value()
        reg.commit()
        assert reg.value == 2

    def test_next_values_copy(self):
        reg = Register("r", width=8, lanes=2)
        reg.set_next([1, 2])
        staged = reg.next_values
        staged[0] = 99
        reg.commit()
        assert list(reg.values) == [1, 2]


class TestSignalProperties:
    @given(
        width=st.integers(min_value=1, max_value=63),
        value=st.integers(min_value=-(2**70), max_value=2**70),
    )
    @settings(max_examples=60, deadline=None)
    def test_unsigned_wrap_stays_in_range(self, width, value):
        wire = Wire("w", width=width)
        wire.drive(value)
        assert 0 <= wire.value <= wire.max_value

    @given(
        width=st.integers(min_value=2, max_value=63),
        value=st.integers(min_value=-(2**70), max_value=2**70),
    )
    @settings(max_examples=60, deadline=None)
    def test_signed_wrap_stays_in_range(self, width, value):
        wire = Wire("w", width=width, signed=True)
        wire.drive(value)
        assert wire.min_value <= wire.value <= wire.max_value

    @given(
        width=st.integers(min_value=1, max_value=63),
        value=st.integers(min_value=0, max_value=2**63 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_in_range_unsigned_values_survive(self, width, value):
        wire = Wire("w", width=width)
        in_range = value % (wire.max_value + 1)
        wire.drive(in_range)
        assert wire.value == in_range

    @given(
        width=st.integers(min_value=2, max_value=32),
        value=st.integers(min_value=-(2**40), max_value=2**40),
    )
    @settings(max_examples=60, deadline=None)
    def test_wrap_is_idempotent(self, width, value):
        wire = Wire("w", width=width, signed=True)
        wire.drive(value)
        first = wire.value
        wire.drive(first)
        assert wire.value == first

    @given(
        width=st.integers(min_value=1, max_value=32),
        values=st.lists(st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_register_commit_matches_staged_wrap(self, width, values):
        reg = Register("r", width=width, signed=True, lanes=len(values))
        wire = Wire("w", width=width, signed=True, lanes=len(values))
        reg.set_next(values)
        reg.commit()
        wire.drive(values)
        assert np.array_equal(reg.values, wire.values)
