"""Tests for alternative ISD predictors and the analytic error-propagation model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.error_model import (
    ErrorPropagationReport,
    accumulated_logit_perturbation,
    compare_skip_ranges,
    flip_probability,
    isd_relative_errors,
    output_relative_error,
    propagate,
)
from repro.core.isd import IsdProfile
from repro.core.predictor import IsdPredictor
from repro.core.predictors import (
    AnchoredLogLinearPredictor,
    CalibrationMeanPredictor,
    FlatAnchorPredictor,
    LeastSquaresPredictor,
    evaluate_predictors,
    evaluate_strategy,
    rank_strategies,
)


def synthetic_profile(
    num_tokens: int = 32,
    num_layers: int = 48,
    decay: float = -0.05,
    noise: float = 0.01,
    seed: int = 0,
) -> IsdProfile:
    """Log-linear ISD profile with per-token offsets and small noise.

    Mirrors the structure the paper observes (Figure 2): log-ISD decreases
    roughly linearly with depth, each token riding its own offset.
    """
    rng = np.random.default_rng(seed)
    offsets = rng.normal(0.0, 0.3, size=(num_tokens, 1))
    layers = np.arange(num_layers)[None, :]
    log_isd = offsets + decay * layers + rng.normal(0.0, noise, size=(num_tokens, num_layers))
    return IsdProfile(
        layer_names=[f"layer-{i}" for i in range(num_layers)],
        isd_matrix=np.exp(log_isd),
    )


SKIP_RANGE = (36, 46)
DECAY = -0.05


class TestPredictionStrategies:
    def test_anchored_predictor_shape(self):
        profile = synthetic_profile()
        predicted = AnchoredLogLinearPredictor(decay=DECAY).predict_log_isd(profile, SKIP_RANGE)
        assert predicted.shape == (profile.num_tokens, SKIP_RANGE[1] - SKIP_RANGE[0])

    def test_anchored_predictor_is_accurate_on_log_linear_data(self):
        profile = synthetic_profile(noise=0.005)
        evaluation = evaluate_strategy(
            AnchoredLogLinearPredictor(decay=DECAY), profile, SKIP_RANGE
        )
        assert evaluation.mean_abs_log_error < 0.05
        assert evaluation.mean_relative_isd_error < 0.05

    def test_flat_anchor_worse_than_anchored(self):
        profile = synthetic_profile()
        results = evaluate_predictors(profile, SKIP_RANGE, decay=DECAY)
        assert (
            results["anchored-log-linear"].mean_abs_log_error
            < results["flat-anchor"].mean_abs_log_error
        )

    def test_calibration_mean_ignores_token_variation(self):
        profile = synthetic_profile()
        results = evaluate_predictors(profile, SKIP_RANGE, decay=DECAY)
        # Per-token offsets are +/-0.3 in log domain, so a static predictor
        # cannot do better than that spread.
        assert results["calibration-mean"].mean_abs_log_error > 0.1

    def test_least_squares_competitive_with_anchored(self):
        profile = synthetic_profile(noise=0.005)
        results = evaluate_predictors(profile, SKIP_RANGE, decay=DECAY)
        assert results["least-squares-window"].mean_abs_log_error < 0.1

    def test_least_squares_requires_window(self):
        profile = synthetic_profile()
        with pytest.raises(ValueError):
            LeastSquaresPredictor(window=1).predict_log_isd(profile, (0, 5))

    def test_ranking_orders_by_error(self):
        profile = synthetic_profile()
        results = evaluate_predictors(profile, SKIP_RANGE, decay=DECAY)
        ranking = rank_strategies(results)
        errors = [results[name].mean_abs_log_error for name in ranking]
        assert errors == sorted(errors)
        assert ranking[0] in ("anchored-log-linear", "least-squares-window")

    def test_wrong_decay_hurts_anchored_predictor(self):
        profile = synthetic_profile()
        right = evaluate_strategy(AnchoredLogLinearPredictor(decay=DECAY), profile, SKIP_RANGE)
        wrong = evaluate_strategy(AnchoredLogLinearPredictor(decay=-0.5), profile, SKIP_RANGE)
        assert right.mean_abs_log_error < wrong.mean_abs_log_error

    def test_custom_strategy_list(self):
        profile = synthetic_profile()
        results = evaluate_predictors(
            profile, SKIP_RANGE, decay=DECAY, strategies=[FlatAnchorPredictor()]
        )
        assert set(results) == {"flat-anchor"}

    def test_evaluation_row_format(self):
        profile = synthetic_profile()
        evaluation = evaluate_strategy(FlatAnchorPredictor(), profile, SKIP_RANGE)
        row = evaluation.as_row()
        assert row[0] == "flat-anchor"
        assert len(row) == 4

    def test_calibration_profile_transfer(self):
        calibration = synthetic_profile(seed=1)
        downstream = synthetic_profile(seed=2)
        strategy = CalibrationMeanPredictor(calibration)
        evaluation = evaluate_strategy(strategy, downstream, SKIP_RANGE)
        assert evaluation.mean_abs_log_error > 0


class TestErrorPropagation:
    def _predictor(self, profile: IsdProfile, skip_range=SKIP_RANGE, decay=DECAY) -> IsdPredictor:
        anchor_log = float(np.log(profile.isd_matrix[:, skip_range[0]]).mean())
        return IsdPredictor(
            anchor_layer=skip_range[0],
            last_layer=skip_range[1],
            decay=decay,
            anchor_log_isd=anchor_log,
        )

    def test_relative_errors_shape_and_magnitude(self):
        profile = synthetic_profile(noise=0.005)
        errors = isd_relative_errors(profile, self._predictor(profile))
        assert errors.shape == (profile.num_tokens, SKIP_RANGE[1] - SKIP_RANGE[0])
        assert float(np.mean(errors)) < 0.05

    def test_output_error_equals_isd_error(self):
        errors = np.array([[0.01, 0.02], [0.03, 0.04]])
        np.testing.assert_array_equal(output_relative_error(errors), errors)

    def test_accumulation_grows_with_layer_count(self):
        few = accumulated_logit_perturbation(np.full((4, 2), 0.02))
        many = accumulated_logit_perturbation(np.full((4, 10), 0.02))
        assert many > few

    def test_accumulation_attenuation_bounds(self):
        with pytest.raises(ValueError):
            accumulated_logit_perturbation(np.full(3, 0.01), attenuation=0.0)
        with pytest.raises(ValueError):
            accumulated_logit_perturbation(np.full(3, 0.01), attenuation=1.5)

    def test_flip_probability_monotone_in_perturbation(self):
        small = flip_probability(0.01, margin_mean=0.5, margin_std=0.25)
        large = flip_probability(1.0, margin_mean=0.5, margin_std=0.25)
        assert small < large
        assert 0.0 <= small <= 1.0

    def test_flip_probability_degenerate_margin(self):
        assert flip_probability(0.6, margin_mean=0.5, margin_std=0.0) == 1.0
        assert flip_probability(0.4, margin_mean=0.5, margin_std=0.0) == 0.0

    def test_propagate_report_fields(self):
        profile = synthetic_profile(noise=0.005)
        report = propagate(profile, self._predictor(profile))
        assert report.skip_range == SKIP_RANGE
        assert report.max_isd_relative_error >= report.mean_isd_relative_error
        assert 0.0 <= report.flip_probability <= 1.0
        assert len(report.as_row()) == len(ErrorPropagationReport.header())

    def test_deep_skip_range_safer_than_early(self):
        """Analytic counterpart of the Table II skip-range ablation."""
        # Early layers deviate strongly from the deep-layer log-linear trend.
        rng = np.random.default_rng(3)
        num_tokens, num_layers = 24, 64
        layers = np.arange(num_layers)[None, :]
        early_curve = 1.5 * np.exp(-layers / 6.0)  # fast non-linear decay early on
        log_isd = early_curve - 0.04 * layers + rng.normal(0, 0.01, size=(num_tokens, num_layers))
        log_isd += rng.normal(0, 0.2, size=(num_tokens, 1))
        profile = IsdProfile(
            layer_names=[f"l{i}" for i in range(num_layers)], isd_matrix=np.exp(log_isd)
        )
        reports = compare_skip_ranges(
            profile, {(10, 20): -0.04, (50, 60): -0.04}
        )
        assert reports[(10, 20)].mean_isd_relative_error > reports[(50, 60)].mean_isd_relative_error
        assert reports[(10, 20)].flip_probability >= reports[(50, 60)].flip_probability
