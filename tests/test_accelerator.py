"""Tests of the top-level HAAN accelerator model, its resources, power and workloads."""

import numpy as np
import pytest

from repro.core.config import HaanConfig, paper_config_for
from repro.core.predictor import IsdPredictor
from repro.hardware.accelerator import HaanAccelerator
from repro.hardware.configs import (
    HAAN_V1,
    HAAN_V2,
    HAAN_V3,
    TABLE3_CONFIGS,
    AcceleratorConfig,
    get_accelerator_config,
)
from repro.hardware.power import PowerModel
from repro.hardware.resources import DEVICE_TOTALS, ResourceModel
from repro.hardware.workload import NormalizationWorkload
from repro.llm.config import NormKind
from repro.llm.normalization import LayerNorm, RMSNorm
from repro.numerics.quantization import DataFormat


class TestConfigs:
    def test_named_configs_match_paper(self):
        assert HAAN_V1.widths == (128, 128)
        assert HAAN_V2.widths == (80, 160)
        assert HAAN_V3.widths == (64, 128)
        assert HAAN_V1.data_format is DataFormat.FP16
        assert HAAN_V1.clock_mhz == 100.0

    def test_lookup_and_overrides(self):
        cfg = get_accelerator_config("haan-v1", clock_mhz=200.0)
        assert cfg.clock_mhz == 200.0
        with pytest.raises(KeyError):
            get_accelerator_config("haan-v9")

    def test_cycle_time(self):
        assert HAAN_V1.cycle_time_ns == pytest.approx(10.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(name="bad", stats_width=0, norm_width=8)


class TestWorkload:
    def test_from_paper_model(self):
        workload = NormalizationWorkload.from_model_name(
            "opt-2.7b", seq_len=128, haan_config=paper_config_for("opt-2.7b")
        )
        assert workload.num_norm_layers == 65
        assert workload.num_skipped_layers == 7
        assert workload.embedding_dim == 2560
        assert workload.effective_stats_length == 1280
        assert workload.rows_per_layer == 128

    def test_without_optimizations(self):
        workload = NormalizationWorkload.from_model_name(
            "llama-7b", seq_len=64, haan_config=paper_config_for("llama-7b")
        )
        plain = workload.without_optimizations()
        assert plain.num_skipped_layers == 0
        assert plain.subsample_length is None
        assert plain.effective_stats_length == plain.embedding_dim

    def test_totals(self):
        workload = NormalizationWorkload(
            model_name="x", embedding_dim=100, num_norm_layers=10, seq_len=8, batch_size=2
        )
        assert workload.total_rows == 160
        assert workload.total_elements == 16000

    def test_validation(self):
        with pytest.raises(ValueError):
            NormalizationWorkload(model_name="x", embedding_dim=0, num_norm_layers=1, seq_len=1)
        with pytest.raises(ValueError):
            NormalizationWorkload(
                model_name="x", embedding_dim=8, num_norm_layers=1, seq_len=1, num_skipped_layers=5
            )


class TestFunctionalAccelerator:
    def test_layernorm_output_matches_reference(self, rng):
        accel = HaanAccelerator(AcceleratorConfig(name="t", stats_width=32, norm_width=32, data_format=DataFormat.FP32))
        rows = rng.normal(1.0, 2.0, size=(5, 96))
        gamma = 1.0 + 0.1 * rng.standard_normal(96)
        beta = 0.1 * rng.standard_normal(96)
        reference = LayerNorm(hidden_size=96, gamma=gamma, beta=beta)
        out = accel.normalize_rows(rows, gamma, beta, NormKind.LAYERNORM)
        np.testing.assert_allclose(out, reference(rows), atol=2e-2)

    def test_rmsnorm_output_matches_reference(self, rng):
        accel = HaanAccelerator(AcceleratorConfig(name="t", stats_width=32, norm_width=32, data_format=DataFormat.FP32))
        rows = rng.normal(size=(4, 64))
        gamma = np.ones(64)
        reference = RMSNorm(hidden_size=64, gamma=gamma)
        out = accel.normalize_rows(rows, gamma, np.zeros(64), NormKind.RMSNORM)
        np.testing.assert_allclose(out, reference(rows), atol=2e-2)

    def test_predicted_isd_bypasses_inverter(self, rng):
        accel = HaanAccelerator()
        rows = rng.normal(size=(3, 64))
        isd = np.full(3, 0.5)
        out = accel.normalize_rows(rows, np.ones(64), np.zeros(64), NormKind.LAYERNORM, predicted_isd=isd)
        expected = (rows - rows.mean(axis=1, keepdims=True)) * 0.5
        np.testing.assert_allclose(out, expected, atol=2e-2)

    def test_predicted_isd_shape_checked(self, rng):
        accel = HaanAccelerator()
        with pytest.raises(ValueError):
            accel.normalize_rows(rng.normal(size=(3, 64)), np.ones(64), np.zeros(64), predicted_isd=np.ones(2))

    def test_memory_traffic_recorded(self, rng):
        accel = HaanAccelerator()
        accel.normalize_rows(rng.normal(size=(2, 64)), np.ones(64), np.zeros(64))
        assert accel.memory.traffic.total_bytes > 0

    def test_load_predictor(self):
        accel = HaanAccelerator()
        accel.load_predictor(IsdPredictor(anchor_layer=1, last_layer=3, decay=-0.1, anchor_log_isd=0.0))
        assert accel.predictor_unit.configured


class TestLatencyModel:
    @pytest.fixture(scope="class")
    def gpt2_workload(self):
        config = paper_config_for("gpt2-1.5b").with_overrides(
            skip_range=(85, 95), subsample_length=800
        )
        return NormalizationWorkload.from_model_name("gpt2-1.5b", seq_len=128, haan_config=config)

    def test_latency_report_fields(self, gpt2_workload):
        report = HaanAccelerator(HAAN_V1).workload_latency(gpt2_workload)
        assert report.total_cycles > 0
        assert report.latency_seconds == pytest.approx(report.total_cycles * 1e-8)
        assert report.throughput_rows_per_second > 0
        assert report.bottleneck_stage in ("stats", "normalize", "inv-sqrt")

    def test_subsampling_reduces_latency_when_stats_bound(self):
        config = AcceleratorConfig(name="narrow", stats_width=32, norm_width=128)
        plain = NormalizationWorkload.from_model_name("gpt2-1.5b", seq_len=64)
        sub = NormalizationWorkload.from_model_name(
            "gpt2-1.5b", seq_len=64, haan_config=HaanConfig(subsample_length=400)
        )
        accel = HaanAccelerator(config)
        assert accel.workload_latency(sub).total_cycles < accel.workload_latency(plain).total_cycles

    def test_skipping_reduces_latency_when_stats_bound(self):
        config = AcceleratorConfig(name="narrow", stats_width=32, norm_width=128)
        plain = NormalizationWorkload.from_model_name("gpt2-1.5b", seq_len=64)
        skipped = NormalizationWorkload.from_model_name(
            "gpt2-1.5b", seq_len=64, haan_config=HaanConfig(skip_range=(60, 90), subsample_length=None)
        )
        accel = HaanAccelerator(config)
        assert accel.workload_latency(skipped).total_cycles < accel.workload_latency(plain).total_cycles

    def test_latency_scales_with_sequence_length(self, gpt2_workload):
        accel = HaanAccelerator(HAAN_V1)
        short = accel.workload_latency(gpt2_workload.with_seq_len(128)).latency_seconds
        long = accel.workload_latency(gpt2_workload.with_seq_len(1024)).latency_seconds
        assert long / short == pytest.approx(8.0, rel=0.05)

    def test_multiple_pipelines_reduce_latency(self, gpt2_workload):
        single = HaanAccelerator(HAAN_V1).workload_latency(gpt2_workload).latency_seconds
        dual = HaanAccelerator(HAAN_V1.with_overrides(num_pipelines=2)).workload_latency(gpt2_workload).latency_seconds
        assert dual < single


class TestResourceAndPowerModels:
    def test_table3_dsp_counts_for_fp_configs(self):
        model = ResourceModel()
        fp32_full = model.estimate(TABLE3_CONFIGS[0])
        assert fp32_full.dsp == 1536  # matches Table III exactly
        fp32_narrow = model.estimate(TABLE3_CONFIGS[1])
        assert 1000 <= fp32_narrow.dsp <= 1100

    def test_resources_fit_device(self):
        model = ResourceModel()
        for config in TABLE3_CONFIGS:
            estimate = model.estimate(config)
            assert estimate.fits_device()
            assert 0 < estimate.lut_fraction < 0.1
            assert estimate.dsp_fraction < 0.15

    def test_int8_uses_fewest_luts_per_lane(self):
        model = ResourceModel()
        fp16 = model.estimate(AcceleratorConfig(name="a", stats_width=128, norm_width=128, data_format=DataFormat.FP16))
        int8 = model.estimate(AcceleratorConfig(name="b", stats_width=128, norm_width=128, data_format=DataFormat.INT8))
        assert int8.lut < fp16.lut
        assert int8.dsp < fp16.dsp

    def test_table_row_formatting(self):
        row = ResourceModel().estimate(HAAN_V1).as_table_row()
        assert set(row) == {"LUT", "FF", "DSP"}
        assert row["DSP"].endswith("%")

    def test_power_ordering_by_format(self):
        model = PowerModel()
        powers = {}
        for fmt in DataFormat:
            config = AcceleratorConfig(name=fmt.value, stats_width=128, norm_width=128, data_format=fmt)
            powers[fmt] = model.estimate(config, occupancy=1.0).total_w
        assert powers[DataFormat.INT8] < powers[DataFormat.FP16] < powers[DataFormat.FP32]

    def test_fp32_to_fp16_power_ratio_near_paper(self):
        """Table III: FP32 consumes about 1.29x the power of FP16."""
        model = PowerModel()
        fp32 = model.estimate(AcceleratorConfig(name="a", stats_width=128, norm_width=128, data_format=DataFormat.FP32), 1.0)
        fp16 = model.estimate(AcceleratorConfig(name="b", stats_width=128, norm_width=128, data_format=DataFormat.FP16), 1.0)
        assert fp32.total_w / fp16.total_w == pytest.approx(1.3, abs=0.15)

    def test_power_grows_with_occupancy(self):
        model = PowerModel()
        low = model.estimate(HAAN_V1, occupancy=0.2).total_w
        high = model.estimate(HAAN_V1, occupancy=1.0).total_w
        assert high > low

    def test_power_grows_with_sequence_length(self):
        accel = HaanAccelerator(HAAN_V1)
        workload = NormalizationWorkload.from_model_name("gpt2-1.5b", seq_len=16)
        short = accel.power(workload).total_w
        long = accel.power(workload.with_seq_len(256)).total_w
        assert long >= short

    def test_energy_is_power_times_latency(self):
        accel = HaanAccelerator(HAAN_V1)
        workload = NormalizationWorkload.from_model_name("gpt2-1.5b", seq_len=32)
        energy = accel.energy(workload)
        report = accel.workload_latency(workload)
        power = accel.power(workload)
        assert energy == pytest.approx(report.latency_seconds * power.total_w)

    def test_occupancy_bounded(self):
        accel = HaanAccelerator(HAAN_V1)
        workload = NormalizationWorkload.from_model_name("gpt2-1.5b", seq_len=128)
        assert 0.0 < accel.occupancy(workload) <= 1.0

    def test_device_totals_sane(self):
        assert DEVICE_TOTALS["dsp"] > 9000
        assert DEVICE_TOTALS["lut"] > 1_000_000
