"""Tests of the synthetic weight generation."""

import numpy as np
import pytest

from repro.llm.config import get_model_config
from repro.llm.weights import (
    branch_variance_schedule,
    generate_model_weights,
    sinusoidal_positions,
)


class TestSchedules:
    def test_branch_variance_grows_geometrically(self):
        config = get_model_config("tiny")
        schedule = branch_variance_schedule(config)
        assert schedule.shape == (config.num_blocks,)
        ratios = schedule[1:] / schedule[:-1]
        np.testing.assert_allclose(ratios, config.residual_growth)

    def test_first_block_variance_matches_config(self):
        config = get_model_config("tiny")
        assert branch_variance_schedule(config)[0] == pytest.approx(config.initial_branch_variance)


class TestPositionalEmbeddings:
    def test_shape(self):
        table = sinusoidal_positions(32, 16)
        assert table.shape == (32, 16)

    def test_bounded(self):
        table = sinusoidal_positions(64, 24)
        assert np.max(np.abs(table)) <= 0.1 + 1e-12

    def test_positions_are_distinct(self):
        table = sinusoidal_positions(16, 32)
        assert not np.allclose(table[0], table[1])


class TestModelWeights:
    def test_deterministic_generation(self):
        config = get_model_config("tiny")
        a = generate_model_weights(config)
        b = generate_model_weights(config)
        np.testing.assert_array_equal(a.embedding, b.embedding)
        np.testing.assert_array_equal(
            a.blocks[0].attention.wq.weight, b.blocks[0].attention.wq.weight
        )

    def test_block_count_matches_config(self):
        config = get_model_config("tiny")
        weights = generate_model_weights(config)
        assert len(weights.blocks) == config.num_blocks

    def test_final_norm_presence_follows_config(self):
        with_final = generate_model_weights(get_model_config("tiny"))
        without_final = generate_model_weights(get_model_config("tiny-rms"))
        assert with_final.final_norm is not None
        assert without_final.final_norm is None

    def test_rmsnorm_beta_is_zero(self):
        weights = generate_model_weights(get_model_config("tiny-rms"))
        np.testing.assert_array_equal(weights.blocks[0].attn_norm.beta, 0.0)

    def test_layernorm_gamma_near_one(self):
        weights = generate_model_weights(get_model_config("tiny"))
        gamma = weights.blocks[0].attn_norm.gamma
        assert abs(float(gamma.mean()) - 1.0) < 0.1

    def test_deeper_blocks_have_larger_output_projections(self):
        """The depth-dependent branch scaling must be visible in the weights."""
        config = get_model_config("tiny")
        weights = generate_model_weights(config)
        first = np.std(weights.blocks[0].attention.wo.weight)
        last = np.std(weights.blocks[-1].attention.wo.weight)
        assert last > first

    def test_parameter_count_positive(self):
        weights = generate_model_weights(get_model_config("tiny"))
        assert weights.num_parameters > 10_000

    def test_weight_shapes(self):
        config = get_model_config("tiny")
        weights = generate_model_weights(config)
        hidden = config.sim_hidden_size
        block = weights.blocks[0]
        assert block.attention.wq.weight.shape == (hidden, hidden)
        assert block.mlp.w_in.weight.shape == (hidden, config.mlp_hidden_size)
        assert block.mlp.w_out.weight.shape == (config.mlp_hidden_size, hidden)
        assert weights.embedding.shape == (config.vocab_size, hidden)
