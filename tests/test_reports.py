"""Tests for the markdown reproduction-report generator."""

from __future__ import annotations

import pytest

from repro.eval.experiments import ExperimentResult, available_experiments
from repro.eval.reports import (
    PAPER_CLAIMS,
    ReportSection,
    ReproductionReport,
    build_report,
    compare_against_claims,
)


def fake_result(experiment_id: str = "fig2", title: str = "ISD profile") -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["layer", "mean log ISD"],
        rows=[[0, -0.1], [1, -0.2]],
    )


class TestReportSection:
    def test_markdown_contains_title_and_table(self):
        section = ReportSection(
            experiment_id="fig2",
            title="fig2 — ISD profile",
            measured="layer 0: -0.1",
            paper_claim="ISD decays with depth.",
            notes="synthetic substrate",
        )
        text = section.to_markdown()
        assert "## fig2 — ISD profile" in text
        assert "**Paper:**" in text
        assert "layer 0: -0.1" in text
        assert "*Notes:*" in text

    def test_markdown_without_claim_or_notes(self):
        section = ReportSection(experiment_id="x", title="x", measured="data")
        text = section.to_markdown()
        assert "**Paper:**" not in text
        assert "*Notes:*" not in text


class TestReproductionReport:
    def test_add_experiment_uses_known_claim(self):
        report = ReproductionReport()
        section = report.add_experiment(fake_result("fig2"))
        assert section.paper_claim == PAPER_CLAIMS["fig2"]
        assert report.experiment_ids == ["fig2"]

    def test_add_experiment_with_custom_claim(self):
        report = ReproductionReport()
        section = report.add_experiment(fake_result("fig2"), paper_claim="custom")
        assert section.paper_claim == "custom"

    def test_to_markdown_structure(self):
        report = ReproductionReport(title="My run")
        report.add_experiment(fake_result("fig2"))
        report.add_experiment(fake_result("table3", title="hardware cost"))
        text = report.to_markdown()
        assert text.startswith("# My run")
        assert "## Contents" in text
        assert text.index("fig2") < text.index("table3")

    def test_write_creates_file(self, tmp_path):
        report = ReproductionReport()
        report.add_experiment(fake_result())
        path = report.write(tmp_path / "report.md")
        assert path.exists()
        assert "# HAAN reproduction report" in path.read_text()

    def test_compare_against_claims(self):
        report = ReproductionReport()
        report.add_experiment(fake_result("fig2"))
        coverage = compare_against_claims(report)
        assert coverage["fig2"] is True
        assert coverage["table1"] is False

    def test_paper_claims_match_registry_ids(self):
        registered = set(available_experiments())
        assert set(PAPER_CLAIMS) <= registered


class TestBuildReport:
    def test_build_report_runs_cheap_experiments(self):
        report = build_report(["fig1b", "table3", "fig8a"])
        assert report.experiment_ids == ["fig1b", "table3", "fig8a"]
        text = report.to_markdown()
        for experiment_id in ("fig1b", "table3", "fig8a"):
            assert experiment_id in text

    def test_build_report_forwards_kwargs(self):
        report = build_report(["fig8b"], experiment_kwargs={"fig8b": {"seq_lens": (128,)}})
        section = report.sections[0]
        assert "128" in section.measured

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            build_report(["not-an-experiment"])
