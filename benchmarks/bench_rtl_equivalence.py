"""Ablation: RTL datapath equivalence and the cycle-level source of the speedup.

Runs the cycle-accurate RTL row processor (Figure 3 controller FSM plus the
Figure 4-6 datapath units) on a batch of embedding rows and checks that:

* the RTL output matches the reference LayerNorm within fixed-point
  tolerance (the datapath computes the right thing cycle by cycle), and
* the ISD-skipping and subsampling paths save cycles at the row level in
  the proportions the analytical pipeline model assumes, which is the
  mechanism behind the Figure 8/9 latency reductions.
"""

import numpy as np
from conftest import run_once

from repro.hardware.rtl import HaanRowProcessorRtl
from repro.hdl import Simulator


def _run_rows(num_rows: int = 6, embedding_dim: int = 96):
    rng = np.random.default_rng(2025)
    dut = HaanRowProcessorRtl(stats_width=16, norm_width=16)
    sim = Simulator(dut)
    gamma = np.ones(embedding_dim)
    beta = np.zeros(embedding_dim)
    records = []
    for _ in range(num_rows):
        row = rng.normal(0.0, 1.2, size=embedding_dim)
        reference = (row - row.mean()) / np.sqrt(row.var() + 1e-5)

        dut.load_row(row, gamma, beta)
        sim.run_until(lambda s: dut.finished, max_cycles=20_000)
        full = dut.result

        dut.load_row(row, gamma, beta, subsample_length=embedding_dim // 4)
        sim.run_until(lambda s: dut.finished, max_cycles=20_000)
        sub = dut.result

        dut.load_row(row, gamma, beta, predicted_isd=float(1.0 / np.sqrt(row.var() + 1e-5)))
        sim.run_until(lambda s: dut.finished, max_cycles=20_000)
        skip = dut.result

        records.append(
            {
                "error": float(np.max(np.abs(full.output - reference))),
                "full_cycles": full.cycles,
                "sub_cycles": sub.cycles,
                "skip_cycles": skip.cycles,
            }
        )
    return records


def test_rtl_row_equivalence(benchmark):
    records = run_once(benchmark, _run_rows)
    print()
    print(f"{'row':>4}  {'max error':>10}  {'full':>6}  {'subsampled':>10}  {'skipped':>8}")
    for index, record in enumerate(records):
        print(
            f"{index:>4}  {record['error']:10.2e}  {record['full_cycles']:>6}  "
            f"{record['sub_cycles']:>10}  {record['skip_cycles']:>8}"
        )

    assert all(record["error"] < 5e-2 for record in records)
    assert all(record["sub_cycles"] < record["full_cycles"] for record in records)
    assert all(record["skip_cycles"] < record["full_cycles"] for record in records)
