"""Fleet scaling: multi-client req/s against 1 / 2 / 4 NormServer replicas.

Acceptance target of the fleet tier (ISSUE 6): bulk requests/sec against
**4 replicas** must reach at least **2.5x** the single-replica rate on the
same host, and every fleet path must stay **bit-identical** to a single
server -- including with one replica SIGKILLed mid-run.

The workload is deliberately *capacity-bound*, not CPU-bound, because the
serving bottleneck this tier removes is admission capacity: a replica's
``normalize``/``normalize_bulk`` handler parks in the micro-batcher for up
to ``max_wait`` while occupying a worker slot, so one replica sustains
roughly ``workers / max_wait`` frames/sec regardless of core count.  Each
benchmark client drives its own calibration dataset, so the consistent-hash
ring spreads the keys across the fleet and N replicas multiply the
worker-window capacity -- which is exactly what the measurement shows, even
on a single-core host.

Results are written to a machine-readable ``BENCH_6.json``.  Runs
standalone::

    PYTHONPATH=src python benchmarks/bench_fleet.py --output BENCH_6.json

or under pytest (``python -m pytest bench_fleet.py -q -s``); the
environment knob ``HAAN_BENCH_FLEET_FRAMES`` scales the per-client frame
count.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api.client import NormClient
from repro.fleet.ring import HashRing
from repro.fleet.supervisor import FleetSupervisor
from repro.fleet.transport import FleetTransport

#: Acceptance floor asserted by this benchmark (and by the CI job).
FLEET_BULK_SPEEDUP_FLOOR = 2.5
REPLICA_COUNTS = (1, 2, 4)

#: Per-replica serving shape: few workers and a wide batcher window, so a
#: replica's frame capacity is ``workers / window`` (~50 frames/s here --
#: the knob the fleet multiplies) and sits well below the CPU ceiling of
#: the host; otherwise a single-core runner measures numpy, not routing.
WORKERS = 2
MAX_WAIT_MS = 40.0
MAX_BATCH = 64

CLIENTS = 8
BULK_ITEMS = 8
PIPELINE_DEPTH = 8

#: Each client drives its own calibration dataset; the artifact cache must
#: hold the whole working set or cold recalibration (not admission capacity)
#: dominates the single-replica baseline.
REGISTRY_CAPACITY = CLIENTS + 2


def _frames() -> int:
    try:
        return max(8, int(os.environ.get("HAAN_BENCH_FLEET_FRAMES", 20)))
    except ValueError:
        return 20


def _run_clients(worker, count: int = CLIENTS) -> float:
    """Run ``worker(index)`` on ``count`` threads; wall clock of the whole set."""
    barrier = threading.Barrier(count + 1)
    errors: List[BaseException] = []

    def _wrapped(index: int) -> None:
        try:
            barrier.wait()
            worker(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=_wrapped, args=(index,), daemon=True)
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def _balanced_datasets(addresses: Sequence[str], count: int = CLIENTS) -> List[str]:
    """Pick ``count`` dataset names the hash ring spreads evenly.

    The fleet routes a bulk frame by its ``(model, dataset, accelerator)``
    key; with only ``CLIENTS`` live keys the multinomial placement over
    ephemeral-port replica names is lumpy, and the wall clock of the run is
    set by whichever replica drew the most keys.  Real deployments carry
    enough keys for the ring to even out, so the benchmark recovers that
    regime deterministically: probe candidate names against the same ring
    the transport builds and keep ``count / len(addresses)`` per replica.
    """
    ring = HashRing(list(addresses))  # same vnodes default as FleetTransport
    quota = -(-count // len(addresses))  # ceil: always fillable
    owned: Dict[str, int] = {address: 0 for address in addresses}
    chosen: List[str] = []
    candidate = 0
    while len(chosen) < count:
        name = f"bench-{candidate}"
        candidate += 1
        owner = ring.primary(("tiny", name, None))
        if owned[owner] >= quota:
            continue
        owned[owner] += 1
        chosen.append(name)
    return chosen


def _measure_fleet(
    addresses: Sequence[str],
    datasets: Sequence[str],
    payload_sets: Dict[int, List[np.ndarray]],
    frames: int,
) -> Dict[str, float]:
    """Pipelined and bulk req/s of CLIENTS concurrent clients on one fleet."""
    clients = [
        NormClient(
            FleetTransport(list(addresses), timeout=120.0, hedge=False, scatter=False)
        )
        for _ in range(CLIENTS)
    ]
    try:
        for client in clients:
            client.wait_until_ready(timeout=60.0)

        def _warmup(index: int) -> None:
            # Calibrates every client's dataset on its ring owner and opens
            # the pooled connections before any timed section.
            clients[index].normalize_bulk(
                payload_sets[index][:BULK_ITEMS], "tiny", dataset=datasets[index]
            )

        def _pipelined(index: int) -> None:
            clients[index].normalize_many(
                payload_sets[index],
                "tiny",
                depth=PIPELINE_DEPTH,
                dataset=datasets[index],
            )

        def _bulk(index: int) -> None:
            payloads = payload_sets[index]
            client = clients[index]
            for offset in range(0, len(payloads), BULK_ITEMS):
                client.normalize_bulk(
                    payloads[offset : offset + BULK_ITEMS],
                    "tiny",
                    dataset=datasets[index],
                )

        _run_clients(_warmup)
        timings = {}
        total = CLIENTS * frames * BULK_ITEMS
        timings["pipelined_seconds"] = _run_clients(_pipelined)
        timings["bulk_seconds"] = _run_clients(_bulk)
        timings["pipelined_rps"] = total / timings["pipelined_seconds"]
        timings["bulk_rps"] = total / timings["bulk_seconds"]
        timings["bulk_frames_per_second"] = (
            CLIENTS * frames / timings["bulk_seconds"]
        )
        return timings
    finally:
        for client in clients:
            client.close()


def _check_parity(
    addresses: Sequence[str], dataset: str, supervisor: FleetSupervisor
) -> Dict[str, object]:
    """Bit-identity of scatter-gather vs the served spec, incl. a mid-run kill."""
    rng = np.random.default_rng(99)
    with NormClient.connect_fleet(list(addresses), timeout=60.0) as client:
        client.wait_until_ready(timeout=60.0)
        served = client.fetch_spec("tiny", dataset=dataset)
        from repro.engine.registry import build

        engine = build(
            served.spec, backend="reference", gamma=served.gamma, beta=served.beta
        )
        payloads = [
            rng.normal(size=(2, served.hidden_size)) for _ in range(4 * len(addresses))
        ]

        def _mismatches(results) -> int:
            count = 0
            for payload, result in zip(payloads, results):
                expected = engine.run(payload)[0]
                if not np.array_equal(result.output, expected):
                    count += 1
            return count

        before = _mismatches(
            client.normalize_bulk(payloads, "tiny", dataset=dataset)
        )
        killed = None
        if len(addresses) > 1:
            victim = supervisor.replica(0)
            killed = victim.address
            victim.kill()
        after = _mismatches(
            client.normalize_bulk(payloads, "tiny", dataset=dataset)
        )
        stats = client.transport.stats()
    return {
        "checked": 2 * len(payloads),
        "mismatches_before_kill": before,
        "mismatches_after_kill": after,
        "killed_replica": killed,
        "bit_identical": before == 0 and after == 0,
        "scatter_requests": stats["scatter_requests"],
        "scatter_retries": stats["scatter_retries"],
    }


def bench_fleet(frames: Optional[int] = None, seed: int = 0) -> Dict[str, object]:
    """Measure fleet req/s at 1/2/4 replicas plus the scatter parity check."""
    frames = frames or _frames()
    rng = np.random.default_rng(seed)
    # Tiny model, hidden size 64; payloads are shared across replica counts.
    payload_sets = {
        index: [rng.normal(size=(1, 64)) for _ in range(frames * BULK_ITEMS)]
        for index in range(CLIENTS)
    }

    scaling: Dict[str, Dict[str, float]] = {}
    parity: Dict[str, object] = {}
    for count in REPLICA_COUNTS:
        with FleetSupervisor(
            count,
            restart=False,
            model="tiny",
            workers=WORKERS,
            max_batch_size=MAX_BATCH,
            max_wait_ms=MAX_WAIT_MS,
            registry_capacity=REGISTRY_CAPACITY,
        ) as supervisor:
            addresses = supervisor.start()
            datasets = _balanced_datasets(addresses)
            scaling[str(count)] = _measure_fleet(addresses, datasets, payload_sets, frames)
            if count == max(REPLICA_COUNTS):
                parity = _check_parity(addresses, datasets[0], supervisor)

    one, top = scaling[str(REPLICA_COUNTS[0])], scaling[str(max(REPLICA_COUNTS))]
    return {
        "frames_per_client": frames,
        "clients": CLIENTS,
        "bulk_items": BULK_ITEMS,
        "pipeline_depth": PIPELINE_DEPTH,
        "replica_config": {
            "workers": WORKERS,
            "max_wait_ms": MAX_WAIT_MS,
            "max_batch_size": MAX_BATCH,
            "registry_capacity": REGISTRY_CAPACITY,
        },
        "scaling": scaling,
        "bulk_speedup": top["bulk_rps"] / one["bulk_rps"],
        "pipelined_speedup": top["pipelined_rps"] / one["pipelined_rps"],
        "parity": parity,
        "floor": FLEET_BULK_SPEEDUP_FLOOR,
    }


def _report(result: Dict[str, object]) -> None:
    print(
        f"clients: {result['clients']} x {result['frames_per_client']} frames "
        f"x {result['bulk_items']} items "
        f"(replica: {result['replica_config']['workers']} workers, "
        f"{result['replica_config']['max_wait_ms']}ms window)"
    )
    for count, row in result["scaling"].items():
        print(
            f"  {count} replica(s): bulk {row['bulk_rps']:8.0f} req/s "
            f"({row['bulk_frames_per_second']:6.0f} frames/s)   "
            f"pipelined {row['pipelined_rps']:8.0f} req/s"
        )
    print(
        f"bulk speedup ({max(REPLICA_COUNTS)} vs 1 replicas): "
        f"{result['bulk_speedup']:.2f}x  (floor {result['floor']:.1f}x)"
    )
    print(f"pipelined speedup: {result['pipelined_speedup']:.2f}x")
    parity = result["parity"]
    print(
        f"scatter parity: {parity['checked']} response(s), "
        f"bit-identical={parity['bit_identical']} "
        f"(killed {parity['killed_replica']} mid-run, "
        f"{parity['scatter_retries']} slice(s) retried)"
    )


def test_fleet_scaling():
    """Pytest entry point asserting the acceptance floors."""
    result = bench_fleet()
    print()
    _report(result)
    assert result["parity"]["bit_identical"], result["parity"]
    assert result["bulk_speedup"] >= FLEET_BULK_SPEEDUP_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write BENCH_6.json here")
    parser.add_argument("--frames", type=int, default=None)
    args = parser.parse_args(argv)

    result = bench_fleet(frames=args.frames)
    _report(result)
    payload = {
        "bench": "BENCH_6",
        "pr": 6,
        "description": "fleet scaling: multi-client req/s at 1/2/4 replicas",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "results": {"fleet": result},
    }
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    ok = (
        result["parity"]["bit_identical"]
        and result["bulk_speedup"] >= FLEET_BULK_SPEEDUP_FLOOR
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
