"""Tail latency: continuous cross-connection batching vs size+wait triggers.

Acceptance target of the asyncio-core tier (ISSUE 10): under the same
**mixed-size open-loop** load, the continuous scheduler's p99 latency must
beat the size+wait micro-batcher's p99 by at least **1.2x** -- with every
response bit-identical between the two schedulers and to the reference
backend.

The mechanism under test is the trigger discipline.  The micro-batcher
releases a size-bucketed batch when it *fills* (``max_batch_size``) or
*expires* (``max_wait``); mixed-size traffic fragments across power-of-two
row buckets, no single bucket fills, and nearly every request eats the
full ``max_wait`` -- the latency trigger IS the tail.  The continuous
scheduler drains pending requests every engine tick: a request waits only
for the batch in front of it, never for a timer, so the tail tracks
service time instead of the trigger clock.

Both sides run the *threaded* service (worker thread + real clock) over
identical deterministic payloads, paced on the sender's clock (open loop:
send times never slow down with the server).  Arrival is stamped by a
``ResponseFuture`` done-callback, so a response is timed the moment it
resolves, not when a poll loop gets around to it.

Results are written to a machine-readable ``BENCH_10.json``.  Runs
standalone::

    PYTHONPATH=src python benchmarks/bench_continuous_batching.py --output BENCH_10.json

or under pytest (``python -m pytest bench_continuous_batching.py -q -s``);
the environment knob ``HAAN_BENCH_CONTINUOUS_SECONDS`` scales the offered
load window.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.serving.batcher import BatcherConfig
from repro.serving.registry import CalibrationRegistry
from repro.serving.service import NormalizationService

#: Acceptance floor asserted by this benchmark (and by the CI job).
CONTINUOUS_P99_FLOOR = 1.2

#: The size+wait trigger under test: generous batches, a 5 ms latency
#: trigger -- a realistic "amortize the kernel" configuration.
MAX_BATCH = 32
MAX_WAIT_MS = 5.0

#: Mixed-size open-loop load: row counts spread across three power-of-two
#: size buckets, so no bucket fills fast enough to hit the size trigger.
ROW_MIX = (1, 3, 6, 12, 2, 5, 9, 1)
MODEL = "tiny"
OFFERED_RPS = 300.0


def _seconds() -> float:
    try:
        return max(0.5, float(os.environ.get("HAAN_BENCH_CONTINUOUS_SECONDS", 3.0)))
    except ValueError:
        return 3.0


def _drive(
    registry: CalibrationRegistry,
    scheduler: str,
    payloads: List[np.ndarray],
    rate: float,
) -> Dict[str, object]:
    """Open-loop paced submission against one threaded service."""
    service = NormalizationService(
        registry=CalibrationRegistry(loader=lambda m, d: registry.get(m, d)),
        config=BatcherConfig(
            max_batch_size=MAX_BATCH, max_wait=MAX_WAIT_MS / 1000.0
        ),
        scheduler=scheduler,
    )
    latencies = [0.0] * len(payloads)
    outputs: List[Optional[np.ndarray]] = [None] * len(payloads)
    try:
        # Warm the engine cache outside the timed window.
        service.normalize(payloads[0], MODEL)

        begin = time.perf_counter()
        futures = []
        for index, payload in enumerate(payloads):
            slot = begin + index / rate
            delay = slot - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            sent = time.perf_counter()
            future = service.submit(payload, MODEL)

            def _stamp(resolved, index=index, sent=sent):
                # Done-callback: stamps arrival the moment the scheduler
                # resolves the future (never blocks -- the bridge contract).
                latencies[index] = (time.perf_counter() - sent) * 1000.0
                outputs[index] = resolved.result(0).output

            future.add_done_callback(_stamp)
            futures.append(future)
        for future in futures:
            future.result(timeout=60.0)
        elapsed = time.perf_counter() - begin
        snapshot = service.batcher.snapshot() if hasattr(service.batcher, "snapshot") else {}
    finally:
        service.close()

    ordered = sorted(latencies)
    return {
        "scheduler": scheduler,
        "requests": len(payloads),
        "offered_rps": round(rate, 1),
        "elapsed_seconds": round(elapsed, 3),
        "p50_ms": round(float(np.percentile(ordered, 50)), 3),
        "p90_ms": round(float(np.percentile(ordered, 90)), 3),
        "p99_ms": round(float(np.percentile(ordered, 99)), 3),
        "max_ms": round(ordered[-1], 3),
        "outputs": outputs,
        "scheduler_snapshot": snapshot,
    }


def bench_continuous(seconds: Optional[float] = None, seed: int = 0) -> Dict[str, object]:
    """p99 of micro (size+wait) vs continuous (engine tick) scheduling."""
    seconds = seconds or _seconds()
    registry = CalibrationRegistry()
    artifact = registry.get(MODEL, "default")
    hidden = artifact.hidden_size
    golden = artifact.layer(0).engine_for("reference")

    rng = np.random.default_rng(seed)
    total = max(16, int(round(OFFERED_RPS * seconds)))
    payloads = [
        rng.normal(0.0, 1.0, size=(ROW_MIX[i % len(ROW_MIX)], hidden))
        for i in range(total)
    ]

    micro = _drive(registry, "micro", payloads, OFFERED_RPS)
    continuous = _drive(registry, "continuous", payloads, OFFERED_RPS)

    mismatches_between = 0
    mismatches_golden = 0
    for index, payload in enumerate(payloads):
        a = micro["outputs"][index]
        b = continuous["outputs"][index]
        if not np.array_equal(a, b):
            mismatches_between += 1
        expected = golden.run(np.asarray(payload, dtype=np.float64))[0]
        if not np.array_equal(b, expected.reshape(b.shape)):
            mismatches_golden += 1
    del micro["outputs"], continuous["outputs"]

    ratio = micro["p99_ms"] / max(continuous["p99_ms"], 1e-9)
    return {
        "seconds": seconds,
        "offered_rps": OFFERED_RPS,
        "row_mix": list(ROW_MIX),
        "config": {"max_batch_size": MAX_BATCH, "max_wait_ms": MAX_WAIT_MS},
        "micro": micro,
        "continuous": continuous,
        "p99_ratio": round(ratio, 2),
        "floor": CONTINUOUS_P99_FLOOR,
        "mismatches_between_schedulers": mismatches_between,
        "mismatches_vs_reference": mismatches_golden,
    }


def _healthy(result: Dict[str, object]) -> bool:
    return (
        result["p99_ratio"] >= CONTINUOUS_P99_FLOOR
        and result["mismatches_between_schedulers"] == 0
        and result["mismatches_vs_reference"] == 0
    )


def _report(result: Dict[str, object]) -> None:
    print(
        f"mixed-size open loop at {result['offered_rps']} req/s for "
        f"{result['seconds']}s (row mix {result['row_mix']}, "
        f"max_wait {result['config']['max_wait_ms']} ms)"
    )
    for label in ("micro", "continuous"):
        row = result[label]
        print(
            f"  {label:10s}: p50 {row['p50_ms']:7.3f} ms  "
            f"p90 {row['p90_ms']:7.3f} ms  p99 {row['p99_ms']:7.3f} ms  "
            f"max {row['max_ms']:7.3f} ms"
        )
    print(
        f"p99 ratio (micro/continuous): {result['p99_ratio']:.2f}x  "
        f"(floor {result['floor']:.1f}x)  "
        f"bit-identical={result['mismatches_between_schedulers'] == 0 and result['mismatches_vs_reference'] == 0}"
    )


def test_continuous_batching_p99():
    """Pytest entry point asserting the acceptance floor."""
    result = bench_continuous()
    print()
    _report(result)
    assert result["mismatches_between_schedulers"] == 0
    assert result["mismatches_vs_reference"] == 0
    assert result["p99_ratio"] >= CONTINUOUS_P99_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write BENCH_10.json here")
    parser.add_argument("--seconds", type=float, default=None)
    args = parser.parse_args(argv)

    result = bench_continuous(seconds=args.seconds)
    _report(result)
    payload = {
        "bench": "BENCH_10",
        "pr": 10,
        "description": "continuous cross-connection batching vs size+wait triggers: p99 under mixed-size open-loop load",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "results": {"continuous_batching": result},
    }
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0 if _healthy(result) else 1


if __name__ == "__main__":
    sys.exit(main())
