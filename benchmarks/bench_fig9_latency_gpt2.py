"""Figure 9: normalized latency on GPT2-1.5B (HAAN-v1/v2 vs GPU, DFX, SOLE, MHAA)."""

from conftest import run_once

from repro.eval.experiments import run_fig9


def test_fig9_latency_gpt2(benchmark):
    result = run_once(benchmark, run_fig9, seq_lens=(128, 256, 512, 1024))
    print()
    print(result.formatted())
    ratios = result.metadata["ratios"]
    for seq in (128, 256, 512, 1024):
        # Paper averages: ~11.7x vs DFX, ~10.5x vs GPU, ~1.25x vs SOLE,
        # ~2.42x vs MHAA (HAAN-v1 as the reference).
        assert 9.0 < ratios["DFX"][seq] < 14.0
        assert 8.0 < ratios["GPU"][seq] < 13.0
        assert 1.1 < ratios["SOLE"][seq] < 1.8
        assert 2.0 < ratios["MHAA"][seq] < 3.0
