"""Noisy-neighbor isolation and exact metering under per-tenant quotas.

Acceptance targets of the tenancy tier (ISSUE 9), on one ``NormServer``
with a :class:`~repro.tenancy.TenancyController` attached:

* a **noisy** tenant flooding open-loop at **4x** its request quota must
  not degrade a **within-quota** tenant's p99 latency by more than
  **1.5x** versus running alone -- the quota gate sheds the flood in the
  reader thread *before* decode/admission, so the noisy tenant never
  occupies worker slots beyond its paid rate;
* every accepted response stays **bit-identical** to the locally rebuilt
  reference engine (tenancy is pure control plane);
* the per-tenant ledger's modelled cycles/energy must sum **exactly** --
  integer cycles, rational energy -- to the simulated backend's own
  aggregate ``NormCostRecord`` totals: metering invents or loses nothing.

The server shape is capacity-bound, not CPU-bound (same regime as
``bench_overload.py``): a ``normalize`` parks in the micro-batcher for up
to ``max_wait`` while occupying a worker slot, so capacity is roughly
``workers / max_wait`` frames/sec and a single-core CI runner measures
quota policy, not numpy.

Results are written to a machine-readable ``BENCH_9.json``.  Runs
standalone::

    PYTHONPATH=src python benchmarks/bench_tenancy.py --output BENCH_9.json

or under pytest (``python -m pytest bench_tenancy.py -q -s``); the
environment knob ``HAAN_BENCH_TENANCY_SECONDS`` scales each traffic
window.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import queue
import sys
import threading
import time
from fractions import Fraction
from typing import Dict, List, Optional

import numpy as np

from repro.api.client import NormClient
from repro.api.envelopes import ApiError, QuotaExceededError
from repro.api.retry import RetryPolicy
from repro.api.server import NormServer
from repro.serving.batcher import BatcherConfig
from repro.serving.registry import CalibrationRegistry
from repro.serving.service import NormalizationService
from repro.tenancy import QuotaPolicy, TenancyController, TenantDirectory, TenantSpec

#: Acceptance ceiling: contended p99 over alone p99 for the steady tenant.
ISOLATION_P99_CEILING = 1.5

#: Noise floor for the alone p99 (sub-millisecond baselines would make the
#: ratio a coin flip on shared CI runners).
P99_FLOOR_SECONDS = 1e-3

#: Capacity-bound server shape: ~``WORKERS / MAX_WAIT`` frames/sec.
WORKERS = 4
MAX_WAIT_MS = 20.0
MAX_BATCH = 64
CAPACITY_RPS = WORKERS / (MAX_WAIT_MS / 1000.0)

#: The steady tenant stays well inside its quota and the server capacity.
STEADY_RPS = 20.0
STEADY_QUOTA_RPS = 50.0

#: The noisy tenant's quota, and the open-loop flood multiple (the ISSUE's
#: "4x" point).  Admitted load tops out at its quota, so steady + noisy
#: admitted stays under capacity -- by quota policy, not by luck.
NOISY_QUOTA_RPS = 20.0
NOISY_FLOOD_FACTOR = 4.0

MODEL = "tiny"
ROWS = 2
BACKEND = "simulated"
ACCELERATOR = "haan-v1"

STEADY_TOKEN = "bench-steady-token"
NOISY_TOKEN = "bench-noisy-token"


def _seconds() -> float:
    try:
        return max(1.0, float(os.environ.get("HAAN_BENCH_TENANCY_SECONDS", 3.0)))
    except ValueError:
        return 3.0


def _tenancy() -> TenancyController:
    directory = TenantDirectory(
        tenants=[
            TenantSpec(name="steady", token=STEADY_TOKEN, tier="steady"),
            TenantSpec(name="noisy", token=NOISY_TOKEN, tier="noisy"),
        ],
        tiers={
            "steady": QuotaPolicy(requests_per_s=STEADY_QUOTA_RPS, burst_seconds=1.0),
            "noisy": QuotaPolicy(requests_per_s=NOISY_QUOTA_RPS, burst_seconds=1.0),
        },
    )
    return TenancyController(directory=directory)


def _drive(
    client: NormClient,
    payloads: List[np.ndarray],
    rate: float,
    golden,
) -> Dict[str, object]:
    """Open-loop paced traffic; per-response latency stamped at arrival."""
    latencies: List[float] = []
    shed = 0
    missing_retry_after = 0
    mismatches = 0
    other: List[str] = []
    pending: "queue.Queue" = queue.Queue()

    def _drain() -> None:
        nonlocal shed, missing_retry_after, mismatches
        while True:
            item = pending.get()
            if item is None:
                return
            index, sent, handle = item
            try:
                result = handle.result()
            except QuotaExceededError as error:
                shed += 1
                if error.retry_after_ms is None:
                    missing_retry_after += 1
                continue
            except ApiError as error:
                other.append(f"[{error.code}] {error}")
                continue
            latencies.append(time.perf_counter() - sent)
            expected = golden.run(np.asarray(payloads[index], dtype=np.float64))[0]
            if not np.array_equal(result.output, expected.reshape(result.output.shape)):
                mismatches += 1

    drainer = threading.Thread(target=_drain, daemon=True)
    drainer.start()
    begin = time.perf_counter()
    for index, payload in enumerate(payloads):
        slot = begin + index / rate
        delay = slot - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        sent = time.perf_counter()
        handle = client.submit_normalize(
            payload, MODEL, backend=BACKEND, accelerator=ACCELERATOR
        )
        pending.put((index, sent, handle))
    pending.put(None)
    drainer.join()
    elapsed = time.perf_counter() - begin
    return {
        "offered": len(payloads),
        "offered_rps": round(rate, 1),
        "served": len(latencies),
        "shed": shed,
        "elapsed_seconds": round(elapsed, 3),
        "p50_ms": round(1e3 * float(np.percentile(latencies, 50)), 3) if latencies else None,
        "p99_ms": round(1e3 * float(np.percentile(latencies, 99)), 3) if latencies else None,
        "missing_retry_after": missing_retry_after,
        "golden_mismatches": mismatches,
        "other_failures": other,
        "_latencies": latencies,
    }


def bench_tenancy(seconds: Optional[float] = None, seed: int = 0) -> Dict[str, object]:
    """Steady-tenant p99 alone vs under a 4x-quota noisy flood, plus metering."""
    seconds = seconds or _seconds()
    rng = np.random.default_rng(seed)
    registry = CalibrationRegistry()
    artifact = registry.get(MODEL, "default")
    golden = artifact.layer(0).engine_for("reference")
    tenancy = _tenancy()

    def _payloads(count: int) -> List[np.ndarray]:
        return [
            rng.normal(0.0, 1.0, size=(ROWS, artifact.hidden_size))
            for _ in range(max(8, count))
        ]

    service = NormalizationService(
        registry=registry,
        config=BatcherConfig(max_batch_size=MAX_BATCH, max_wait=MAX_WAIT_MS / 1000.0),
    )
    server = NormServer(
        service,
        workers=WORKERS,
        max_inflight=4096,
        max_queue_depth=10**6,  # isolation must come from the quota, not admission
        tenancy=tenancy,
    ).start()
    try:
        retry_off = RetryPolicy(max_attempts=1)
        with NormClient.connect(
            server.host, server.port, timeout=120.0,
            token=STEADY_TOKEN, retry_policy=retry_off,
        ) as steady_client, NormClient.connect(
            server.host, server.port, timeout=120.0,
            token=NOISY_TOKEN, retry_policy=retry_off,
        ) as noisy_client:
            steady_client.wait_until_ready(timeout=30.0)
            # Warm the path (connections, engine cache, calibration)
            # outside any timed window.
            steady_client.normalize(
                _payloads(1)[0], MODEL, backend=BACKEND, accelerator=ACCELERATOR
            )

            alone = _drive(
                steady_client,
                _payloads(int(STEADY_RPS * seconds)),
                STEADY_RPS,
                golden,
            )

            noisy_rate = NOISY_QUOTA_RPS * NOISY_FLOOD_FACTOR
            noisy_result: Dict[str, object] = {}

            def _flood() -> None:
                noisy_result.update(
                    _drive(
                        noisy_client,
                        _payloads(int(noisy_rate * seconds)),
                        noisy_rate,
                        golden,
                    )
                )

            flood = threading.Thread(target=_flood, daemon=True)
            flood.start()
            contended = _drive(
                steady_client,
                _payloads(int(STEADY_RPS * seconds)),
                STEADY_RPS,
                golden,
            )
            flood.join()
    finally:
        server.close()
        service.close()

    # -- exact metering: ledger totals vs the engine's own records ---------
    backend = artifact.layer(0).engine_for(BACKEND, accelerator=ACCELERATOR).backend
    ledger = tenancy.ledger
    ledger_cycles = 0
    ledger_energy = Fraction(0)
    for tenant in ledger.tenants():
        cycles, energy = ledger.exact_totals(tenant)
        ledger_cycles += cycles
        ledger_energy += energy
    engine_cycles = backend.total_cycles()
    engine_energy = sum(
        (Fraction(record.energy_nj) for record in backend.records), Fraction(0)
    )
    records_retained = len(backend.records) == backend.batches_recorded

    p99_alone = max(float(np.percentile(alone["_latencies"], 99)), P99_FLOOR_SECONDS)
    p99_contended = max(
        float(np.percentile(contended["_latencies"], 99)), P99_FLOOR_SECONDS
    )
    for row in (alone, contended, noisy_result):
        row.pop("_latencies", None)

    snapshot = tenancy.snapshot()
    return {
        "capacity_rps": round(CAPACITY_RPS, 1),
        "seconds": seconds,
        "server": {
            "workers": WORKERS,
            "max_wait_ms": MAX_WAIT_MS,
            "max_batch_size": MAX_BATCH,
        },
        "quotas": {
            "steady_rps": STEADY_QUOTA_RPS,
            "noisy_rps": NOISY_QUOTA_RPS,
            "noisy_flood_factor": NOISY_FLOOD_FACTOR,
        },
        "steady_alone": alone,
        "steady_contended": contended,
        "noisy_flood": noisy_result,
        "p99_ratio": round(p99_contended / p99_alone, 3),
        "p99_ceiling": ISOLATION_P99_CEILING,
        "ledger": {
            "per_tenant": snapshot["ledger"],
            "cycles_total": ledger_cycles,
            "engine_cycles_total": engine_cycles,
            "cycles_exact": ledger_cycles == engine_cycles,
            "energy_exact": records_retained and ledger_energy == engine_energy,
            "energy_nj_total": float(ledger_energy),
        },
        "noisy_shed_per_resource": snapshot["quotas"]
        .get("noisy", {})
        .get("shed", {}),
    }


def _healthy(result: Dict[str, object]) -> bool:
    return (
        result["p99_ratio"] <= ISOLATION_P99_CEILING
        and result["steady_alone"]["golden_mismatches"] == 0
        and result["steady_contended"]["golden_mismatches"] == 0
        and result["noisy_flood"]["golden_mismatches"] == 0
        and result["steady_alone"]["shed"] == 0
        and result["steady_contended"]["shed"] == 0
        and result["noisy_flood"]["shed"] > 0
        and result["noisy_flood"]["missing_retry_after"] == 0
        and result["ledger"]["cycles_exact"]
        and result["ledger"]["energy_exact"]
    )


def _report(result: Dict[str, object]) -> None:
    print(
        f"steady tenant at {STEADY_RPS} req/s (quota {STEADY_QUOTA_RPS}); noisy "
        f"tenant flooding {result['noisy_flood'].get('offered_rps')} req/s "
        f"({NOISY_FLOOD_FACTOR}x its {NOISY_QUOTA_RPS} req/s quota); server "
        f"capacity ~{result['capacity_rps']} req/s"
    )
    for label in ("steady_alone", "steady_contended", "noisy_flood"):
        row = result[label]
        print(
            f"  {label.replace('_', ' '):16s}: p99 {row['p99_ms']} ms  "
            f"({row['served']} served / {row['shed']} shed of {row['offered']} "
            f"in {row['elapsed_seconds']}s)"
        )
    print(
        f"steady p99 ratio contended/alone: {result['p99_ratio']}x "
        f"(ceiling {result['p99_ceiling']}x)"
    )
    ledger = result["ledger"]
    print(
        f"metering: ledger {ledger['cycles_total']} cycles vs engine "
        f"{ledger['engine_cycles_total']} "
        f"(exact={ledger['cycles_exact']}); energy exact={ledger['energy_exact']} "
        f"({ledger['energy_nj_total']:.1f} nJ)"
    )


def test_tenant_isolation():
    """Pytest entry point asserting the acceptance targets."""
    result = bench_tenancy()
    print()
    _report(result)
    assert result["noisy_flood"]["shed"] > 0, result["noisy_flood"]
    assert result["steady_contended"]["shed"] == 0, result["steady_contended"]
    assert result["steady_alone"]["golden_mismatches"] == 0
    assert result["steady_contended"]["golden_mismatches"] == 0
    assert result["ledger"]["cycles_exact"], result["ledger"]
    assert result["ledger"]["energy_exact"], result["ledger"]
    assert result["p99_ratio"] <= ISOLATION_P99_CEILING, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write BENCH_9.json here")
    parser.add_argument("--seconds", type=float, default=None)
    args = parser.parse_args(argv)

    result = bench_tenancy(seconds=args.seconds)
    _report(result)
    payload = {
        "bench": "BENCH_9",
        "pr": 9,
        "description": "noisy-neighbor isolation under per-tenant quotas + exact cost metering",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "results": {"tenancy": result},
    }
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0 if _healthy(result) else 1


if __name__ == "__main__":
    sys.exit(main())
