"""Serving throughput: micro-batched requests/sec vs a per-request loop.

Acceptance target of the serving subsystem: the micro-batched path must
sustain at least 3x the requests/sec of the per-request loop at a
micro-batch size of 32.  The batched side runs through the full inline
:class:`~repro.serving.service.NormalizationService` (queueing, coalescing,
response splitting, telemetry), so the speedup is end-to-end, not
kernel-only.
"""

from conftest import run_once

from repro.eval.experiments import run_serving_throughput

BATCH_SIZES = (1, 8, 32, 128)


def test_serving_throughput(benchmark, serving_requests):
    result = run_once(
        benchmark,
        run_serving_throughput,
        model_name="tiny",
        batch_sizes=BATCH_SIZES,
        requests=serving_requests,
        repeats=5,
    )
    print()
    print(result.formatted())
    speedups = result.metadata["speedup_by_batch"]
    print(f"speedup at batch 32: {speedups[32]:.2f}x")
    # Batching must amortize per-request overhead; at a micro-batch of 32
    # the acceptance floor is 3x the per-request loop.
    assert speedups[32] >= 3.0
    # Larger batches must not regress below the 32-request point's floor.
    assert speedups[128] >= speedups[32] * 0.8
