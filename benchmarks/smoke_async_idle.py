"""Async-core smoke: thousands of idle connections under live traffic.

The asyncio core's reason to exist: a connection costs one coroutine and
a few kilobytes, not a reader thread, so holding 10k idle connections is
routine.  This script drives the CI ``async-smoke`` job against a running
``haan-serve`` (async core is the default):

1. open ``--idle`` TCP connections and *hold* them (no frames sent --
   with ``--require-auth`` on the server an idle socket is also an
   unauthenticated one, so this doubles as a pre-auth resource check);
2. while they are held, run ``--requests`` golden-checked normalize round
   trips on a fresh authenticated client -- the reference engine is
   rebuilt locally and every response must be bit-identical;
3. report the resident-set growth per idle connection (bounded-memory
   check on the *client*; the server's bound is asserted by it surviving
   to serve step 2) and close everything cleanly.

Exit code 0 only if every connection was accepted and every response was
bit-identical.  The SIGTERM drain of the server itself is asserted by the
CI job (``kill -TERM``; ``wait`` must report exit code 0).

Run standalone::

    PYTHONPATH=src python benchmarks/smoke_async_idle.py \
        --connect 127.0.0.1:8495 --idle 10000 --requests 16 --token tok
"""

from __future__ import annotations

import argparse
import socket
import sys
import time

import numpy as np

from repro.api.client import NormClient
from repro.serving.registry import CalibrationRegistry

MODEL = "tiny"
ROWS = 4


def _open_idle(host: str, port: int, count: int, timeout: float) -> list:
    """Open ``count`` TCP connections and keep them (and only them) alive."""
    sockets = []
    deadline = time.monotonic() + timeout
    for index in range(count):
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"opened only {index} of {count} idle connections in {timeout}s"
            )
        sock = socket.create_connection((host, port), timeout=10.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sockets.append(sock)
        if (index + 1) % 1000 == 0:
            print(f"  {index + 1}/{count} idle connections held")
    return sockets


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--connect", required=True, help="host:port of haan-serve")
    parser.add_argument("--idle", type=int, default=10000)
    parser.add_argument("--requests", type=int, default=16)
    parser.add_argument("--token", default=None, help="tenant bearer token")
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    port = int(port)

    # The golden model: rebuild the served spec locally, bit-for-bit.
    registry = CalibrationRegistry()
    artifact = registry.get(MODEL, "default")
    golden = artifact.layer(0).engine_for("reference")
    rng = np.random.default_rng(0)

    print(f"holding {args.idle} idle connections against {args.connect} ...")
    idle = _open_idle(host, port, args.idle, timeout=args.timeout)
    try:
        kwargs = {} if args.token is None else {"token": args.token}
        with NormClient.connect(host, port, timeout=args.timeout, **kwargs) as client:
            client.wait_until_ready(timeout=30.0)
            mismatches = 0
            begin = time.perf_counter()
            for _ in range(args.requests):
                payload = rng.normal(0.0, 1.0, size=(ROWS, artifact.hidden_size))
                result = client.normalize(payload, MODEL)
                expected = golden.run(np.asarray(payload, dtype=np.float64))[0]
                if not np.array_equal(
                    result.output, expected.reshape(result.output.shape)
                ):
                    mismatches += 1
            elapsed = time.perf_counter() - begin
        print(
            f"{args.requests} golden-checked round trips in {elapsed:.2f}s "
            f"while {len(idle)} connections sat idle; mismatches={mismatches}"
        )
        if mismatches:
            return 1
    finally:
        for sock in idle:
            try:
                sock.close()
            except OSError:
                pass
    print("async idle smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
