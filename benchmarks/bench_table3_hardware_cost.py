"""Table III: FPGA resource and power cost of the HAAN accelerator."""

from conftest import run_once

from repro.eval.experiments import run_table3


def test_table3_hardware_cost(benchmark):
    result = run_once(benchmark, run_table3)
    print()
    print(result.formatted())
    estimates = result.metadata["estimates"]
    # Shape claims of Table III / Section V-B.1:
    # 1. FP32 consumes about 1.29x the power of FP16 at the same widths.
    fp32 = estimates["fp32-128-128"]["power"].total_w
    fp16 = estimates["fp16-128-128"]["power"].total_w
    assert 1.15 <= fp32 / fp16 <= 1.45
    # 2. INT8 achieves the lowest power at the balanced widths.
    int8 = estimates["int8-256-256"]["power"].total_w
    assert int8 < fp16 < fp32
    # 3. Reducing p_d (subsampling configs) frees DSPs.
    assert estimates["fp16-32-128"]["resources"].dsp < estimates["fp16-128-128"]["resources"].dsp
    # 4. Every build fits comfortably in the Alveo U280.
    for entry in estimates.values():
        assert entry["resources"].fits_device()
