"""Figure 1(b): GPU runtime breakdown of GPT-2 and OPT, before/after optimization."""

from conftest import run_once

from repro.eval.experiments import run_fig1b


def test_fig1b_latency_breakdown(benchmark):
    result = run_once(benchmark, run_fig1b, seq_len=2048)
    print()
    print(result.formatted())
    # Headline claim: normalization is ~16% of runtime originally and the
    # dominant non-matmul cost (>25-33%) after FlashAttention + FP8.
    for model in ("gpt2-117m", "opt-2.7b"):
        before, after = result.metadata[f"{model}_norm_share"]
        assert 0.10 <= before <= 0.20
        assert after > before
        assert after > 0.25
