"""Figure 2: ISD values across the normalization layers of the LLaMA-7B analogue."""

from conftest import run_once

from repro.eval.experiments import run_fig2


def test_fig2_isd_profile(benchmark):
    result = run_once(benchmark, run_fig2, model_name="llama-7b", num_documents=12, max_seq_len=32)
    profile = result.metadata["profile"]
    log_isd = profile.mean_log_isd()
    print()
    print(f"layers={result.metadata['num_layers']}  "
          f"log ISD first/last = {log_isd[0]:.3f} / {log_isd[-1]:.3f}  "
          f"tail correlation = {result.metadata['tail_correlation']:.4f}")
    # The paper's two observations: ISD decays with depth, and log(ISD) is
    # strongly linear (Pearson close to -1) over the deeper layers.
    assert result.metadata["num_layers"] == 64
    assert result.metadata["overall_decay"] < -0.5
    assert result.metadata["tail_correlation"] < -0.95
