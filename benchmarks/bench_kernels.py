"""Kernel speedups: vectorized numerics vs the scalar golden models.

Measures and **asserts** the acceptance floors of the kernel layer:

* minifloat codec (encode + decode) >= 20x over the scalar reference on
  1e6 elements,
* fixed-point multiply >= 10x over the Python-``int`` reference,
* fused batched HAAN normalization (stack + quantize + stats + affine with
  a reused :class:`~repro.numerics.kernels.KernelWorkspace`) >= 1.5x over
  the PR-1 unfused pipeline (`np.concatenate` +
  ``forward_batched_reference``).

The scalar references are interpreter-bound, so they are timed on a
smaller sample and scaled linearly to the full element count (they are
strict per-element loops; per-element cost is size-independent).  The
vectorized kernels are always timed at full size.

Results are written to a machine-readable ``BENCH_2.json`` (see the README
"Performance" section for the schema) so the perf trajectory is tracked
across PRs.  Runs standalone::

    PYTHONPATH=src python benchmarks/bench_kernels.py --output BENCH_2.json

or under pytest (``python -m pytest bench_kernels.py -q -s``); the
environment knob ``HAAN_BENCH_KERNEL_ELEMS`` scales the element count.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.haan_norm import HaanNormalization
from repro.core.subsampling import SubsampleSettings
from repro.llm.normalization import LayerNorm
from repro.numerics import kernels
from repro.numerics.fixedpoint import FixedPointFormat, FixedPointValue
from repro.numerics.minifloat import E4M3
from repro.numerics.quantization import DataFormat

#: Acceptance floors asserted by this benchmark (and by the CI job).
MINIFLOAT_FLOOR = 20.0
FIXED_MULTIPLY_FLOOR = 10.0
FUSED_NORM_FLOOR = 1.5


def _elements() -> int:
    try:
        return max(10_000, int(os.environ.get("HAAN_BENCH_KERNEL_ELEMS", 1_000_000)))
    except ValueError:
        return 1_000_000


def best_of(repeats: int, fn: Callable[[], None]) -> float:
    """Fastest wall-clock run of ``fn`` (one warmup absorbs lazy setup)."""
    fn()
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def bench_minifloat_codec(elements: int, repeats: int = 5) -> Dict[str, float]:
    """Encode+decode throughput of the vectorized codec vs the scalar loop."""
    rng = np.random.default_rng(0)
    values = np.concatenate(
        [
            rng.normal(0.0, 100.0, elements // 2),
            rng.normal(0.0, E4M3.min_normal * 4, elements - elements // 2),
        ]
    )
    codes = E4M3.encode(values)

    fast_seconds = best_of(repeats, lambda: E4M3.decode(E4M3.encode(values)))

    # The scalar loop is strictly per-element; time a sample and scale.
    sample = values[: min(elements, 40_000)]
    sample_codes = codes[: sample.size]
    reference_sample = best_of(
        2, lambda: (E4M3.encode_reference(sample), E4M3.decode_reference(sample_codes))
    )
    reference_seconds = reference_sample * (elements / sample.size)

    return {
        "elements": elements,
        "vectorized_seconds": fast_seconds,
        "reference_seconds": reference_seconds,
        "reference_sample_elements": int(sample.size),
        "speedup": reference_seconds / fast_seconds,
        "floor": MINIFLOAT_FLOOR,
    }


def bench_fixed_multiply(elements: int, repeats: int = 5) -> Dict[str, float]:
    """Fixed-point multiply throughput: int64 kernel vs Python-int loop."""
    rng = np.random.default_rng(1)
    fmt = FixedPointFormat.accumulator()  # Q16.16 * Q16.16 -> Q16.16
    a = FixedPointValue(fmt, rng.integers(fmt.min_code, fmt.max_code + 1, elements))
    b = FixedPointValue(fmt, rng.integers(fmt.min_code, fmt.max_code + 1, elements))

    fast_seconds = best_of(repeats, lambda: a.multiply(b))

    sample = min(elements, 40_000)
    a_small = FixedPointValue(fmt, a.codes[:sample])
    b_small = FixedPointValue(fmt, b.codes[:sample])
    reference_sample = best_of(2, lambda: a_small.multiply_reference(b_small))
    reference_seconds = reference_sample * (elements / sample)

    return {
        "elements": elements,
        "vectorized_seconds": fast_seconds,
        "reference_seconds": reference_seconds,
        "reference_sample_elements": sample,
        "speedup": reference_seconds / fast_seconds,
        "floor": FIXED_MULTIPLY_FLOOR,
    }


def bench_fused_normalization(
    rows_per_request: int = 8,
    requests: int = 128,
    hidden: int = 2048,
    repeats: int = 20,
) -> Dict[str, float]:
    """Fused serving normalization vs the PR-1 unfused batched pipeline.

    Both sides do the full per-batch work of the serving executor: stack
    the request payloads, quantize per segment, estimate subsampled
    statistics and apply the affine transform.  The PR-1 path concatenates
    and runs ``forward_batched_reference`` (fresh intermediates per batch);
    the fused path stages into a reused workspace and runs the single-pass
    kernel.  Outputs are asserted bit-identical before timing.
    """
    rng = np.random.default_rng(2)
    base = LayerNorm(hidden_size=hidden, layer_index=0, name="bench.norm")
    base.load_affine(rng.normal(1.0, 0.1, hidden), rng.normal(0.0, 0.1, hidden))
    layer = HaanNormalization(
        base,
        subsample=SubsampleSettings(length=64),
        data_format=DataFormat.INT8,
    )
    payloads = [rng.normal(size=(rows_per_request, hidden)) for _ in range(requests)]
    counts = [p.shape[0] for p in payloads]
    starts = np.cumsum([0] + counts[:-1])
    total_rows = sum(counts)
    workspace = kernels.KernelWorkspace()

    def run_reference() -> np.ndarray:
        stacked = np.concatenate(payloads, axis=0)
        out, _, _ = layer.forward_batched_reference(stacked, starts)
        return out

    def run_fused() -> np.ndarray:
        staging = workspace.matrix("bench.staging", total_rows, hidden)
        np.concatenate(payloads, axis=0, out=staging)
        out = np.empty((total_rows, hidden))
        result, _, _ = layer.forward_batched(
            staging, starts, workspace=workspace, out=out
        )
        return result

    assert np.array_equal(run_reference(), run_fused()), "fused path diverged"

    # Interleave the two measurements so both see the same CPU frequency /
    # cache state; keep the fastest run of each (microbenchmark policy).
    reference_times: List[float] = []
    fused_times: List[float] = []
    run_reference(), run_fused()  # warmup
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run_reference()
        reference_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        run_fused()
        fused_times.append(time.perf_counter() - start)
    reference_seconds = min(reference_times)
    fused_seconds = min(fused_times)

    return {
        "requests": requests,
        "rows_per_request": rows_per_request,
        "hidden": hidden,
        "total_rows": total_rows,
        "reference_seconds": reference_seconds,
        "fused_seconds": fused_seconds,
        "speedup": reference_seconds / fused_seconds,
        "floor": FUSED_NORM_FLOOR,
    }


def run_benchmarks(elements: Optional[int] = None) -> Dict[str, object]:
    """Run every kernel benchmark and return the BENCH_2.json payload."""
    elements = elements or _elements()
    minifloat = bench_minifloat_codec(elements)
    fixed = bench_fixed_multiply(elements)
    fused = bench_fused_normalization()
    return {
        "bench": "BENCH_2",
        "pr": 2,
        "description": "vectorized numerics kernels + fused HAAN normalization",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": {
            "minifloat_codec": minifloat,
            "fixed_point_multiply": fixed,
            "fused_batched_normalization": fused,
        },
    }


def assert_floors(payload: Dict[str, object]) -> None:
    """Assert every benchmark met its acceptance floor."""
    results = payload["results"]
    for name, result in results.items():
        speedup, floor = result["speedup"], result["floor"]
        assert speedup >= floor, f"{name}: {speedup:.2f}x is below the {floor}x floor"


def report(payload: Dict[str, object]) -> str:
    """Human-readable summary of the benchmark payload."""
    lines = ["kernel benchmark results:"]
    for name, result in payload["results"].items():
        lines.append(
            f"  {name:<30} {result['speedup']:8.1f}x  (floor {result['floor']}x)"
        )
    return "\n".join(lines)


def test_kernel_speedups():
    """Pytest entry point: run at reduced size unless overridden."""
    elements = _elements() if "HAAN_BENCH_KERNEL_ELEMS" in os.environ else 200_000
    payload = run_benchmarks(elements)
    print()
    print(report(payload))
    assert_floors(payload)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_2.json",
        help="path of the machine-readable results file (default: BENCH_2.json)",
    )
    parser.add_argument(
        "--elements",
        type=int,
        default=None,
        help="element count for the codec/multiply benchmarks (default 1e6)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmarks(args.elements)
    print(report(payload))
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    assert_floors(payload)
    print("all speedup floors met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
