"""Section V-B.2: end-to-end speedup of HAAN on the GPT-2 355M FPGA host accelerator."""

from conftest import run_once

from repro.eval.experiments import run_end_to_end


def test_end_to_end_speedup(benchmark):
    result = run_once(benchmark, run_end_to_end, seq_lens=(128, 256, 512))
    print()
    print(result.formatted())
    print(f"average end-to-end speedup: {result.metadata['average']:.3f}x")
    # Paper: ~1.11x average speedup across input lengths 128/256/512.
    assert 1.05 <= result.metadata["average"] <= 1.25
