"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper by calling the
corresponding experiment in :mod:`repro.eval.experiments` and printing the
resulting rows.  The accuracy experiments run a real (simulated) LLM over
the synthetic task suites, which is CPU-heavy; their problem size is
controlled with environment variables so CI machines can dial the cost:

* ``HAAN_BENCH_ITEMS``          -- items per task for Table I  (default 10)
* ``HAAN_BENCH_ITEMS_ABLATION`` -- items per task for Table II (default 6)
* ``HAAN_BENCH_CALIB_DOCS``     -- calibration documents        (default 16)
* ``HAAN_BENCH_SERVING_REQS``   -- serving throughput requests  (default 2048)

The paper-fidelity run recorded in EXPERIMENTS.md used the defaults.
"""

from __future__ import annotations

import os

import pytest


def _int_env(name: str, default: int) -> int:
    try:
        return max(1, int(os.environ.get(name, default)))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def table1_items() -> int:
    """Items per task for the Table I benchmark."""
    return _int_env("HAAN_BENCH_ITEMS", 10)


@pytest.fixture(scope="session")
def table2_items() -> int:
    """Items per task for the Table II ablation benchmark."""
    return _int_env("HAAN_BENCH_ITEMS_ABLATION", 6)


@pytest.fixture(scope="session")
def calibration_docs() -> int:
    """Calibration documents for the accuracy benchmarks."""
    return _int_env("HAAN_BENCH_CALIB_DOCS", 16)


@pytest.fixture(scope="session")
def serving_requests() -> int:
    """Requests per measurement for the serving throughput benchmark.

    Large enough that one measurement spans tens of milliseconds -- short
    runs are dominated by scheduler/timer jitter and make the reported
    speedup ratio noisy.
    """
    return _int_env("HAAN_BENCH_SERVING_REQS", 2048)


def run_once(benchmark, func, *args, **kwargs):
    """Execute a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
