"""Table II: LLaMA-7B accuracy across subsample lengths, data formats and skip ranges."""

import numpy as np
from conftest import run_once

from repro.eval.experiments import TASK_ORDER, run_table2


def test_table2_ablation(benchmark, table2_items, calibration_docs):
    result = run_once(
        benchmark,
        run_table2,
        num_items=table2_items,
        calibration_texts_count=calibration_docs,
    )
    print()
    print(result.formatted())
    reports = result.metadata["reports"]

    def mean_acc(key):
        return np.mean([reports[key].accuracies[t] for t in TASK_ORDER])

    original = mean_acc("original")
    # Data formats: INT8 / FP16 / FP32 all comparable to the original.
    for fmt in ("int8", "fp16", "fp32"):
        assert abs(mean_acc(f"format={fmt}") - original) <= 0.15
    # Skip range: the paper's calibrated deep range (50, 60) must be at
    # least as good as skipping early layers (10, 20).
    assert mean_acc("skip=(50,60)") >= mean_acc("skip=(10,20)") - 0.02
    # Subsampling: the largest subsample length is closest to the original.
    gaps = {n: abs(mean_acc(f"nsub={n}") - original) for n in (128, 256, 512)}
    assert gaps[512] <= gaps[128] + 0.02
