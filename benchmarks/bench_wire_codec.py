"""Wire codec + transport: binary v3 framing vs JSON+base64, and shm vs TCP.

Acceptance targets of the zero-copy wire format (ISSUE 8):

* **codec leg** -- encode+decode round-trip throughput of a bulk envelope
  holding 2048-dim activation rows must be at least **3x** higher with the
  v3 binary frame (raw little-endian buffers, ``np.frombuffer`` over a
  memoryview) than with the v2 JSON+base64 frame;
* **transport leg** -- against a live server, a same-host shared-memory
  client must sustain at least the bulk requests/sec of the binary-TCP
  client (which in turn must beat JSON+base64 over the same socket).

Every measured path must stay **bit-identical** to the in-process
transport -- speed never buys approximation.

Results are written to a machine-readable ``BENCH_8.json``.  Runs
standalone::

    PYTHONPATH=src python benchmarks/bench_wire_codec.py --output BENCH_8.json

or under pytest (``python -m pytest bench_wire_codec.py -q -s``); the
environment knobs ``HAAN_BENCH_CODEC_MB`` and ``HAAN_BENCH_WIRE_ITEMS``
scale the codec working set and the per-bulk item count for CI machines.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.api.client import NormClient
from repro.api.envelopes import SCHEMA_VERSION, TensorPayload
from repro.api.framing import MAX_FRAME_BYTES, FrameDecoder, encode_frame, frame_kind
from repro.api.server import NormServer
from repro.serving.batcher import BatcherConfig
from repro.serving.registry import CalibrationRegistry
from repro.serving.service import NormalizationService

#: Acceptance floors asserted by this benchmark (and by the CI job).
CODEC_SPEEDUP_FLOOR = 3.0
SHM_VS_TCP_FLOOR = 1.0

#: The codec leg measures the dimension the acceptance criterion names.
CODEC_DIM = 2048


def _int_env(name: str, default: int) -> int:
    try:
        return max(1, int(os.environ.get(name, default)))
    except ValueError:
        return default


def _measure(fn, repeats: int = 5) -> float:
    """Fastest wall-clock of ``fn`` (one warmup absorbs cold caches)."""
    fn()
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


# ---------------------------------------------------------------------------
# leg A: codec-only round trip (no socket)
# ---------------------------------------------------------------------------


def bench_codec(megabytes: Optional[int] = None, seed: int = 0) -> Dict[str, object]:
    """Encode+decode a bulk envelope of 2048-dim rows, binary vs base64."""
    megabytes = megabytes or _int_env("HAAN_BENCH_CODEC_MB", 8)
    rng = np.random.default_rng(seed)
    row_bytes = CODEC_DIM * 8
    rows = max(1, megabytes * (1 << 20) // (16 * row_bytes))
    arrays = [rng.normal(0.0, 1.0, size=(rows, CODEC_DIM)) for _ in range(16)]
    tensor_bytes = sum(array.nbytes for array in arrays)

    frame_sizes: Dict[str, int] = {}

    def roundtrip(encoding: str) -> List[np.ndarray]:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "op": "normalize_bulk",
            "request_id": 1,
            "model": "bench",
            "items": [
                TensorPayload.from_array(array, encoding=encoding).to_wire()
                for array in arrays
            ],
        }
        frame = encode_frame(payload)
        frame_sizes[encoding] = len(frame)
        decoder = FrameDecoder(max_frame_bytes=MAX_FRAME_BYTES)
        (decoded,) = decoder.feed(frame)
        return [TensorPayload.from_wire(item).to_array() for item in decoded["items"]]

    # Sanity before timing: both paths reproduce the input bit-for-bit and
    # land in the frame kind they claim to.
    for encoding, kind in (("binary", "binary"), ("base64", "json")):
        outputs = roundtrip(encoding)
        assert all(np.array_equal(out, src) for out, src in zip(outputs, arrays))
        body = encode_frame(
            {
                "schema_version": SCHEMA_VERSION,
                "op": "normalize",
                "request_id": 2,
                "model": "bench",
                "tensor": TensorPayload.from_array(arrays[0], encoding=encoding).to_wire(),
            }
        )[4:]
        assert frame_kind(body) == kind, (encoding, kind)

    seconds = {
        "binary": _measure(lambda: roundtrip("binary")),
        "base64": _measure(lambda: roundtrip("base64")),
    }
    throughput = {
        name: tensor_bytes / value / (1 << 20) for name, value in seconds.items()
    }
    return {
        "dim": CODEC_DIM,
        "rows_per_tensor": rows,
        "tensors": len(arrays),
        "tensor_megabytes": tensor_bytes / (1 << 20),
        "frame_bytes": frame_sizes,
        "seconds": seconds,
        "throughput_mb_per_s": throughput,
        "codec_speedup": throughput["binary"] / throughput["base64"],
        "floor": CODEC_SPEEDUP_FLOOR,
    }


# ---------------------------------------------------------------------------
# leg B: end-to-end bulk requests against a live server
# ---------------------------------------------------------------------------


def bench_transports(
    items: Optional[int] = None,
    model_name: str = "tiny",
    rows_per_item: int = 256,
    seed: int = 0,
) -> Dict[str, object]:
    """Bulk round trips over JSON TCP, binary TCP and shared memory."""
    items = items or _int_env("HAAN_BENCH_WIRE_ITEMS", 32)
    registry = CalibrationRegistry()
    artifact = registry.get(model_name, "default")
    rng = np.random.default_rng(seed)
    payloads = [
        rng.normal(0.0, 1.0, size=(rows_per_item, artifact.hidden_size))
        for _ in range(items)
    ]
    moved_bytes = sum(payload.nbytes for payload in payloads)

    with NormClient.in_process(registry=registry) as client:
        golden = [client.normalize(payload, model_name).output for payload in payloads]

    config = BatcherConfig(max_batch_size=32, max_wait=0.002)
    timings: Dict[str, float] = {}
    outputs: Dict[str, List[np.ndarray]] = {}
    encodings: Dict[str, str] = {}
    with NormalizationService(registry=registry, config=config) as service:
        with NormServer(service, workers=8, max_inflight=64) as server:

            def run(name: str, transport: str, encoding: Optional[str]) -> None:
                with NormClient.connect(
                    server.host, server.port, transport=transport
                ) as client:
                    def bulk():
                        outputs[name] = [
                            r.output
                            for r in client.normalize_bulk(
                                payloads, model_name, encoding=encoding
                            )
                        ]

                    timings[name] = _measure(bulk)
                    if transport == "shm":
                        stats = client.transport.stats()["shm"]
                        assert stats["sessions"] == 1 and stats["refusals"] == 0
                    rows = server.wire_snapshot()["per_connection"]
                    encodings[name] = rows[-1]["encoding"] if rows else "?"

            run("tcp-json", "socket", "base64")
            run("tcp-binary", "socket", "binary")
            run("shm", "shm", "binary")

    mismatches = []
    for name, outs in outputs.items():
        for index, (out, ref) in enumerate(zip(outs, golden)):
            if not np.array_equal(out, ref):
                mismatches.append(f"{name}[{index}]")
    rps = {name: items / value for name, value in timings.items()}
    return {
        "items": items,
        "rows_per_item": rows_per_item,
        "hidden_size": artifact.hidden_size,
        "moved_megabytes": moved_bytes / (1 << 20),
        "seconds": timings,
        "requests_per_second": rps,
        "connection_encoding": encodings,
        "binary_vs_json": rps["tcp-binary"] / rps["tcp-json"],
        "shm_vs_binary": rps["shm"] / rps["tcp-binary"],
        "bit_identical": not mismatches,
        "mismatches": mismatches,
        "floor": SHM_VS_TCP_FLOOR,
    }


def _report(codec: Dict[str, object], transports: Dict[str, object]) -> None:
    print(
        f"codec: {codec['tensors']} x ({codec['rows_per_tensor']}, {codec['dim']}) "
        f"float64 ({codec['tensor_megabytes']:.1f} MiB of tensor bytes)"
    )
    for name in ("binary", "base64"):
        print(
            f"  {name:>7}: {codec['throughput_mb_per_s'][name]:9.0f} MiB/s round trip "
            f"({codec['frame_bytes'][name] / (1 << 20):.1f} MiB frame)"
        )
    print(
        f"codec speedup (binary vs base64): {codec['codec_speedup']:.2f}x  "
        f"(floor {codec['floor']:.1f}x)"
    )
    print()
    print(
        f"transports: bulk of {transports['items']} x ({transports['rows_per_item']}, "
        f"{transports['hidden_size']}) rows ({transports['moved_megabytes']:.1f} MiB "
        f"per direction)"
    )
    for name in ("tcp-json", "tcp-binary", "shm"):
        print(
            f"  {name:>10}: {transports['requests_per_second'][name]:8.0f} items/s "
            f"(server saw {transports['connection_encoding'][name]!r} frames)"
        )
    print(f"binary vs json over TCP: {transports['binary_vs_json']:.2f}x")
    print(
        f"shm vs binary TCP: {transports['shm_vs_binary']:.2f}x  "
        f"(floor {transports['floor']:.1f}x)"
    )
    print(f"bit-identical to in-process: {transports['bit_identical']}")


def _passed(codec: Dict[str, object], transports: Dict[str, object]) -> bool:
    return bool(
        transports["bit_identical"]
        and codec["codec_speedup"] >= CODEC_SPEEDUP_FLOOR
        and transports["shm_vs_binary"] >= SHM_VS_TCP_FLOOR
    )


def test_wire_codec_speedup():
    """Pytest entry point asserting the acceptance floors."""
    codec = bench_codec()
    transports = bench_transports()
    print()
    _report(codec, transports)
    assert transports["bit_identical"], transports["mismatches"]
    assert codec["codec_speedup"] >= CODEC_SPEEDUP_FLOOR
    assert transports["shm_vs_binary"] >= SHM_VS_TCP_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write BENCH_8.json here")
    parser.add_argument("--codec-mb", type=int, default=None)
    parser.add_argument("--items", type=int, default=None)
    args = parser.parse_args(argv)

    codec = bench_codec(megabytes=args.codec_mb)
    transports = bench_transports(items=args.items)
    _report(codec, transports)
    payload = {
        "bench": "BENCH_8",
        "pr": 8,
        "description": "binary wire codec vs JSON+base64, shm vs TCP transports",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": {"wire_codec": codec, "wire_transports": transports},
    }
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0 if _passed(codec, transports) else 1


if __name__ == "__main__":
    sys.exit(main())
