"""Figure 8(a): normalized power of HAAN vs SOLE / DFX / MHAA on GPT-2."""

from conftest import run_once

from repro.eval.experiments import run_fig8a


def test_fig8a_power(benchmark):
    result = run_once(benchmark, run_fig8a, seq_len=128)
    print()
    print(result.formatted())
    powers = result.metadata["powers"]
    # Paper: HAAN reduces power by over 60% vs DFX and draws slightly less
    # than SOLE and MHAA.
    assert result.metadata["dfx_reduction"] > 0.60
    assert powers["HAAN-v1"] < powers["SOLE"]
    assert powers["HAAN-v1"] < powers["MHAA"]
