"""Wire-protocol pipelining: single-client req/s at depth N vs depth 1.

Acceptance target of the pipelined protocol (ISSUE 5): **one** remote
client over **one** pooled transport must reach at least 2x the requests/sec
at pipeline depth >= 8 that it gets in lock-step (depth 1) against the same
live server.  Depth 1 pays a full round trip plus the batcher's latency
trigger per request; with depth 8 the requests overlap on the wire and
coalesce into shared micro-batches server-side.  The bulk envelope
(`normalize_bulk`: every payload in one frame) is measured alongside.

Every measured path must stay **bit-identical** to the in-process transport
and the `reference` engine backend -- speed never buys approximation.

Results are written to a machine-readable ``BENCH_5.json``.  Runs
standalone::

    PYTHONPATH=src python benchmarks/bench_api_pipelining.py --output BENCH_5.json

or under pytest (``python -m pytest bench_api_pipelining.py -q -s``); the
environment knob ``HAAN_BENCH_API_REQS`` scales the request count.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.api.client import NormClient
from repro.api.server import NormServer
from repro.serving.batcher import BatcherConfig
from repro.serving.registry import CalibrationRegistry
from repro.serving.service import NormalizationService

#: Acceptance floor asserted by this benchmark (and by the CI job).
PIPELINE_SPEEDUP_FLOOR = 2.0
PIPELINE_DEPTH = 8


def _requests() -> int:
    try:
        return max(32, int(os.environ.get("HAAN_BENCH_API_REQS", 256)))
    except ValueError:
        return 256


def _measure(fn, repeats: int = 3) -> float:
    """Fastest wall-clock of ``fn`` (one warmup absorbs cold caches)."""
    fn()
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def bench_api_pipelining(
    requests: Optional[int] = None,
    model_name: str = "tiny",
    rows_per_request: int = 1,
    seed: int = 0,
) -> Dict[str, object]:
    """Measure depth-1 vs depth-N vs bulk req/s of a single remote client."""
    requests = requests or _requests()
    registry = CalibrationRegistry()
    artifact = registry.get(model_name, "default")
    hidden = artifact.hidden_size
    rng = np.random.default_rng(seed)
    payloads = [
        rng.normal(0.0, 1.0, size=(rows_per_request, hidden)) for _ in range(requests)
    ]

    # Golden paths: the reference engine and the in-process transport.
    reference = [
        artifact.layer(0).engine_for("reference").run(payload)[0]
        for payload in payloads
    ]
    with NormClient.in_process(registry=registry) as client:
        in_process = [
            client.normalize(payload, model_name).output for payload in payloads
        ]

    config = BatcherConfig(max_batch_size=32, max_wait=0.002)
    timings: Dict[str, float] = {}
    outputs: Dict[str, List[np.ndarray]] = {}
    with NormalizationService(registry=registry, config=config) as service:
        with NormServer(service, workers=8, max_inflight=64) as server:
            with NormClient.connect(server.host, server.port) as client:

                def lockstep():
                    outputs["depth-1"] = [
                        r.output
                        for r in client.normalize_many(payloads, model_name, depth=1)
                    ]

                def pipelined():
                    outputs[f"depth-{PIPELINE_DEPTH}"] = [
                        r.output
                        for r in client.normalize_many(
                            payloads, model_name, depth=PIPELINE_DEPTH
                        )
                    ]

                def bulk():
                    outputs["bulk"] = [
                        r.output
                        for r in client.normalize_bulk(payloads, model_name)
                    ]

                timings["depth-1"] = _measure(lockstep)
                timings[f"depth-{PIPELINE_DEPTH}"] = _measure(pipelined)
                timings["bulk"] = _measure(bulk)

    # Bit-identity: every wire path == in-process == reference, exactly.
    mismatches = []
    for name, outs in outputs.items():
        for index, (out, ref, inproc) in enumerate(zip(outs, reference, in_process)):
            if not (np.array_equal(out, ref) and np.array_equal(out, inproc)):
                mismatches.append(f"{name}[{index}]")
    rps = {name: requests / seconds for name, seconds in timings.items()}
    return {
        "requests": requests,
        "rows_per_request": rows_per_request,
        "pipeline_depth": PIPELINE_DEPTH,
        "seconds": timings,
        "requests_per_second": rps,
        "pipeline_speedup": rps[f"depth-{PIPELINE_DEPTH}"] / rps["depth-1"],
        "bulk_speedup": rps["bulk"] / rps["depth-1"],
        "bit_identical": not mismatches,
        "mismatches": mismatches,
        "floor": PIPELINE_SPEEDUP_FLOOR,
    }


def _report(result: Dict[str, object]) -> None:
    print(f"requests: {result['requests']} x {result['rows_per_request']} row(s)")
    for name, value in result["requests_per_second"].items():
        print(f"  {name:>10}: {value:8.0f} req/s   ({1e3 * result['seconds'][name]:.1f} ms)")
    print(
        f"pipeline speedup (depth {result['pipeline_depth']} vs 1): "
        f"{result['pipeline_speedup']:.2f}x  (floor {result['floor']:.1f}x)"
    )
    print(f"bulk speedup: {result['bulk_speedup']:.2f}x")
    print(f"bit-identical to in-process + reference: {result['bit_identical']}")


def test_api_pipelining_speedup():
    """Pytest entry point asserting the acceptance floors."""
    result = bench_api_pipelining()
    print()
    _report(result)
    assert result["bit_identical"], result["mismatches"]
    assert result["pipeline_speedup"] >= PIPELINE_SPEEDUP_FLOOR
    # The bulk envelope must not regress below the pipelined floor either:
    # it is the "whole batch in one frame" fast path.
    assert result["bulk_speedup"] >= PIPELINE_SPEEDUP_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write BENCH_5.json here")
    parser.add_argument("--requests", type=int, default=None)
    args = parser.parse_args(argv)

    result = bench_api_pipelining(requests=args.requests)
    _report(result)
    payload = {
        "bench": "BENCH_5",
        "pr": 5,
        "description": "wire-protocol pipelining: single client depth-N vs depth-1",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": {"api_pipelining": result},
    }
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    ok = (
        result["bit_identical"]
        and result["pipeline_speedup"] >= PIPELINE_SPEEDUP_FLOOR
        and result["bulk_speedup"] >= PIPELINE_SPEEDUP_FLOOR
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
