"""Figure 8(b): normalized latency on OPT-2.7B (HAAN-v1/v3 vs GPU, DFX, SOLE, MHAA)."""

from conftest import run_once

from repro.eval.experiments import run_fig8b


def test_fig8b_latency_opt(benchmark):
    result = run_once(benchmark, run_fig8b, seq_lens=(128, 256, 512, 1024))
    print()
    print(result.formatted())
    ratios = result.metadata["ratios"]
    for seq in (128, 256, 512, 1024):
        # Who-wins ordering of the paper, at every sequence length.
        assert ratios["haan-v3"][seq] <= 1.3
        assert 1.0 < ratios["SOLE"][seq] < 2.2
        assert 2.0 < ratios["MHAA"][seq] < 3.5
        assert ratios["GPU"][seq] > 8.0
        assert ratios["DFX"][seq] > 9.0
