"""Ablation: design-space exploration over (p_d, p_n) and data format.

Backs the paper's claim (Section V-B) that picking ``(p_d, p_n)`` to evenly
distribute pipeline stage time maximises utilization: the sweep must place
the paper's HAAN-v1 configuration on or near the latency/power Pareto
frontier of the OPT-2.7B workload, and the balanced configurations must show
higher pipeline balance than badly skewed ones.
"""

from conftest import run_once

from repro.core import paper_config_for
from repro.hardware import DesignSpaceExplorer, HAAN_V1, NormalizationWorkload
from repro.numerics.quantization import DataFormat


def _run_sweep():
    workload = NormalizationWorkload.from_model_name(
        "opt-2.7b", seq_len=256, haan_config=paper_config_for("opt-2.7b")
    )
    explorer = DesignSpaceExplorer()
    configs = explorer.candidate_configs(
        stats_widths=(32, 64, 128, 256),
        norm_widths=(64, 128, 256),
        data_formats=(DataFormat.FP16, DataFormat.INT8),
    )
    result = explorer.explore(workload, configs)
    reference = explorer.evaluate(HAAN_V1, workload)
    return result, reference


def test_dse_pareto(benchmark):
    result, reference = run_once(benchmark, _run_sweep)
    print()
    frontier = result.pareto_frontier()
    print("Pareto frontier (latency us, power W, balance):")
    for point in frontier:
        print(f"  {point.config.name:>14}  {point.latency_us:9.1f}  {point.power_w:6.2f}  "
              f"{point.pipeline_balance:.2f}")

    assert len(result.feasible_points) >= 8
    assert frontier, "sweep produced no feasible Pareto points"
    # HAAN-v1 must be close to the frontier among FP16 designs: no FP16
    # frontier point may beat it by more than 10% in latency while also using
    # less power.  (INT8 points legitimately dominate it -- that is Table
    # III's own conclusion -- so they are excluded from this check.)
    strictly_better = [
        p
        for p in frontier
        if p.config.data_format is DataFormat.FP16
        and p.latency_seconds < reference.latency_seconds * 0.9
        and p.power_w < reference.power_w
    ]
    assert not strictly_better
    # Balanced width ratios produce better pipeline balance than skewed ones.
    explorer = DesignSpaceExplorer()
    workload = result.workload
    balanced = explorer.evaluate(HAAN_V1, workload).pipeline_balance
    skewed = explorer.evaluate(
        HAAN_V1.with_overrides(name="skewed", stats_width=32, norm_width=256), workload
    ).pipeline_balance
    assert balanced >= skewed
