"""Overload goodput: admission-control shedding vs. accept-everything.

Acceptance target of the robustness tier (ISSUE 7): at **2x** a server's
frame capacity, goodput -- responses that arrive within their deadline
budget, per second of wall clock -- with load shedding enabled must reach
at least **1.5x** the goodput of the same server accepting everything.

The mechanism under test is the pre-decode
:class:`~repro.api.admission.AdmissionController`: with a queue bound
sized to the deadline budget, work that cannot plausibly finish in time
fails in microseconds with a typed ``OverloadedError`` (``retry_after_ms``
attached) instead of failing slowly at its deadline, so the requests the
server *does* accept still finish in budget.  Without the bound every
request is admitted, the queue grows past the deadline horizon, and
almost nothing useful comes back -- the classic goodput collapse.

The server shape is deliberately *capacity-bound*, not CPU-bound (same
regime as ``bench_fleet.py``): a ``normalize`` handler parks in the
micro-batcher for up to ``max_wait`` while occupying a worker slot, so
capacity is roughly ``workers / max_wait`` frames/sec regardless of core
count, and a single-core CI runner measures admission policy, not numpy.

Results are written to a machine-readable ``BENCH_7.json``.  Runs
standalone::

    PYTHONPATH=src python benchmarks/bench_overload.py --output BENCH_7.json

or under pytest (``python -m pytest bench_overload.py -q -s``); the
environment knob ``HAAN_BENCH_OVERLOAD_SECONDS`` scales the offered-load
window.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import queue
import sys
import threading
import time
from typing import Dict, List, Optional

import numpy as np

from repro.api.client import NormClient
from repro.api.envelopes import ApiError, OverloadedError
from repro.api.server import NormServer
from repro.serving.batcher import BatcherConfig
from repro.serving.registry import CalibrationRegistry
from repro.serving.service import NormalizationService

#: Acceptance floor asserted by this benchmark (and by the CI job).
OVERLOAD_GOODPUT_FLOOR = 1.5

#: Capacity-bound server shape: ~``WORKERS / MAX_WAIT`` frames/sec.
WORKERS = 2
MAX_WAIT_MS = 40.0
MAX_BATCH = 64
CAPACITY_RPS = WORKERS / (MAX_WAIT_MS / 1000.0)

#: Offered load is this multiple of capacity (the ISSUE's "2x" point).
OVERLOAD_FACTOR = 2.0

#: A response is *goodput* only if it lands within this budget.
DEADLINE_MS = 250.0

MODEL = "tiny"
ROWS = 2


def _seconds() -> float:
    try:
        return max(1.0, float(os.environ.get("HAAN_BENCH_OVERLOAD_SECONDS", 3.0)))
    except ValueError:
        return 3.0


def _serve(registry: CalibrationRegistry, max_queue_depth: int) -> NormServer:
    """One capacity-bound server over a child of the shared registry."""
    service = NormalizationService(
        registry=CalibrationRegistry(loader=lambda m, d: registry.get(m, d)),
        config=BatcherConfig(max_batch_size=MAX_BATCH, max_wait=MAX_WAIT_MS / 1000.0),
    )
    server = NormServer(
        service,
        workers=WORKERS,
        max_inflight=4096,  # the queue must build server-side, not as TCP backpressure
        max_queue_depth=max_queue_depth,
    ).start()
    server._bench_service = service  # closed together in _drive's finally
    return server


def _drive(
    registry: CalibrationRegistry,
    max_queue_depth: int,
    deadline_on_wire: bool,
    seconds: float,
    seed: int,
) -> Dict[str, object]:
    """Open-loop traffic at ``OVERLOAD_FACTOR``x capacity against one server.

    Requests are paced on the client's clock (send time ``i / rate``
    regardless of completions), which is what makes overload real: a
    closed loop would slow down with the server and never overload it.
    """
    rate = CAPACITY_RPS * OVERLOAD_FACTOR
    total = max(8, int(round(rate * seconds)))
    rng = np.random.default_rng(seed)
    server = _serve(registry, max_queue_depth)
    try:
        artifact = registry.get(MODEL, "default")
        layer = artifact.layer(0)
        golden = layer.engine_for("reference")
        payloads = [
            rng.normal(0.0, 1.0, size=(ROWS, artifact.hidden_size))
            for _ in range(total)
        ]
        deadline = DEADLINE_MS if deadline_on_wire else None

        with NormClient.connect(server.host, server.port, timeout=120.0) as client:
            client.wait_until_ready(timeout=30.0)
            # Warm the path (connection, engine cache) outside the timed window.
            client.normalize(payloads[0], MODEL)

            good = 0
            late = 0
            shed = 0
            shed_latencies: List[float] = []
            mismatches = 0
            missing_retry_after = 0
            other: List[str] = []

            # Responses come back FIFO on the pipelined connection; a
            # concurrent drainer stamps each at *arrival*.  Stamping in a
            # post-send loop instead would charge every response the full
            # send window and call the whole run late.
            pending: "queue.Queue" = queue.Queue()

            def _drain() -> None:
                nonlocal good, late, shed, mismatches, missing_retry_after
                while True:
                    item = pending.get()
                    if item is None:
                        return
                    index, sent, handle = item
                    try:
                        result = handle.result()
                    except OverloadedError as error:
                        shed += 1
                        shed_latencies.append(
                            (time.perf_counter() - sent) * 1000.0
                        )
                        if error.retry_after_ms is None:
                            missing_retry_after += 1
                        continue
                    except ApiError as error:
                        other.append(f"[{error.code}] {error}")
                        continue
                    latency_ms = (time.perf_counter() - sent) * 1000.0
                    if latency_ms <= DEADLINE_MS:
                        good += 1
                    else:
                        late += 1
                    expected = golden.run(
                        np.asarray(payloads[index], dtype=np.float64)
                    )[0]
                    if not np.array_equal(
                        result.output, expected.reshape(result.output.shape)
                    ):
                        mismatches += 1

            drainer = threading.Thread(target=_drain, daemon=True)
            drainer.start()
            begin = time.perf_counter()
            for index, payload in enumerate(payloads):
                slot = begin + index / rate
                delay = slot - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                sent = time.perf_counter()
                handle = client.submit_normalize(
                    payload, MODEL, deadline_ms=deadline
                )
                pending.put((index, sent, handle))
            pending.put(None)
            drainer.join()
            elapsed = time.perf_counter() - begin
        admission = server.admission.snapshot()
    finally:
        server.close()
        server._bench_service.close()

    return {
        "max_queue_depth": max_queue_depth,
        "deadline_on_wire": deadline_on_wire,
        "requests": total,
        "offered_rps": round(rate, 1),
        "elapsed_seconds": round(elapsed, 3),
        "good": good,
        "late": late,
        "shed": shed,
        "goodput_rps": round(good / elapsed, 2),
        "shed_latency_ms_max": (
            round(max(shed_latencies), 3) if shed_latencies else None
        ),
        "missing_retry_after": missing_retry_after,
        "golden_mismatches": mismatches,
        "other_failures": other,
        "admission": admission,
    }


def bench_overload(seconds: Optional[float] = None, seed: int = 0) -> Dict[str, object]:
    """Goodput at 2x capacity, with and without admission control."""
    seconds = seconds or _seconds()
    # One parent registry: Algorithm 1 runs once, both runs reuse it.
    registry = CalibrationRegistry()
    registry.get(MODEL, "default")

    # Queue bound sized to the deadline budget: work beyond
    # deadline / per-frame service time cannot finish in time anyway.
    per_frame = MAX_WAIT_MS / WORKERS
    bounded_depth = max(2, int(DEADLINE_MS / per_frame) // 2)

    with_shedding = _drive(
        registry, bounded_depth, deadline_on_wire=True, seconds=seconds, seed=seed
    )
    # "Without": the bound is effectively infinite and no deadline rides
    # the wire, so the admission controller admits everything -- lateness
    # is judged client-side against the same budget.
    without_shedding = _drive(
        registry, 10**6, deadline_on_wire=False, seconds=seconds, seed=seed
    )

    ratio = with_shedding["goodput_rps"] / max(without_shedding["goodput_rps"], 1e-9)
    return {
        "capacity_rps": round(CAPACITY_RPS, 1),
        "overload_factor": OVERLOAD_FACTOR,
        "deadline_ms": DEADLINE_MS,
        "seconds": seconds,
        "server": {
            "workers": WORKERS,
            "max_wait_ms": MAX_WAIT_MS,
            "max_batch_size": MAX_BATCH,
            "bounded_queue_depth": bounded_depth,
        },
        "with_shedding": with_shedding,
        "without_shedding": without_shedding,
        "goodput_ratio": round(ratio, 2),
        "floor": OVERLOAD_GOODPUT_FLOOR,
    }


def _healthy(result: Dict[str, object]) -> bool:
    shed_run = result["with_shedding"]
    return (
        result["goodput_ratio"] >= OVERLOAD_GOODPUT_FLOOR
        and shed_run["golden_mismatches"] == 0
        and result["without_shedding"]["golden_mismatches"] == 0
        and shed_run["missing_retry_after"] == 0
        and shed_run["shed"] > 0
    )


def _report(result: Dict[str, object]) -> None:
    print(
        f"offered {result['with_shedding']['offered_rps']} req/s "
        f"({result['overload_factor']}x the ~{result['capacity_rps']} req/s "
        f"capacity), deadline budget {result['deadline_ms']} ms"
    )
    for label in ("with_shedding", "without_shedding"):
        row = result[label]
        print(
            f"  {label.replace('_', ' '):17s}: goodput {row['goodput_rps']:7.2f} req/s  "
            f"({row['good']} good / {row['late']} late / {row['shed']} shed "
            f"of {row['requests']} in {row['elapsed_seconds']}s)"
        )
    print(
        f"goodput ratio: {result['goodput_ratio']:.2f}x  "
        f"(floor {result['floor']:.1f}x)"
    )
    shed_run = result["with_shedding"]
    if shed_run["shed"]:
        print(
            f"slowest shed: {shed_run['shed_latency_ms_max']} ms; "
            f"accepted responses bit-identical="
            f"{shed_run['golden_mismatches'] == 0}"
        )


def test_overload_goodput():
    """Pytest entry point asserting the acceptance floor."""
    result = bench_overload()
    print()
    _report(result)
    assert result["with_shedding"]["shed"] > 0, result["with_shedding"]
    assert result["with_shedding"]["golden_mismatches"] == 0
    assert result["with_shedding"]["missing_retry_after"] == 0
    assert result["goodput_ratio"] >= OVERLOAD_GOODPUT_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write BENCH_7.json here")
    parser.add_argument("--seconds", type=float, default=None)
    args = parser.parse_args(argv)

    result = bench_overload(seconds=args.seconds)
    _report(result)
    payload = {
        "bench": "BENCH_7",
        "pr": 7,
        "description": "overload goodput: admission-control shedding vs accept-everything at 2x capacity",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "results": {"overload": result},
    }
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0 if _healthy(result) else 1


if __name__ == "__main__":
    sys.exit(main())
