"""Ablation: fast inverse square root accuracy vs Newton iteration count.

Section IV-B claims "a single iteration is adequate to achieve accurate
results"; this ablation quantifies the error at 0/1/2/3 iterations and also
times the vectorised kernel itself (a real micro-benchmark, since the same
code runs inside every accelerator functional simulation).
"""

import numpy as np

from repro.eval.experiments import run_invsqrt_ablation
from repro.numerics.fast_inv_sqrt import fast_inv_sqrt


def test_invsqrt_ablation_accuracy(benchmark):
    result = benchmark.pedantic(run_invsqrt_ablation, rounds=1, iterations=1)
    print()
    print(result.formatted())
    errors = result.metadata["errors"]
    # One Newton iteration reaches <0.2% worst-case error (paper-adequate);
    # the seed alone does not.
    assert errors[1][0] < 2e-3
    assert errors[0][0] > 1e-2


def test_invsqrt_kernel_throughput(benchmark):
    variances = np.random.default_rng(0).uniform(1e-3, 1e3, size=65536)
    benchmark(fast_inv_sqrt, variances, newton_iterations=1)
