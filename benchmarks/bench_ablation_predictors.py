"""Ablation: ISD predictor strategies and cross-dataset generalization.

Two design choices behind Algorithm 1 are ablated here:

* the *prediction rule* -- the paper's anchored log-linear extrapolation
  must beat both the static calibration-mean predictor and the slope-free
  flat-anchor predictor on a measured ISD profile; and
* the *calibration corpus* -- the predictor calibrated on one corpus must
  transfer to disjoint corpora with a small penalty (Section III-B's
  generalization claim).
"""

from conftest import run_once

from repro.core import evaluate_predictors, profile_model_isd, rank_strategies
from repro.core.skipping import find_skip_range_from_profile
from repro.eval import generalization_study, transfer_penalty
from repro.llm import TransformerModel
from repro.llm.datasets import calibration_texts


def _run_ablation():
    model = TransformerModel.from_name("gpt2-117m")
    profile = profile_model_isd(model, calibration_texts(10, seed=11), max_seq_len=24)
    search = find_skip_range_from_profile(
        profile,
        window=max(2, profile.num_layers // 4),
        min_start=int(profile.num_layers * 0.4),
    )
    evaluations = evaluate_predictors(profile, search.skip_range, decay=search.decay)
    study = generalization_study(model, calibration_samples=8, corpus_samples=5)
    return evaluations, study


def test_predictor_strategy_ablation(benchmark):
    evaluations, study = run_once(benchmark, _run_ablation)
    print()
    print("strategy ranking (mean |log error|):")
    for name in rank_strategies(evaluations):
        print(f"  {name:>24}  {evaluations[name].mean_abs_log_error:.4f}")
    print("cross-dataset transfer (mean |log error|):")
    for name, result in study.items():
        print(f"  {name:>14}  {result.mean_abs_log_error:.4f}")

    paper = evaluations["anchored-log-linear"]
    assert paper.mean_abs_log_error <= evaluations["calibration-mean"].mean_abs_log_error
    assert paper.mean_abs_log_error <= evaluations["flat-anchor"].mean_abs_log_error + 1e-9
    # Generalization: transfer penalty stays within a small band of the
    # in-sample error.
    baseline = study["calibration"].mean_abs_log_error
    assert transfer_penalty(study) <= max(3 * baseline, 0.25)
