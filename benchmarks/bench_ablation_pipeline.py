"""Ablation: pipeline balance and cost across (p_d, p_n) datapath widths.

Section V-B argues that choosing (p_d, p_n) so the pipeline stages are
evenly loaded maximises utilization; this ablation sweeps width pairs and
reports latency, power and the balance metric.
"""

from conftest import run_once

from repro.eval.experiments import run_pipeline_balance_ablation


def test_pipeline_balance_ablation(benchmark):
    result = run_once(
        benchmark,
        run_pipeline_balance_ablation,
        widths=((128, 128), (80, 160), (64, 128), (32, 128), (256, 128)),
    )
    print()
    print(result.formatted())
    details = result.metadata["details"]
    # A severely under-provisioned statistics calculator (32 lanes without
    # matching subsampling) is slower than the balanced design.
    assert details[(32, 128)]["latency_us"] > details[(128, 128)]["latency_us"]
    # Widening the normalization unit relative to the statistics unit
    # (HAAN-v2 style) does not increase latency.
    assert details[(80, 160)]["latency_us"] <= details[(128, 128)]["latency_us"] * 1.05
