"""Ablation: energy, roofline and timing behaviour of the Table III configurations.

Cross-checks three hardware-level claims that back the headline numbers:

* INT8 processing costs the least energy and FP32 the most (Table III's
  power ordering, restated bottom-up from per-operation energies);
* ISD skipping plus subsampling reduce total energy on the GPT-2 workload,
  and the saving exceeds 20% (the mechanism behind the >60% power
  reduction vs DFX once utilization is accounted for);
* every Table III configuration closes timing at the paper's 100 MHz clock,
  with INT8 configurations retaining the most frequency headroom.
"""

from conftest import run_once

from repro.core import paper_config_for
from repro.hardware import (
    EnergyModel,
    NormalizationWorkload,
    TimingModel,
    U280_HBM,
    roofline_analysis,
)
from repro.hardware.configs import TABLE3_CONFIGS
from repro.numerics.quantization import DataFormat


def _run_analysis():
    workload = NormalizationWorkload.from_model_name(
        "gpt2-1.5b", seq_len=256, haan_config=paper_config_for("gpt2-1.5b")
    )
    energy_model = EnergyModel()
    timing_model = TimingModel()
    per_config = {}
    for config in TABLE3_CONFIGS:
        per_config[config.name] = {
            "energy": energy_model.estimate(config, workload),
            "timing": timing_model.estimate(config),
            "roofline": roofline_analysis(config, workload, U280_HBM),
            "format": config.data_format,
        }
    saving = energy_model.savings_from_skipping(TABLE3_CONFIGS[2], workload)
    return per_config, saving


def test_roofline_energy_ablation(benchmark):
    per_config, saving = run_once(benchmark, _run_analysis)
    print()
    print(f"{'config':>14}  {'energy mJ':>10}  {'fmax MHz':>9}  {'intensity':>9}")
    for name, data in per_config.items():
        print(
            f"{name:>14}  {data['energy'].total_nj / 1e6:10.2f}  "
            f"{data['timing'].max_frequency_mhz:9.0f}  "
            f"{data['roofline'].arithmetic_intensity:9.2f}"
        )
    print(f"energy saving from skipping + subsampling: {saving * 100:.1f}%")

    by_format = {}
    for data in per_config.values():
        by_format.setdefault(data["format"], []).append(data["energy"].total_nj)
    assert min(by_format[DataFormat.INT8]) < min(by_format[DataFormat.FP16])
    assert min(by_format[DataFormat.FP16]) < min(by_format[DataFormat.FP32])
    assert saving > 0.20
    for name, data in per_config.items():
        assert data["timing"].meets(100.0), name
    int8_headroom = min(
        d["timing"].max_frequency_mhz for d in per_config.values() if d["format"] is DataFormat.INT8
    )
    fp32_headroom = max(
        d["timing"].max_frequency_mhz for d in per_config.values() if d["format"] is DataFormat.FP32
    )
    assert int8_headroom > fp32_headroom
