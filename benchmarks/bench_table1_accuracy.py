"""Table I: accuracy of HAAN vs the original models on five downstream tasks."""

from conftest import run_once

from repro.eval.experiments import run_table1


def test_table1_accuracy(benchmark, table1_items, calibration_docs):
    result = run_once(
        benchmark,
        run_table1,
        models=("llama-7b", "opt-2.7b", "gpt2-1.5b"),
        num_items=table1_items,
        calibration_texts_count=calibration_docs,
    )
    print()
    print(result.formatted())
    print(f"max per-task degradation: {result.metadata['max_degradation']:.4f}")
    # Paper claim: <1% degradation.  With N items per task the accuracy
    # granularity is 1/N, so the acceptance band scales with the sample
    # size used for the benchmark run.
    tolerance = max(0.02, 2.0 / table1_items)
    assert result.metadata["max_degradation"] <= tolerance
