"""Design-space exploration of the HAAN accelerator configuration.

Sweeps the (p_d, p_n) datapath widths and the input data format, and for
each build reports FPGA resources, power, latency on a GPT-2 workload and
energy per forward pass -- the Table III / Section V-B.1 analysis extended
into a small design-space exploration, including the subsampling-aware
balancing rule the paper describes (reduce p_d when N_sub shrinks and spend
the saved DSPs on normalization throughput).

Run with:  python examples/hardware_design_space.py
"""

from __future__ import annotations

from repro.core import HaanConfig
from repro.hardware import AcceleratorConfig, HaanAccelerator, NormalizationWorkload
from repro.llm import get_model_config
from repro.numerics.quantization import DataFormat
from repro.utils.tables import format_table


def main() -> None:
    model_config = get_model_config("gpt2-1.5b")
    seq_len = 256
    subsample = model_config.hidden_size // 2
    haan_config = HaanConfig(
        skip_range=(model_config.num_norm_layers - 12, model_config.num_norm_layers - 2),
        subsample_length=subsample,
    )
    workload = NormalizationWorkload.from_model(model_config, seq_len=seq_len, haan_config=haan_config)

    widths = [(32, 128), (64, 128), (128, 128), (80, 160), (128, 256), (256, 256)]
    formats = (DataFormat.INT8, DataFormat.FP16, DataFormat.FP32)

    rows = []
    best = None
    for fmt in formats:
        for stats_width, norm_width in widths:
            config = AcceleratorConfig(
                name=f"{fmt.value}-{stats_width}-{norm_width}",
                stats_width=stats_width,
                norm_width=norm_width,
                data_format=fmt,
            )
            accelerator = HaanAccelerator(config)
            resources = accelerator.resources()
            latency = accelerator.workload_latency(workload)
            power = accelerator.power(workload)
            energy_mj = accelerator.energy(workload) * 1e3
            rows.append(
                [
                    fmt.value.upper(),
                    f"({stats_width}, {norm_width})",
                    f"{resources.dsp}",
                    f"{resources.lut // 1000}K",
                    f"{latency.latency_us:.0f}",
                    f"{power.total_w:.2f}",
                    f"{energy_mj:.2f}",
                    latency.bottleneck_stage,
                ]
            )
            if best is None or energy_mj < best[1]:
                best = (config.name, energy_mj)

    print(format_table(
        ["format", "(p_d, p_n)", "DSP", "LUT", "latency (us)", "power (W)", "energy (mJ)", "bottleneck"],
        rows,
        title=f"GPT2-1.5B normalization workload, seq={seq_len}, N_sub={subsample}",
    ))
    print(f"\nLowest-energy build: {best[0]} ({best[1]:.2f} mJ per forward pass)")


if __name__ == "__main__":
    main()
