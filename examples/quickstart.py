"""Quickstart: calibrate HAAN on a model and compare it to the reference.

This example walks through the complete HAAN flow on the small built-in
model so it runs in a few seconds:

1. build a model and profile its per-layer ISD statistics (Figure 2),
2. run Algorithm 1 to find the skip range and fit the log-linear predictor,
3. install the HAAN normalization layers (skipping + subsampling + INT8),
4. check that the model's outputs and perplexity barely change,
5. estimate the latency/power of the HAAN accelerator on this workload, and
6. serve normalization through the public API (`repro.api.NormClient`) --
   the same client code that talks to a remote `haan-serve --listen`
   server over the wire protocol.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import HaanConfig, apply_haan, calibrate_model, CalibrationSettings
from repro.eval.perplexity import evaluate_perplexity
from repro.hardware import HAAN_V1, HaanAccelerator, NormalizationWorkload
from repro.llm import TransformerModel
from repro.llm.datasets import calibration_texts, perplexity_texts
from repro.numerics.quantization import DataFormat
from repro.utils.tables import format_table


def main() -> None:
    model_name = "tiny"
    print(f"== 1. Build the reference model ({model_name}) ==")
    reference = TransformerModel.from_name(model_name)
    print(f"   {reference.num_norm_layers} normalization layers, "
          f"{reference.weights.num_parameters:,} simulated parameters")

    print("== 2. Calibrate: profile ISDs and run Algorithm 1 ==")
    calibration = calibrate_model(
        reference,
        texts=calibration_texts(16),
        settings=CalibrationSettings(window=3, max_seq_len=32, min_start_fraction=0.4),
    )
    log_isd = calibration.profile.mean_log_isd()
    print(format_table(
        ["layer", "mean log ISD"],
        [[i, f"{v:.3f}"] for i, v in enumerate(log_isd)],
    ))
    print(f"   skip range (i_f, j_f) = {calibration.skip_range}, "
          f"decay e = {calibration.decay:.4f}, "
          f"max log-ISD prediction error = {calibration.max_prediction_error():.4f}")

    print("== 3. Install HAAN layers (skip + subsample + INT8) ==")
    haan_model = TransformerModel.from_name(model_name)
    config = HaanConfig(
        skip_range=calibration.skip_range,
        subsample_length=reference.config.hidden_size // 2,
        data_format=DataFormat.INT8,
    )
    installed = apply_haan(haan_model, config, predictor=calibration.predictor)
    skipped = sum(1 for layer in installed if layer.is_skipped)
    print(f"   replaced {len(installed)} layers, {skipped} of them ISD-skipped")

    print("== 4. Compare outputs and perplexity ==")
    texts = perplexity_texts(6)
    ref_ppl = evaluate_perplexity(reference, texts, max_seq_len=32, label="original")
    haan_ppl = evaluate_perplexity(haan_model, texts, max_seq_len=32, label="haan")
    tokens = np.arange(3, 23)[None, :]
    drift = np.max(np.abs(haan_model.forward(tokens) - reference.forward(tokens)))
    print(f"   perplexity: original {ref_ppl.perplexity:.2f}  vs  HAAN {haan_ppl.perplexity:.2f}")
    print(f"   max logit drift on a probe sequence: {drift:.4f}")

    print("== 5. Accelerator latency / power on this workload ==")
    accelerator = HaanAccelerator(HAAN_V1)
    workload = NormalizationWorkload.from_model(reference.config, seq_len=128, haan_config=config)
    latency = accelerator.workload_latency(workload)
    power = accelerator.power(workload)
    print(f"   HAAN-v1: {latency.total_cycles} cycles = {latency.latency_us:.1f} us, "
          f"{power.total_w:.2f} W, bottleneck stage: {latency.bottleneck_stage}")

    print("== 6. Serve it through the public API (repro.api.NormClient) ==")
    # The client facade is transport-agnostic: swap `in_process()` for
    # `NormClient.connect(host, port)` against a `haan-serve --listen`
    # server and this code runs unchanged, bit-for-bit.
    from repro.api import NormClient

    with NormClient.in_process() as client:
        served = client.fetch_spec(model_name, layer_index=0)
        print(f"   served spec: kind={served.spec.kind}, "
              f"hidden={served.hidden_size}, storage={served.spec.storage}, "
              f"{served.num_layers} layers")
        rng = np.random.default_rng(0)
        activations = rng.normal(0.0, 1.0, size=(4, served.hidden_size))
        result = client.normalize(activations, model_name, layer_index=0)
        print(f"   normalized {result.output.shape[0]} rows via backend "
              f"{result.backend!r} (batch size {result.batch_size}, "
              f"subsampled={result.was_subsampled})")
        # Golden check: rebuild the layer locally from the served spec and
        # compare -- the wire protocol is exact for float64.
        from repro.engine import build

        local = build(served.spec, backend="reference",
                      gamma=served.gamma, beta=served.beta)
        assert np.array_equal(result.output, local.run(activations)[0])
        print("   bit-identical to a local rebuild of the served spec")
        # Per-request accelerator selection: the same request priced on the
        # HAAN-v2 datapath via the cost-modelling backend.
        client.normalize(activations, model_name, layer_index=0,
                         backend="simulated", accelerator="haan-v2")
        cost = client.telemetry()["telemetry"]["modelled_cost"]
        print(f"   modelled cost on haan-v2: "
              f"{cost['by_config']['haan-v2']['cycles']} cycles / "
              f"{cost['by_config']['haan-v2']['energy_nj']:.1f} nJ")


if __name__ == "__main__":
    main()
