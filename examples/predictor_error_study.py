"""Predictor strategies, error propagation and cross-dataset generalization.

This example digs into the algorithmic side of HAAN (Section III):

1. profile a model's per-layer ISD (the Figure 2 measurement) and plot it
   as an ASCII chart,
2. compare the paper's anchored log-linear predictor against simpler and
   more expensive alternatives (static calibration means, flat anchor,
   per-token least-squares),
3. run the analytic error-propagation model over early / middle / deep skip
   ranges, reproducing the Table II finding that only deep ranges are safe,
4. check that a predictor calibrated on one corpus transfers to disjoint
   corpora (the paper's generalization claim).

Run with:  python examples/predictor_error_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    compare_skip_ranges,
    evaluate_predictors,
    profile_model_isd,
    rank_strategies,
)
from repro.core.error_model import ErrorPropagationReport
from repro.core.predictors import PredictorEvaluation
from repro.core.skipping import find_skip_range_from_profile
from repro.eval import ascii_line_chart, generalization_study, transfer_penalty, TransferResult
from repro.llm import TransformerModel
from repro.llm.datasets import calibration_texts
from repro.utils.tables import format_table


def main() -> None:
    model = TransformerModel.from_name("tiny")
    texts = calibration_texts(12, seed=5)

    print("== 1. ISD profile (Figure 2 on the small built-in model) ==")
    profile = profile_model_isd(model, texts, max_seq_len=32)
    layers = np.arange(profile.num_layers)
    print(ascii_line_chart(
        layers,
        {"mean ISD": np.exp(profile.mean_log_isd())},
        log_y=True,
        title="mean ISD vs normalization-layer index (log scale)",
        height=10,
    ))
    print(f"   tail linearity (Pearson r over deepest third): {profile.tail_linearity():.3f}")

    print("\n== 2. Skip range from Algorithm 1 ==")
    search = find_skip_range_from_profile(
        profile, window=max(2, profile.num_layers // 4),
        min_start=int(profile.num_layers * 0.4),
    )
    skip_range = search.skip_range
    print(f"   skip range (i_f, j_f) = {skip_range}, decay e = {search.decay:.4f}")

    print("\n== 3. Predictor strategy comparison ==")
    evaluations = evaluate_predictors(profile, skip_range, decay=search.decay)
    print(format_table(
        ["strategy", "mean |log error|", "max |log error|", "mean ISD error"],
        [evaluations[name].as_row() for name in rank_strategies(evaluations)],
    ))
    assert isinstance(next(iter(evaluations.values())), PredictorEvaluation)

    print("\n== 4. Error propagation for early / middle / deep skip ranges ==")
    num_layers = profile.num_layers
    candidates = {
        (1, min(4, num_layers - 1)): search.decay,
        (num_layers // 2, min(num_layers // 2 + 3, num_layers - 1)): search.decay,
        skip_range: search.decay,
    }
    reports = compare_skip_ranges(profile, candidates)
    print(format_table(
        ErrorPropagationReport.header(),
        [reports[key].as_row() for key in candidates],
    ))
    print("   -> early skip ranges inflate the ISD error and the decision-flip")
    print("      probability; the calibrated deep range is safe (Table II).")

    print("\n== 5. Cross-dataset generalization of the calibrated predictor ==")
    study = generalization_study(model, calibration_samples=8, corpus_samples=6)
    print(format_table(
        TransferResult.header(),
        [study[name].as_row() for name in study],
    ))
    print(f"   worst-case transfer penalty: {transfer_penalty(study):.4f} (log-ISD error)")


if __name__ == "__main__":
    main()
