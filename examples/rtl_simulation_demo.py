"""Cycle-accurate RTL simulation of the HAAN datapath on one token.

The functional accelerator model answers "what does HAAN compute and how
many cycles does it charge"; the RTL model in :mod:`repro.hardware.rtl`
answers "what does the datapath do on every clock edge".  This example:

1. builds the RTL row processor (statistics calculator, square root
   inverter, normalization unit behind the controller FSM of Figure 3),
2. processes the same embedding row four ways -- full computation,
   subsampled statistics, predicted ISD (the skipping path), and RMSNorm --
3. compares every output against the NumPy reference and reports the cycle
   counts, and
4. dumps a VCD waveform of the full-computation run for inspection in
   GTKWave.

Run with:  python examples/rtl_simulation_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.hardware.rtl import HaanRowProcessorRtl
from repro.hdl import Simulator, VcdWriter
from repro.utils.tables import format_table


def reference_layernorm(row: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    mean = row.mean()
    return (row - mean) / np.sqrt(row.var() + eps)


def process(dut: HaanRowProcessorRtl, sim: Simulator, row, gamma, beta, **kwargs):
    dut.load_row(row, gamma, beta, **kwargs)
    sim.run_until(lambda s: dut.finished, max_cycles=20_000)
    return dut.result


def main() -> None:
    rng = np.random.default_rng(42)
    embedding_dim = 128
    row = rng.normal(0.0, 1.3, size=embedding_dim)
    gamma = np.ones(embedding_dim)
    beta = np.zeros(embedding_dim)
    reference = reference_layernorm(row)

    print("== RTL row processor: (p_d, p_n) = (16, 16), LayerNorm ==")
    dut = HaanRowProcessorRtl(stats_width=16, norm_width=16)
    writer = VcdWriter("haan_row.vcd")
    writer.declare_signals(dut.hierarchical_signals())
    sim = Simulator(dut, vcd=writer)

    rows = []
    full = process(dut, sim, row, gamma, beta)
    rows.append(["full computation", full.cycles,
                 f"{np.max(np.abs(full.output - reference)):.2e}", f"{full.isd:.4f}"])

    sub = process(dut, sim, row, gamma, beta, subsample_length=32)
    sub_reference = (row - row[:32].mean()) / np.sqrt(row[:32].var() + 1e-5)
    rows.append(["subsampled (N_sub=32)", sub.cycles,
                 f"{np.max(np.abs(sub.output - sub_reference)):.2e}", f"{sub.isd:.4f}"])

    predicted_isd = float(1.0 / np.sqrt(row.var() + 1e-5))
    skip = process(dut, sim, row, gamma, beta, predicted_isd=predicted_isd)
    rows.append(["ISD skipped (predicted)", skip.cycles,
                 f"{np.max(np.abs(skip.output - reference)):.2e}", f"{skip.isd:.4f}"])

    sim.finalize()
    print(format_table(
        ["mode", "cycles", "max |error| vs reference", "ISD used"], rows,
        title="LayerNorm row, embedding dim 128",
    ))
    print("   waveform written to haan_row.vcd")

    print("== RMSNorm row (no mean path) ==")
    rms_dut = HaanRowProcessorRtl(stats_width=16, norm_width=16, compute_mean=False)
    rms_sim = Simulator(rms_dut)
    rms = process(rms_dut, rms_sim, row, gamma, beta)
    rms_reference = row / np.sqrt(np.mean(row * row) + 1e-5)
    rms_skip = process(rms_dut, rms_sim, row, gamma, beta,
                       predicted_isd=float(1.0 / np.sqrt(np.mean(row * row) + 1e-5)))
    print(format_table(
        ["mode", "cycles", "max |error| vs reference"],
        [
            ["RMSNorm full", rms.cycles, f"{np.max(np.abs(rms.output - rms_reference)):.2e}"],
            ["RMSNorm skipped", rms_skip.cycles, f"{np.max(np.abs(rms_skip.output - rms_reference)):.2e}"],
        ],
    ))
    print("\nThe skipped/subsampled rows need fewer cycles than the full row,")
    print("which is exactly where HAAN's latency advantage (Figures 8-9) comes from.")


if __name__ == "__main__":
    main()
