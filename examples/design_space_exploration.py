"""Design-space exploration of the HAAN accelerator on an OPT-style workload.

The paper hand-picks three configurations (HAAN-v1/v2/v3, Section V-B) and
argues that choosing ``(p_d, p_n)`` to balance the pipeline stages maximises
hardware utilization.  This example automates that choice:

1. sweep datapath widths and number formats over the OPT-2.7B normalization
   workload (7 skipped layers, N_sub = 1280, as in Figure 8(b)),
2. reject configurations that do not fit the Alveo U280 or close timing at
   100 MHz,
3. print the latency/power Pareto frontier with pipeline balance, and
4. show where the paper's named configurations land and check energy and
   roofline behaviour.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.core import paper_config_for
from repro.hardware import (
    HAAN_V1,
    HAAN_V3,
    DesignSpaceExplorer,
    EnergyModel,
    NormalizationWorkload,
    TimingModel,
    U280_HBM,
    roofline_analysis,
)
from repro.hardware.workload import NormalizationWorkload as Workload
from repro.utils.tables import format_table


def main() -> None:
    haan_cfg = paper_config_for("opt-2.7b")
    workload = Workload.from_model_name("opt-2.7b", seq_len=256, haan_config=haan_cfg)
    print(f"Workload: {workload.model_name}, embedding dim {workload.embedding_dim}, "
          f"{workload.num_norm_layers} norm layers "
          f"({workload.num_skipped_layers} skipped), seq len {workload.seq_len}")

    print("\n== 1. Sweep (p_d, p_n) x format ==")
    explorer = DesignSpaceExplorer()
    result = explorer.explore(workload)
    print(f"   evaluated {len(result.points)} configurations, "
          f"{len(result.feasible_points)} feasible on the U280 at 100 MHz")

    print("\n== 2. Latency/power Pareto frontier ==")
    rows = []
    for point in result.pareto_frontier():
        rows.append([
            point.config.name,
            f"{point.latency_us:.1f}",
            f"{point.power_w:.2f}",
            f"{point.energy_nj / 1e6:.2f}",
            f"{point.pipeline_balance:.2f}",
            "yes" if point.memory_bound else "no",
        ])
    print(format_table(
        ["config", "latency (us)", "power (W)", "energy (mJ)", "balance", "memory bound"],
        rows,
        title="Pareto-optimal configurations",
    ))

    print("\n== 3. Where the paper's configurations land ==")
    rows = []
    for config in (HAAN_V1, HAAN_V3):
        point = explorer.evaluate(config, workload)
        rows.append([
            config.name,
            f"{point.latency_us:.1f}",
            f"{point.power_w:.2f}",
            f"{point.pipeline_balance:.2f}",
            "yes" if point.feasible else "no",
        ])
    print(format_table(
        ["config", "latency (us)", "power (W)", "balance", "feasible"], rows,
    ))

    print("\n== 4. Timing, energy and roofline for HAAN-v1 ==")
    timing = TimingModel().estimate(HAAN_V1)
    print(f"   critical path {timing.critical_path_ns:.2f} ns in '{timing.critical_unit}' "
          f"-> max clock {timing.max_frequency_mhz:.0f} MHz "
          f"(paper clock: 100 MHz, slack {timing.slack_ns_at_100mhz:.2f} ns)")
    energy = EnergyModel().estimate(HAAN_V1, workload)
    shares = ", ".join(f"{unit} {energy.share(unit) * 100:.0f}%" for unit in energy.per_unit_nj)
    print(f"   energy {energy.total_nj / 1e6:.2f} mJ per forward pass ({shares})")
    roofline = roofline_analysis(HAAN_V1, workload, U280_HBM)
    bound = "memory" if roofline.memory_bound else "compute"
    print(f"   arithmetic intensity {roofline.arithmetic_intensity:.2f} ops/byte -> {bound}-bound "
          f"on {roofline.memory_system}")

    best = result.best_energy_delay()
    print(f"\nLowest energy-delay product: {best.config.name} "
          f"({best.latency_us:.1f} us, {best.power_w:.2f} W)")


if __name__ == "__main__":
    main()
