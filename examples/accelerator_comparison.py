"""Compare the HAAN accelerator against DFX / SOLE / MHAA / GPU baselines.

Reproduces the Figure 8/9-style comparison for any built-in model: builds
the normalization workload (with the paper's HAAN settings where available),
runs every accelerator model across a sweep of sequence lengths, and prints
normalized latency, absolute latency, power and energy.

Run with:  python examples/accelerator_comparison.py [model-name]
"""

from __future__ import annotations

import sys

from repro.core import HaanConfig, paper_config_for
from repro.hardware import (
    HAAN_V1,
    HAAN_V2,
    HAAN_V3,
    HaanAccelerator,
    NormalizationWorkload,
    all_baselines,
)
from repro.llm import get_model_config
from repro.utils.tables import format_table


def haan_config_for(model_name: str) -> HaanConfig:
    """The paper's HAAN setting for the model, or a generic late-layer one."""
    try:
        return paper_config_for(model_name)
    except KeyError:
        config = get_model_config(model_name)
        num_norms = config.num_norm_layers
        return HaanConfig(
            skip_range=(max(0, num_norms - 11), num_norms - 1),
            subsample_length=config.hidden_size // 2,
        )


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "gpt2-1.5b"
    seq_lens = (128, 256, 512, 1024)
    model_config = get_model_config(model_name)
    haan_config = haan_config_for(model_name)
    print(f"Model: {model_name}  (embedding {model_config.hidden_size}, "
          f"{model_config.num_norm_layers} normalization layers, "
          f"{haan_config.num_skipped_layers()} skipped, N_sub={haan_config.subsample_length})")

    designs = {
        "HAAN-v1": HaanAccelerator(HAAN_V1),
        "HAAN-v2": HaanAccelerator(HAAN_V2),
        "HAAN-v3": HaanAccelerator(HAAN_V3),
    }
    baselines = all_baselines()

    rows = []
    reference = {}
    for seq in seq_lens:
        workload = NormalizationWorkload.from_model(model_config, seq_len=seq, haan_config=haan_config)
        reference[seq] = designs["HAAN-v1"].workload_latency(workload).latency_seconds
    for name, accelerator in designs.items():
        cells = [name]
        for seq in seq_lens:
            workload = NormalizationWorkload.from_model(model_config, seq_len=seq, haan_config=haan_config)
            report = accelerator.workload_latency(workload)
            cells.append(f"{report.latency_us:.0f}us ({report.latency_seconds / reference[seq]:.2f}x)")
        power = accelerator.power(
            NormalizationWorkload.from_model(model_config, seq_len=seq_lens[0], haan_config=haan_config)
        )
        cells.append(f"{power.total_w:.2f}")
        rows.append(cells)
    for name, baseline in baselines.items():
        cells = [name]
        for seq in seq_lens:
            workload = NormalizationWorkload.from_model(model_config, seq_len=seq, haan_config=haan_config)
            report = baseline.workload_latency(workload)
            cells.append(f"{report.latency_seconds * 1e6:.0f}us ({report.latency_seconds / reference[seq]:.2f}x)")
        cells.append(f"{baseline.nominal_power_w:.2f}")
        rows.append(cells)

    headers = ["design"] + [f"seq={s}" for s in seq_lens] + ["power (W)"]
    print(format_table(headers, rows, title="Normalization latency (normalized to HAAN-v1) and power"))


if __name__ == "__main__":
    main()
