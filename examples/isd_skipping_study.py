"""Study of the ISD-skipping algorithm across models and configurations.

Reproduces the Section III-A / Table II style analysis on the LLaMA-7B
analogue (or any built-in model):

* profiles the per-layer ISD and prints the log-domain curve (Figure 2),
* runs Algorithm 1 with several window sizes and shows where the skip range
  lands and how linear the chosen window is,
* quantifies the log-ISD prediction error of skipping early / middle / late
  ranges (why Table II's (10,20) and (30,40) ranges hurt), and
* sweeps the subsample length and reports the ISD estimation error
  (equation (4)) and the perplexity impact on the small model.

Run with:  python examples/isd_skipping_study.py [model-name]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import (
    SubsampleSettings,
    estimation_error,
    find_skip_range,
    prediction_error,
    profile_model_isd,
)
from repro.core.calibration import CalibrationSettings, build_haan_model
from repro.eval.perplexity import evaluate_perplexity
from repro.llm import TransformerModel
from repro.llm.datasets import calibration_texts, perplexity_texts
from repro.utils.tables import format_table


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "llama-7b"
    print(f"== ISD profile of {model_name} ==")
    model = TransformerModel.from_name(model_name)
    profile = profile_model_isd(model, calibration_texts(10), max_seq_len=32)
    log_isd = profile.mean_log_isd()
    step = max(1, profile.num_layers // 16)
    print(format_table(
        ["layer", "mean log ISD"],
        [[i, f"{log_isd[i]:.3f}"] for i in range(0, profile.num_layers, step)],
    ))
    print(f"tail (last third) Pearson correlation with depth: {profile.tail_linearity(0.33):.4f}")

    print("\n== Algorithm 1 across window sizes ==")
    rows = []
    for window in (4, 8, 12):
        if window + 1 >= profile.num_layers:
            continue
        result = find_skip_range(log_isd, window=window, min_start=profile.num_layers // 2)
        rows.append([window, str(result.skip_range), f"{result.correlation:.4f}", f"{result.decay:.4f}"])
    print(format_table(["window M", "skip range", "Pearson", "decay e"], rows))

    print("\n== Why early/middle skip ranges hurt (log-ISD prediction error) ==")
    num_layers = profile.num_layers
    candidate_ranges = [
        (int(0.15 * num_layers), int(0.30 * num_layers)),
        (int(0.45 * num_layers), int(0.60 * num_layers)),
        (int(0.78 * num_layers), int(0.93 * num_layers)),
    ]
    rows = []
    for start, end in candidate_ranges:
        from repro.core.skipping import SkipSearchResult, cal_decay

        decay = cal_decay(log_isd[start : end + 1])
        result = SkipSearchResult(
            skip_range=(start, end), correlation=0.0, decay=decay, anchor_log_isd=float(log_isd[start])
        )
        errors = prediction_error(log_isd, result)
        rows.append([f"({start}, {end})", f"{np.max(errors):.4f}", f"{np.mean(errors):.4f}"])
    print(format_table(["skip range", "max |log-ISD error|", "mean |log-ISD error|"], rows))

    print("\n== Subsample length sweep (equation (4) estimation error) ==")
    rng = np.random.default_rng(0)
    tokens = rng.integers(3, model.config.vocab_size, size=(4, 24))
    hidden = model.forward_hidden(tokens).reshape(-1, model.config.sim_hidden_size)
    rows = []
    for length in (8, 16, 32, 64, 128, model.config.sim_hidden_size):
        if length > model.config.sim_hidden_size:
            continue
        isd_err, mean_err = estimation_error(hidden, SubsampleSettings(length=length), kind=model.config.norm_kind)
        rows.append([length, f"{isd_err * 100:.2f}%", f"{mean_err * 100:.2f}%"])
    print(format_table(["N_sub (sim elements)", "ISD rel. RMS error", "mean rel. RMS error"], rows))

    print("\n== Perplexity impact of the full HAAN pipeline (small model) ==")
    reference = TransformerModel.from_name("tiny")
    texts = perplexity_texts(6)
    ref_ppl = evaluate_perplexity(reference, texts, max_seq_len=32)
    haan_model, calibration, config = build_haan_model(
        "tiny", settings=CalibrationSettings(window=3, max_seq_len=24, num_samples=8)
    )
    haan_ppl = evaluate_perplexity(haan_model, texts, max_seq_len=32)
    print(f"skip range {config.skip_range} (decay {calibration.decay:.4f}); "
          f"PPL original {ref_ppl.perplexity:.2f} -> HAAN {haan_ppl.perplexity:.2f}")


if __name__ == "__main__":
    main()
